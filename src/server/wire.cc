#include "server/wire.h"

#include <cstring>

#include "storage/wal.h"  // Crc32, WalPayloadWriter/Reader

namespace gom::server {

namespace {

void PutU32(std::vector<uint8_t>* out, size_t at, uint32_t v) {
  std::memcpy(out->data() + at, &v, sizeof(v));
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void WriteString(WalPayloadWriter* w, const std::string& s) {
  w->U32(static_cast<uint32_t>(s.size()));
  for (char c : s) w->U8(static_cast<uint8_t>(c));
}

Result<std::string> ReadString(WalPayloadReader* r) {
  GOMFM_ASSIGN_OR_RETURN(uint32_t len, r->U32());
  const uint8_t* cur = *r->cursor();
  if (static_cast<size_t>(r->end() - cur) < len) {
    return Status::InvalidArgument("wire: truncated string");
  }
  std::string s(reinterpret_cast<const char*>(cur), len);
  *r->cursor() += len;
  return s;
}

void WriteRows(WalPayloadWriter* w, const RowSet& rows) {
  w->U32(static_cast<uint32_t>(rows.size()));
  std::vector<uint8_t> bytes;
  for (const std::vector<Value>& row : rows) {
    w->U16(static_cast<uint16_t>(row.size()));
    bytes.clear();
    for (const Value& v : row) v.Serialize(&bytes);
    w->Bytes(bytes);
  }
}

Result<RowSet> ReadRows(WalPayloadReader* r) {
  GOMFM_ASSIGN_OR_RETURN(uint32_t nrows, r->U32());
  RowSet rows;
  // Every row carries at least its 2-byte arity; anything claiming more
  // rows than the remaining bytes could hold is corrupt, so this reserve
  // cannot be inflated by a hostile count.
  if (static_cast<size_t>(r->end() - *r->cursor()) <
      static_cast<size_t>(nrows) * 2) {
    return Status::InvalidArgument("wire: row count exceeds payload");
  }
  rows.reserve(nrows);
  for (uint32_t i = 0; i < nrows; ++i) {
    GOMFM_ASSIGN_OR_RETURN(uint16_t ncols, r->U16());
    std::vector<Value> row;
    row.reserve(ncols);
    for (uint16_t c = 0; c < ncols; ++c) {
      GOMFM_ASSIGN_OR_RETURN(Value v,
                             Value::Deserialize(r->cursor(), r->end()));
      row.push_back(std::move(v));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

void WrapFrame(std::vector<uint8_t> payload, std::vector<uint8_t>* frame) {
  size_t base = frame->size();
  frame->resize(base + kFrameHeaderBytes);
  PutU32(frame, base, kFrameMagic);
  PutU32(frame, base + 4, static_cast<uint32_t>(payload.size()));
  PutU32(frame, base + 8, Crc32(payload.data(), payload.size()));
  frame->insert(frame->end(), payload.begin(), payload.end());
}

const char* RequestTypeName(RequestType type) {
  switch (type) {
    case RequestType::kPing:
      return "ping";
    case RequestType::kGomql:
      return "gomql";
    case RequestType::kExplain:
      return "explain";
    case RequestType::kForward:
      return "forward";
    case RequestType::kBackward:
      return "backward";
    case RequestType::kStats:
      return "stats";
    case RequestType::kUpdate:
      return "update";
  }
  return "unknown";
}

void EncodeRequest(const Request& request, std::vector<uint8_t>* frame) {
  WalPayloadWriter w;
  w.U8(static_cast<uint8_t>(request.type));
  w.U64(request.id);
  switch (request.type) {
    case RequestType::kPing:
    case RequestType::kStats:
      break;
    case RequestType::kGomql:
    case RequestType::kExplain:
      WriteString(&w, request.text);
      break;
    case RequestType::kForward:
    case RequestType::kUpdate: {
      w.U32(request.function);
      w.U16(static_cast<uint16_t>(request.args.size()));
      std::vector<uint8_t> bytes;
      for (const Value& v : request.args) v.Serialize(&bytes);
      w.Bytes(bytes);
      break;
    }
    case RequestType::kBackward: {
      w.U32(request.function);
      uint64_t lo_bits, hi_bits;
      std::memcpy(&lo_bits, &request.lo, 8);
      std::memcpy(&hi_bits, &request.hi, 8);
      w.U64(lo_bits);
      w.U64(hi_bits);
      w.U8(static_cast<uint8_t>((request.lo_inclusive ? 1 : 0) |
                                (request.hi_inclusive ? 2 : 0)));
      break;
    }
  }
  if (request.type == RequestType::kForward ||
      request.type == RequestType::kBackward) {
    w.U64(request.min_lsn);
  }
  WrapFrame(w.Take(), frame);
}

Result<Request> DecodeRequest(const std::vector<uint8_t>& payload) {
  WalPayloadReader r(payload);
  Request req;
  GOMFM_ASSIGN_OR_RETURN(uint8_t type, r.U8());
  if (type < static_cast<uint8_t>(RequestType::kPing) ||
      type > static_cast<uint8_t>(RequestType::kUpdate)) {
    return Status::InvalidArgument("wire: unknown request type " +
                                   std::to_string(type));
  }
  req.type = static_cast<RequestType>(type);
  GOMFM_ASSIGN_OR_RETURN(req.id, r.U64());
  switch (req.type) {
    case RequestType::kPing:
    case RequestType::kStats:
      break;
    case RequestType::kGomql:
    case RequestType::kExplain: {
      GOMFM_ASSIGN_OR_RETURN(req.text, ReadString(&r));
      break;
    }
    case RequestType::kForward:
    case RequestType::kUpdate: {
      GOMFM_ASSIGN_OR_RETURN(req.function, r.U32());
      GOMFM_ASSIGN_OR_RETURN(uint16_t argc, r.U16());
      req.args.reserve(argc);
      for (uint16_t i = 0; i < argc; ++i) {
        GOMFM_ASSIGN_OR_RETURN(Value v,
                               Value::Deserialize(r.cursor(), r.end()));
        req.args.push_back(std::move(v));
      }
      break;
    }
    case RequestType::kBackward: {
      GOMFM_ASSIGN_OR_RETURN(req.function, r.U32());
      GOMFM_ASSIGN_OR_RETURN(uint64_t lo_bits, r.U64());
      GOMFM_ASSIGN_OR_RETURN(uint64_t hi_bits, r.U64());
      std::memcpy(&req.lo, &lo_bits, 8);
      std::memcpy(&req.hi, &hi_bits, 8);
      GOMFM_ASSIGN_OR_RETURN(uint8_t flags, r.U8());
      if (flags > 3) {
        return Status::InvalidArgument("wire: bad inclusivity flags");
      }
      req.lo_inclusive = (flags & 1) != 0;
      req.hi_inclusive = (flags & 2) != 0;
      break;
    }
  }
  if (req.type == RequestType::kForward ||
      req.type == RequestType::kBackward) {
    GOMFM_ASSIGN_OR_RETURN(req.min_lsn, r.U64());
  }
  if (!r.exhausted()) {
    return Status::InvalidArgument("wire: trailing bytes after request");
  }
  return req;
}

void EncodeResponse(const Response& response, std::vector<uint8_t>* frame) {
  WalPayloadWriter w;
  w.U64(response.id);
  w.U8(static_cast<uint8_t>(response.code));
  WriteString(&w, response.message);
  WriteString(&w, response.text);
  WriteRows(&w, response.rows);
  WrapFrame(w.Take(), frame);
}

Result<Response> DecodeResponse(const std::vector<uint8_t>& payload) {
  WalPayloadReader r(payload);
  Response resp;
  GOMFM_ASSIGN_OR_RETURN(resp.id, r.U64());
  GOMFM_ASSIGN_OR_RETURN(uint8_t code, r.U8());
  GOMFM_ASSIGN_OR_RETURN(resp.code, StatusCodeFromWire(code));
  GOMFM_ASSIGN_OR_RETURN(resp.message, ReadString(&r));
  GOMFM_ASSIGN_OR_RETURN(resp.text, ReadString(&r));
  GOMFM_ASSIGN_OR_RETURN(resp.rows, ReadRows(&r));
  if (!r.exhausted()) {
    return Status::InvalidArgument("wire: trailing bytes after response");
  }
  return resp;
}

Result<size_t> TryDecodeFrame(const uint8_t* buf, size_t n,
                              std::vector<uint8_t>* payload) {
  if (n < kFrameHeaderBytes) return size_t{0};
  if (GetU32(buf) != kFrameMagic) {
    return Status::InvalidArgument("wire: bad frame magic");
  }
  uint32_t length = GetU32(buf + 4);
  if (length > kMaxFrameBytes) {
    return Status::InvalidArgument("wire: frame length " +
                                   std::to_string(length) +
                                   " exceeds the limit");
  }
  if (n < kFrameHeaderBytes + length) return size_t{0};
  uint32_t crc = GetU32(buf + 8);
  const uint8_t* body = buf + kFrameHeaderBytes;
  if (Crc32(body, length) != crc) {
    return Status::InvalidArgument("wire: frame CRC mismatch");
  }
  payload->assign(body, body + length);
  return kFrameHeaderBytes + length;
}

Result<StatusCode> StatusCodeFromWire(uint8_t code) {
  if (code > static_cast<uint8_t>(StatusCode::kStale)) {
    return Status::InvalidArgument("wire: unknown status code " +
                                   std::to_string(code));
  }
  return static_cast<StatusCode>(code);
}

const char* ReplMsgTypeName(ReplMsgType type) {
  switch (type) {
    case ReplMsgType::kHello:
      return "hello";
    case ReplMsgType::kSnapshotBegin:
      return "snapshot-begin";
    case ReplMsgType::kSnapshotChunk:
      return "snapshot-chunk";
    case ReplMsgType::kSnapshotEnd:
      return "snapshot-end";
    case ReplMsgType::kWalShip:
      return "wal-ship";
    case ReplMsgType::kWalAck:
      return "wal-ack";
  }
  return "unknown";
}

void EncodeReplMsg(const ReplMsg& msg, std::vector<uint8_t>* frame) {
  WalPayloadWriter w;
  w.U8(static_cast<uint8_t>(msg.type));
  w.U64(msg.lsn);
  w.U32(msg.seq);
  w.U32(static_cast<uint32_t>(msg.bytes.size()));
  w.Bytes(msg.bytes);
  w.U32(static_cast<uint32_t>(msg.records.size()));
  for (const WalRecord& rec : msg.records) {
    w.U64(rec.lsn);
    w.U8(static_cast<uint8_t>(rec.type));
    w.U32(static_cast<uint32_t>(rec.payload.size()));
    w.Bytes(rec.payload);
  }
  WrapFrame(w.Take(), frame);
}

Result<ReplMsg> DecodeReplMsg(const std::vector<uint8_t>& payload) {
  WalPayloadReader r(payload);
  ReplMsg msg;
  GOMFM_ASSIGN_OR_RETURN(uint8_t type, r.U8());
  if (type < static_cast<uint8_t>(ReplMsgType::kHello) ||
      type > static_cast<uint8_t>(ReplMsgType::kWalAck)) {
    return Status::InvalidArgument("wire: unknown repl message type " +
                                   std::to_string(type));
  }
  msg.type = static_cast<ReplMsgType>(type);
  GOMFM_ASSIGN_OR_RETURN(msg.lsn, r.U64());
  GOMFM_ASSIGN_OR_RETURN(msg.seq, r.U32());
  GOMFM_ASSIGN_OR_RETURN(uint32_t nbytes, r.U32());
  if (static_cast<size_t>(r.end() - *r.cursor()) < nbytes) {
    return Status::InvalidArgument("wire: truncated repl chunk bytes");
  }
  msg.bytes.assign(*r.cursor(), *r.cursor() + nbytes);
  *r.cursor() += nbytes;
  GOMFM_ASSIGN_OR_RETURN(uint32_t nrecords, r.U32());
  // Every record carries at least its 13-byte fixed header; a hostile count
  // larger than the remaining bytes could hold cannot inflate the reserve.
  if (static_cast<size_t>(r.end() - *r.cursor()) <
      static_cast<size_t>(nrecords) * 13) {
    return Status::InvalidArgument("wire: record count exceeds payload");
  }
  msg.records.reserve(nrecords);
  for (uint32_t i = 0; i < nrecords; ++i) {
    WalRecord rec;
    GOMFM_ASSIGN_OR_RETURN(rec.lsn, r.U64());
    GOMFM_ASSIGN_OR_RETURN(uint8_t rtype, r.U8());
    if (rtype < static_cast<uint8_t>(WalRecordType::kUpdateIntent) ||
        rtype > static_cast<uint8_t>(WalRecordType::kObjDelete)) {
      return Status::InvalidArgument("wire: unknown WAL record type " +
                                     std::to_string(rtype));
    }
    rec.type = static_cast<WalRecordType>(rtype);
    GOMFM_ASSIGN_OR_RETURN(uint32_t len, r.U32());
    if (static_cast<size_t>(r.end() - *r.cursor()) < len) {
      return Status::InvalidArgument("wire: truncated WAL record payload");
    }
    rec.payload.assign(*r.cursor(), *r.cursor() + len);
    *r.cursor() += len;
    msg.records.push_back(std::move(rec));
  }
  if (!r.exhausted()) {
    return Status::InvalidArgument("wire: trailing bytes after repl message");
  }
  return msg;
}

Response ErrorResponse(uint64_t id, const Status& status) {
  Response resp;
  resp.id = id;
  resp.code = status.code();
  resp.message = status.message();
  return resp;
}

Status ToStatus(const Response& response) {
  if (response.code == StatusCode::kOk) return Status::Ok();
  return Status(response.code, response.message);
}

}  // namespace gom::server
