#ifndef GOMFM_SERVER_WIRE_H_
#define GOMFM_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "gom/ids.h"
#include "gom/value.h"
#include "storage/wal.h"

namespace gom::server {

/// A set of result rows as carried on the wire (one vector of values per
/// qualifying binding — the shape `gomql::QueryRows` and `BackwardRange`
/// already produce).
using RowSet = std::vector<std::vector<Value>>;

/// Every frame on the wire is
///
///   [magic u32][payload-length u32][crc u32][payload bytes]
///
/// little-endian, with the CRC32 (IEEE, same polynomial as the WAL) taken
/// over the payload alone. The magic catches desynchronized or non-GOM
/// peers before any allocation happens; the length is bounded by
/// `kMaxFrameBytes` so a hostile header cannot make the receiver reserve
/// gigabytes; the CRC rejects corrupted frames outright — a frame either
/// decodes bit-exactly or is refused, never mis-decoded.
inline constexpr uint32_t kFrameMagic = 0x514D4F47;  // "GOMQ" little-endian
inline constexpr size_t kFrameHeaderBytes = 12;
inline constexpr uint32_t kMaxFrameBytes = 8u << 20;  // 8 MiB of payload

/// Request kinds of the GOM service protocol.
enum class RequestType : uint8_t {
  kPing = 1,      // liveness / drain probe, empty body
  kGomql = 2,     // one GOMql statement (retrieve or materialize)
  kExplain = 3,   // plan a retrieve, return the EXPLAIN text
  kForward = 4,   // forward query f(args) through the GMR
  kBackward = 5,  // backward range query over a materialized function
  kStats = 6,     // server statistics snapshot (JSON text)
  kUpdate = 7,    // invoke an update operation op(args) on the writer gate
};

const char* RequestTypeName(RequestType type);

/// One decoded client request. Which fields are meaningful depends on
/// `type`; everything else stays at its default.
struct Request {
  RequestType type = RequestType::kPing;
  /// Client-chosen correlation id, echoed verbatim in the response. With
  /// pipelined requests responses may return out of order; the id is how
  /// the client re-associates them.
  uint64_t id = 0;
  std::string text;                          // kGomql / kExplain
  FunctionId function = kInvalidFunctionId;  // kForward / kBackward / kUpdate
  std::vector<Value> args;                   // kForward / kUpdate
  double lo = 0, hi = 0;                     // kBackward
  bool lo_inclusive = true, hi_inclusive = true;
  /// kForward / kBackward staleness bound: the server must have applied at
  /// least this LSN (replicas answer kStale below it; primaries always
  /// satisfy it). 0 = read whatever is there.
  Lsn min_lsn = 0;
};

/// One server response. `code != kOk` carries `message`; query answers
/// arrive in `rows` (a forward result is a single 1×1 row), EXPLAIN and
/// stats text in `text`.
struct Response {
  uint64_t id = 0;
  StatusCode code = StatusCode::kOk;
  std::string message;
  std::string text;
  RowSet rows;
};

/// Serializes a request/response into a complete frame (header + CRC +
/// payload), appended to `*frame`.
void EncodeRequest(const Request& request, std::vector<uint8_t>* frame);
void EncodeResponse(const Response& response, std::vector<uint8_t>* frame);

/// Decodes a frame payload previously validated by `TryDecodeFrame`.
/// Trailing bytes, truncated fields and unknown tags are errors — wire
/// input is untrusted, so decoding is exact or refused.
Result<Request> DecodeRequest(const std::vector<uint8_t>& payload);
Result<Response> DecodeResponse(const std::vector<uint8_t>& payload);

/// Inspects the head of a receive buffer (`n` bytes of the stream). When a
/// complete, well-formed frame is present: copies its payload into
/// `*payload` and returns the total bytes consumed (header + payload).
/// Returns 0 when the buffer does not yet hold a complete frame (read
/// more). Bad magic, oversized declared length, or a CRC mismatch are
/// errors — the stream is unrecoverable and the connection should close.
Result<size_t> TryDecodeFrame(const uint8_t* buf, size_t n,
                              std::vector<uint8_t>* payload);

/// Maps a wire status byte back to a StatusCode, rejecting values outside
/// the enum (a corrupt-but-CRC-valid peer bug, not silently kInternal).
Result<StatusCode> StatusCodeFromWire(uint8_t code);

/// Wraps a finished payload into a frame appended to `*frame` (the framing
/// shared by the request/response and replication protocols).
void WrapFrame(std::vector<uint8_t> payload, std::vector<uint8_t>* frame);

// --- Replication protocol ---------------------------------------------------
//
// WAL shipping runs on its own connections (the primary's ship port), never
// interleaved with the request/response protocol; frames use the same
// `[magic][len][crc]` envelope. The replica opens with kHello carrying its
// durable applied LSN; the primary answers either with a snapshot
// (kSnapshotBegin, kSnapshotChunk…, kSnapshotEnd — when the requested resume
// point was truncated away) followed by the live stream, or directly with
// kWalShip batches resuming at applied + 1. The replica acks its applied
// position with kWalAck; the minimum over all replicas pins WAL retention.

enum class ReplMsgType : uint8_t {
  kHello = 1,         // replica → primary: `lsn` = durable applied LSN,
                      //   `seq` = stable replica id (retention pins key on it
                      //   so they survive reconnects)
  kSnapshotBegin = 2, // primary → replica: `lsn` = snapshot LSN, `seq` = #chunks
  kSnapshotChunk = 3, // primary → replica: `seq` = chunk index, `bytes`
  kSnapshotEnd = 4,   // primary → replica: `seq` = CRC32 of the whole snapshot
  kWalShip = 5,       // primary → replica: `records`, `lsn` = primary flushed
  kWalAck = 6,        // replica → primary: `lsn` = applied LSN
};

const char* ReplMsgTypeName(ReplMsgType type);

/// One replication-protocol message; which fields are meaningful depends on
/// `type` (see the enum comments).
struct ReplMsg {
  ReplMsgType type = ReplMsgType::kHello;
  Lsn lsn = kNullLsn;
  uint32_t seq = 0;
  std::vector<uint8_t> bytes;
  std::vector<WalRecord> records;
};

/// Serializes the message into a complete frame appended to `*frame`.
void EncodeReplMsg(const ReplMsg& msg, std::vector<uint8_t>* frame);

/// Decodes a frame payload previously validated by `TryDecodeFrame`.
Result<ReplMsg> DecodeReplMsg(const std::vector<uint8_t>& payload);

/// Shorthand: a response carrying `status` for request `id`.
Response ErrorResponse(uint64_t id, const Status& status);

/// The `Status` a response implies — Ok, or code+message reconstructed.
Status ToStatus(const Response& response);

}  // namespace gom::server

#endif  // GOMFM_SERVER_WIRE_H_
