#include "storage/buffer_pool.h"

#include <cassert>

#include "storage/wal.h"

namespace gom {

BufferPool::BufferPool(SimDisk* disk, size_t capacity_pages)
    : disk_(disk), capacity_(capacity_pages) {
  assert(capacity_ > 0);
}

void BufferPool::StampRecoveryLsn(Frame& frame) {
  if (wal_ != nullptr) frame.recovery_lsn = wal_->last_lsn();
}

Status BufferPool::WriteBack(PageId id, Frame& frame) {
  // Write-ahead rule: the log records describing this page's content must
  // be durable before the page image itself is. Extra (per-shard) streams
  // flush wholesale — their LSNs are not tracked per page.
  if (wal_ != nullptr) {
    GOMFM_RETURN_IF_ERROR(wal_->FlushTo(frame.recovery_lsn));
  }
  for (WriteAheadLog* extra : extra_wals_) {
    GOMFM_RETURN_IF_ERROR(extra->Flush());
  }
  return disk_->WritePage(id, frame.page.image().data());
}

void BufferPool::TouchLru(Frame& frame, PageId id) {
  lru_.erase(frame.lru_pos);
  lru_.push_front(id);
  frame.lru_pos = lru_.begin();
}

Result<BufferPool::Frame*> BufferPool::FetchLocked(PageId id) {
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    TouchLru(it->second, id);
    return &it->second;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (frames_.size() >= capacity_) {
    GOMFM_RETURN_IF_ERROR(EvictOneLocked());
  }
  std::vector<uint8_t> image(kPageSize);
  GOMFM_RETURN_IF_ERROR(disk_->ReadPage(id, image.data()));
  lru_.push_front(id);
  Frame frame{Page(std::move(image)), /*dirty=*/false, /*pin_count=*/0,
              /*recovery_lsn=*/0, lru_.begin(),
              std::make_shared<std::shared_mutex>()};
  auto [ins, ok] = frames_.emplace(id, std::move(frame));
  (void)ok;
  return &ins->second;
}

Result<BufferPool::Frame*> BufferPool::NewPageLocked(PageId* id_out) {
  if (frames_.size() >= capacity_) {
    GOMFM_RETURN_IF_ERROR(EvictOneLocked());
  }
  PageId id = disk_->AllocatePage();
  lru_.push_front(id);
  Frame frame{Page(), /*dirty=*/true, /*pin_count=*/0, /*recovery_lsn=*/0,
              lru_.begin(), std::make_shared<std::shared_mutex>()};
  StampRecoveryLsn(frame);
  auto [ins, ok] = frames_.emplace(id, std::move(frame));
  (void)ok;
  *id_out = id;
  return &ins->second;
}

Result<Page*> BufferPool::Fetch(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  GOMFM_ASSIGN_OR_RETURN(Frame * frame, FetchLocked(id));
  return &frame->page;
}

Result<Page*> BufferPool::NewPage(PageId* id_out) {
  std::lock_guard<std::mutex> lock(mu_);
  GOMFM_ASSIGN_OR_RETURN(Frame * frame, NewPageLocked(id_out));
  return &frame->page;
}

Result<BufferPool::PageGuard> BufferPool::Acquire(PageId id, bool exclusive) {
  std::shared_ptr<std::shared_mutex> latch;
  Page* page = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    GOMFM_ASSIGN_OR_RETURN(Frame * frame, FetchLocked(id));
    ++frame->pin_count;  // latch is taken outside `mu_`; the pin keeps the
                         // frame (and its latch) resident meanwhile
    latch = frame->latch;
    page = &frame->page;
  }
  if (exclusive) {
    latch->lock();
  } else {
    latch->lock_shared();
  }
  return PageGuard(this, id, page, std::move(latch), exclusive);
}

Result<BufferPool::PageGuard> BufferPool::AcquireNew(PageId* id_out) {
  std::shared_ptr<std::shared_mutex> latch;
  Page* page = nullptr;
  PageId id = kInvalidPageId;
  {
    std::lock_guard<std::mutex> lock(mu_);
    GOMFM_ASSIGN_OR_RETURN(Frame * frame, NewPageLocked(&id));
    ++frame->pin_count;
    latch = frame->latch;
    page = &frame->page;
  }
  *id_out = id;
  latch->lock();
  return PageGuard(this, id, page, std::move(latch), /*exclusive=*/true);
}

void BufferPool::ReleaseGuard(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(id);
  if (it != frames_.end() && it->second.pin_count > 0) {
    --it->second.pin_count;
  }
}

BufferPool::PageGuard& BufferPool::PageGuard::operator=(
    PageGuard&& o) noexcept {
  if (this != &o) {
    Release();
    pool_ = o.pool_;
    id_ = o.id_;
    page_ = o.page_;
    latch_ = std::move(o.latch_);
    exclusive_ = o.exclusive_;
    o.pool_ = nullptr;
    o.page_ = nullptr;
  }
  return *this;
}

void BufferPool::PageGuard::Release() {
  if (pool_ == nullptr) return;
  if (exclusive_) {
    latch_->unlock();
  } else {
    latch_->unlock_shared();
  }
  latch_.reset();
  pool_->ReleaseGuard(id_);
  pool_ = nullptr;
  page_ = nullptr;
}

Status BufferPool::MarkDirty(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(id);
  if (it == frames_.end()) {
    return Status::NotFound("BufferPool::MarkDirty: page not resident");
  }
  it->second.dirty = true;
  StampRecoveryLsn(it->second);
  return Status::Ok();
}

Status BufferPool::Pin(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(id);
  if (it == frames_.end()) {
    return Status::NotFound("BufferPool::Pin: page not resident");
  }
  ++it->second.pin_count;
  return Status::Ok();
}

Status BufferPool::Unpin(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(id);
  if (it == frames_.end()) {
    return Status::NotFound("BufferPool::Unpin: page not resident");
  }
  if (it->second.pin_count == 0) {
    return Status::FailedPrecondition("BufferPool::Unpin: pin count is zero");
  }
  --it->second.pin_count;
  return Status::Ok();
}

Status BufferPool::EvictOneLocked() {
  // Walk from the LRU end towards MRU looking for an unpinned victim.
  // Guard-held frames are pinned, so a victim's latch is never contended.
  for (auto rit = lru_.rbegin(); rit != lru_.rend(); ++rit) {
    PageId victim = *rit;
    Frame& frame = frames_.at(victim);
    if (frame.pin_count > 0) continue;
    if (frame.dirty) {
      GOMFM_RETURN_IF_ERROR(WriteBack(victim, frame));
    }
    lru_.erase(frame.lru_pos);
    frames_.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
  return Status::FailedPrecondition("BufferPool::EvictOne: all pages pinned");
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, frame] : frames_) {
    if (frame.dirty) {
      GOMFM_RETURN_IF_ERROR(WriteBack(id, frame));
      frame.dirty = false;
    }
  }
  return Status::Ok();
}

Status BufferPool::EvictAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, frame] : frames_) {
    if (frame.dirty) {
      GOMFM_RETURN_IF_ERROR(WriteBack(id, frame));
      frame.dirty = false;
    }
  }
  for (auto it = frames_.begin(); it != frames_.end();) {
    if (it->second.pin_count > 0) {
      ++it;
      continue;
    }
    lru_.erase(it->second.lru_pos);
    it = frames_.erase(it);
  }
  return Status::Ok();
}

}  // namespace gom
