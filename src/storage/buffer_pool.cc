#include "storage/buffer_pool.h"

#include <cassert>

namespace gom {

BufferPool::BufferPool(SimDisk* disk, size_t capacity_pages)
    : disk_(disk), capacity_(capacity_pages) {
  assert(capacity_ > 0);
}

void BufferPool::TouchLru(Frame& frame, PageId id) {
  lru_.erase(frame.lru_pos);
  lru_.push_front(id);
  frame.lru_pos = lru_.begin();
}

Result<Page*> BufferPool::Fetch(PageId id) {
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    ++hits_;
    TouchLru(it->second, id);
    return &it->second.page;
  }
  ++misses_;
  if (frames_.size() >= capacity_) {
    GOMFM_RETURN_IF_ERROR(EvictOne());
  }
  std::vector<uint8_t> image(kPageSize);
  GOMFM_RETURN_IF_ERROR(disk_->ReadPage(id, image.data()));
  lru_.push_front(id);
  Frame frame{Page(std::move(image)), /*dirty=*/false, /*pin_count=*/0,
              lru_.begin()};
  auto [ins, ok] = frames_.emplace(id, std::move(frame));
  (void)ok;
  return &ins->second.page;
}

Result<Page*> BufferPool::NewPage(PageId* id_out) {
  if (frames_.size() >= capacity_) {
    GOMFM_RETURN_IF_ERROR(EvictOne());
  }
  PageId id = disk_->AllocatePage();
  lru_.push_front(id);
  Frame frame{Page(), /*dirty=*/true, /*pin_count=*/0, lru_.begin()};
  auto [ins, ok] = frames_.emplace(id, std::move(frame));
  (void)ok;
  *id_out = id;
  return &ins->second.page;
}

Status BufferPool::MarkDirty(PageId id) {
  auto it = frames_.find(id);
  if (it == frames_.end()) {
    return Status::NotFound("BufferPool::MarkDirty: page not resident");
  }
  it->second.dirty = true;
  return Status::Ok();
}

Status BufferPool::Pin(PageId id) {
  auto it = frames_.find(id);
  if (it == frames_.end()) {
    return Status::NotFound("BufferPool::Pin: page not resident");
  }
  ++it->second.pin_count;
  return Status::Ok();
}

Status BufferPool::Unpin(PageId id) {
  auto it = frames_.find(id);
  if (it == frames_.end()) {
    return Status::NotFound("BufferPool::Unpin: page not resident");
  }
  if (it->second.pin_count == 0) {
    return Status::FailedPrecondition("BufferPool::Unpin: pin count is zero");
  }
  --it->second.pin_count;
  return Status::Ok();
}

Status BufferPool::EvictOne() {
  // Walk from the LRU end towards MRU looking for an unpinned victim.
  for (auto rit = lru_.rbegin(); rit != lru_.rend(); ++rit) {
    PageId victim = *rit;
    Frame& frame = frames_.at(victim);
    if (frame.pin_count > 0) continue;
    if (frame.dirty) {
      GOMFM_RETURN_IF_ERROR(
          disk_->WritePage(victim, frame.page.image().data()));
    }
    lru_.erase(frame.lru_pos);
    frames_.erase(victim);
    ++evictions_;
    return Status::Ok();
  }
  return Status::FailedPrecondition("BufferPool::EvictOne: all pages pinned");
}

Status BufferPool::FlushAll() {
  for (auto& [id, frame] : frames_) {
    if (frame.dirty) {
      GOMFM_RETURN_IF_ERROR(disk_->WritePage(id, frame.page.image().data()));
      frame.dirty = false;
    }
  }
  return Status::Ok();
}

Status BufferPool::EvictAll() {
  GOMFM_RETURN_IF_ERROR(FlushAll());
  for (auto it = frames_.begin(); it != frames_.end();) {
    if (it->second.pin_count > 0) {
      ++it;
      continue;
    }
    lru_.erase(it->second.lru_pos);
    it = frames_.erase(it);
  }
  return Status::Ok();
}

}  // namespace gom
