#include "storage/buffer_pool.h"

#include <cassert>

#include "storage/wal.h"

namespace gom {

BufferPool::BufferPool(SimDisk* disk, size_t capacity_pages)
    : disk_(disk), capacity_(capacity_pages) {
  assert(capacity_ > 0);
}

void BufferPool::StampRecoveryLsn(Frame& frame) {
  if (wal_ != nullptr) frame.recovery_lsn = wal_->last_lsn();
}

Status BufferPool::WriteBack(PageId id, Frame& frame) {
  // Write-ahead rule: the log records describing this page's content must
  // be durable before the page image itself is.
  if (wal_ != nullptr) {
    GOMFM_RETURN_IF_ERROR(wal_->FlushTo(frame.recovery_lsn));
  }
  return disk_->WritePage(id, frame.page.image().data());
}

void BufferPool::TouchLru(Frame& frame, PageId id) {
  lru_.erase(frame.lru_pos);
  lru_.push_front(id);
  frame.lru_pos = lru_.begin();
}

Result<Page*> BufferPool::Fetch(PageId id) {
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    ++hits_;
    TouchLru(it->second, id);
    return &it->second.page;
  }
  ++misses_;
  if (frames_.size() >= capacity_) {
    GOMFM_RETURN_IF_ERROR(EvictOne());
  }
  std::vector<uint8_t> image(kPageSize);
  GOMFM_RETURN_IF_ERROR(disk_->ReadPage(id, image.data()));
  lru_.push_front(id);
  Frame frame{Page(std::move(image)), /*dirty=*/false, /*pin_count=*/0,
              /*recovery_lsn=*/0, lru_.begin()};
  auto [ins, ok] = frames_.emplace(id, std::move(frame));
  (void)ok;
  return &ins->second.page;
}

Result<Page*> BufferPool::NewPage(PageId* id_out) {
  if (frames_.size() >= capacity_) {
    GOMFM_RETURN_IF_ERROR(EvictOne());
  }
  PageId id = disk_->AllocatePage();
  lru_.push_front(id);
  Frame frame{Page(), /*dirty=*/true, /*pin_count=*/0, /*recovery_lsn=*/0,
              lru_.begin()};
  StampRecoveryLsn(frame);
  auto [ins, ok] = frames_.emplace(id, std::move(frame));
  (void)ok;
  *id_out = id;
  return &ins->second.page;
}

Status BufferPool::MarkDirty(PageId id) {
  auto it = frames_.find(id);
  if (it == frames_.end()) {
    return Status::NotFound("BufferPool::MarkDirty: page not resident");
  }
  it->second.dirty = true;
  StampRecoveryLsn(it->second);
  return Status::Ok();
}

Status BufferPool::Pin(PageId id) {
  auto it = frames_.find(id);
  if (it == frames_.end()) {
    return Status::NotFound("BufferPool::Pin: page not resident");
  }
  ++it->second.pin_count;
  return Status::Ok();
}

Status BufferPool::Unpin(PageId id) {
  auto it = frames_.find(id);
  if (it == frames_.end()) {
    return Status::NotFound("BufferPool::Unpin: page not resident");
  }
  if (it->second.pin_count == 0) {
    return Status::FailedPrecondition("BufferPool::Unpin: pin count is zero");
  }
  --it->second.pin_count;
  return Status::Ok();
}

Status BufferPool::EvictOne() {
  // Walk from the LRU end towards MRU looking for an unpinned victim.
  for (auto rit = lru_.rbegin(); rit != lru_.rend(); ++rit) {
    PageId victim = *rit;
    Frame& frame = frames_.at(victim);
    if (frame.pin_count > 0) continue;
    if (frame.dirty) {
      GOMFM_RETURN_IF_ERROR(WriteBack(victim, frame));
    }
    lru_.erase(frame.lru_pos);
    frames_.erase(victim);
    ++evictions_;
    return Status::Ok();
  }
  return Status::FailedPrecondition("BufferPool::EvictOne: all pages pinned");
}

Status BufferPool::FlushAll() {
  for (auto& [id, frame] : frames_) {
    if (frame.dirty) {
      GOMFM_RETURN_IF_ERROR(WriteBack(id, frame));
      frame.dirty = false;
    }
  }
  return Status::Ok();
}

Status BufferPool::EvictAll() {
  GOMFM_RETURN_IF_ERROR(FlushAll());
  for (auto it = frames_.begin(); it != frames_.end();) {
    if (it->second.pin_count > 0) {
      ++it;
      continue;
    }
    lru_.erase(it->second.lru_pos);
    it = frames_.erase(it);
  }
  return Status::Ok();
}

}  // namespace gom
