#ifndef GOMFM_STORAGE_BUFFER_POOL_H_
#define GOMFM_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "common/status.h"
#include "storage/page.h"
#include "storage/sim_disk.h"

namespace gom {

class WriteAheadLog;

/// An LRU buffer pool over `SimDisk`.
///
/// The paper's benchmarks used a deliberately small 600 kB buffer against a
/// multi-megabyte database so page faults dominate; `BufferPool` reproduces
/// that regime. A fetch of a non-resident page evicts the least recently
/// used unpinned frame (writing it back if dirty) and reads the page from
/// disk — both operations charge simulated disk time.
class BufferPool {
 public:
  /// `disk` must outlive the pool. `capacity_pages` is the frame count
  /// (600 kB / 4 kB = 150 frames for the paper's configuration).
  BufferPool(SimDisk* disk, size_t capacity_pages);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns the in-memory page, faulting it in if necessary. The pointer
  /// stays valid until the page is evicted; callers that need stability
  /// across other fetches must `Pin` first.
  Result<Page*> Fetch(PageId id);

  /// Allocates a brand-new page on disk and returns it resident and dirty.
  Result<Page*> NewPage(PageId* id_out);

  /// Marks a resident page dirty (it will be written back on eviction or
  /// flush).
  Status MarkDirty(PageId id);

  /// Pins / unpins a resident page; pinned pages are never evicted.
  Status Pin(PageId id);
  Status Unpin(PageId id);

  /// Writes back all dirty pages (each write charges disk time).
  Status FlushAll();

  /// Drops every unpinned frame, writing dirty ones back. Used by benchmarks
  /// to cold-start the cache between measurements.
  Status EvictAll();

  bool IsResident(PageId id) const { return frames_.count(id) > 0; }
  size_t resident_pages() const { return frames_.size(); }
  size_t capacity() const { return capacity_; }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  void ResetCounters() { hits_ = misses_ = evictions_ = 0; }

  /// Attaches a write-ahead log (nullptr detaches). With a log attached the
  /// pool enforces the write-ahead rule: before a dirty page is written
  /// back, the log is flushed up to the page's recovery LSN (the newest log
  /// record at the time the page was last dirtied). Without a log the
  /// pool's behaviour is unchanged, I/O for I/O.
  void AttachWal(WriteAheadLog* wal) { wal_ = wal; }
  WriteAheadLog* wal() { return wal_; }

 private:
  struct Frame {
    Page page;
    bool dirty = false;
    uint32_t pin_count = 0;
    uint64_t recovery_lsn = 0;  // newest WAL LSN when last dirtied
    std::list<PageId>::iterator lru_pos;
  };

  /// Frees one frame, preferring the least recently used unpinned page.
  Status EvictOne();
  void TouchLru(Frame& frame, PageId id);
  void StampRecoveryLsn(Frame& frame);
  Status WriteBack(PageId id, Frame& frame);

  SimDisk* disk_;
  WriteAheadLog* wal_ = nullptr;
  size_t capacity_;
  std::unordered_map<PageId, Frame> frames_;
  std::list<PageId> lru_;  // front = most recently used
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace gom

#endif  // GOMFM_STORAGE_BUFFER_POOL_H_
