#ifndef GOMFM_STORAGE_BUFFER_POOL_H_
#define GOMFM_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/page.h"
#include "storage/sim_disk.h"

namespace gom {

class WriteAheadLog;

/// An LRU buffer pool over `SimDisk`.
///
/// The paper's benchmarks used a deliberately small 600 kB buffer against a
/// multi-megabyte database so page faults dominate; `BufferPool` reproduces
/// that regime. A fetch of a non-resident page evicts the least recently
/// used unpinned frame (writing it back if dirty) and reads the page from
/// disk — both operations charge simulated disk time.
///
/// Concurrency: the frame table, LRU list and per-frame metadata are
/// guarded by an internal pool mutex, so `Fetch`/`Unpin`/`MarkDirty` are
/// safe to call from concurrent reader sessions. Each frame additionally
/// carries a latch (`std::shared_mutex`) protecting the page *content*;
/// `Acquire()` returns a `PageGuard` that holds the pin and the latch for
/// the duration of a record operation. The latch order is pool mutex →
/// frame latch, and the pool mutex is never taken while a frame latch is
/// held by the same operation, so the ordering is acyclic.
class BufferPool {
 public:
  /// `disk` must outlive the pool. `capacity_pages` is the frame count
  /// (600 kB / 4 kB = 150 frames for the paper's configuration).
  BufferPool(SimDisk* disk, size_t capacity_pages);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// RAII handle over a pinned, latched frame. While alive the page cannot
  /// be evicted (pinned) and its bytes cannot change under a shared guard
  /// (latched). Movable, not copyable.
  class PageGuard {
   public:
    PageGuard() = default;
    PageGuard(PageGuard&& o) noexcept { *this = std::move(o); }
    PageGuard& operator=(PageGuard&& o) noexcept;
    ~PageGuard() { Release(); }

    PageGuard(const PageGuard&) = delete;
    PageGuard& operator=(const PageGuard&) = delete;

    Page* page() { return page_; }
    PageId id() const { return id_; }
    bool valid() const { return pool_ != nullptr; }

    /// Unlatches and unpins early (idempotent).
    void Release();

   private:
    friend class BufferPool;
    PageGuard(BufferPool* pool, PageId id, Page* page,
              std::shared_ptr<std::shared_mutex> latch, bool exclusive)
        : pool_(pool),
          id_(id),
          page_(page),
          latch_(std::move(latch)),
          exclusive_(exclusive) {}

    BufferPool* pool_ = nullptr;
    PageId id_ = kInvalidPageId;
    Page* page_ = nullptr;
    std::shared_ptr<std::shared_mutex> latch_;
    bool exclusive_ = false;
  };

  /// Fetches (faulting in if necessary), pins and latches the page.
  /// `exclusive` guards byte mutation; shared guards reads.
  Result<PageGuard> Acquire(PageId id, bool exclusive);

  /// Allocates a brand-new page on disk and returns it resident, dirty and
  /// exclusively latched.
  Result<PageGuard> AcquireNew(PageId* id_out);

  /// Returns the in-memory page, faulting it in if necessary. The pointer
  /// stays valid until the page is evicted; callers that need stability
  /// across other fetches must `Pin` first. Unlike `Acquire` this takes no
  /// frame latch — it is the historical single-caller interface, kept for
  /// code that runs outside concurrent sessions.
  Result<Page*> Fetch(PageId id);

  /// Allocates a brand-new page on disk and returns it resident and dirty.
  Result<Page*> NewPage(PageId* id_out);

  /// Marks a resident page dirty (it will be written back on eviction or
  /// flush).
  Status MarkDirty(PageId id);

  /// Pins / unpins a resident page; pinned pages are never evicted.
  Status Pin(PageId id);
  Status Unpin(PageId id);

  /// Writes back all dirty pages (each write charges disk time).
  Status FlushAll();

  /// Drops every unpinned frame, writing dirty ones back. Used by benchmarks
  /// to cold-start the cache between measurements.
  Status EvictAll();

  bool IsResident(PageId id) const {
    std::lock_guard<std::mutex> lock(mu_);
    return frames_.count(id) > 0;
  }
  size_t resident_pages() const {
    std::lock_guard<std::mutex> lock(mu_);
    return frames_.size();
  }
  size_t capacity() const { return capacity_; }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  /// Consistent counter view for harnesses (relaxed loads of monotonic
  /// counters).
  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };
  Counters Snapshot() const { return Counters{hits(), misses(), evictions()}; }

  void ResetCounters() {
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    evictions_.store(0, std::memory_order_relaxed);
  }

  /// Attaches a write-ahead log (nullptr detaches). With a log attached the
  /// pool enforces the write-ahead rule: before a dirty page is written
  /// back, the log is flushed up to the page's recovery LSN (the newest log
  /// record at the time the page was last dirtied). Without a log the
  /// pool's behaviour is unchanged, I/O for I/O.
  void AttachWal(WriteAheadLog* wal) { wal_ = wal; }
  WriteAheadLog* wal() { return wal_; }

  /// Registers an additional WAL stream the write-ahead rule must also
  /// respect (sharded environments run one stream per maintenance plane;
  /// the primary stream carries the recovery-LSN bookkeeping). Before a
  /// dirty page is written back every extra stream is flushed wholesale —
  /// coarser than the primary's FlushTo, but safely so, and the flush is a
  /// no-op when the stream has no unflushed tail. Call during setup, before
  /// concurrent work starts; nullptr streams are ignored.
  void AttachExtraWal(WriteAheadLog* wal) {
    if (wal != nullptr) extra_wals_.push_back(wal);
  }

  /// Drops every extra stream (simulated restart: the crash rigs rebuild
  /// their logs and re-attach). The primary detaches via AttachWal(nullptr).
  void ClearExtraWals() { extra_wals_.clear(); }

 private:
  struct Frame {
    Page page;
    bool dirty = false;
    uint32_t pin_count = 0;
    uint64_t recovery_lsn = 0;  // newest WAL LSN when last dirtied
    std::list<PageId>::iterator lru_pos;
    /// Content latch; shared_ptr keeps it alive for guards outliving an
    /// eviction race (pinning prevents the eviction, the pointer makes the
    /// invariant independent of it).
    std::shared_ptr<std::shared_mutex> latch;
  };

  /// All *Locked helpers require `mu_` to be held.
  Result<Frame*> FetchLocked(PageId id);
  Result<Frame*> NewPageLocked(PageId* id_out);
  Status EvictOneLocked();
  void TouchLru(Frame& frame, PageId id);
  void StampRecoveryLsn(Frame& frame);
  Status WriteBack(PageId id, Frame& frame);
  void ReleaseGuard(PageId id);

  SimDisk* disk_;
  WriteAheadLog* wal_ = nullptr;
  std::vector<WriteAheadLog*> extra_wals_;
  size_t capacity_;
  mutable std::mutex mu_;
  std::unordered_map<PageId, Frame> frames_;
  std::list<PageId> lru_;  // front = most recently used
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace gom

#endif  // GOMFM_STORAGE_BUFFER_POOL_H_
