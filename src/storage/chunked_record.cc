#include "storage/chunked_record.h"

#include <algorithm>

namespace gom {

namespace {
// Leave headroom for the page header and a few slot entries.
constexpr size_t kMaxChunkBytes =
    kPageSize - Page::kHeaderSize - 8 * Page::kSlotEntrySize;
}  // namespace

std::vector<std::vector<uint8_t>> ChunkedRecordStore::Chunk(
    const std::vector<uint8_t>& bytes) {
  std::vector<std::vector<uint8_t>> chunks;
  size_t off = 0;
  do {
    size_t len = std::min(kMaxChunkBytes, bytes.size() - off);
    chunks.emplace_back(bytes.begin() + off, bytes.begin() + off + len);
    off += len;
  } while (off < bytes.size());
  return chunks;
}

Result<ChunkedRecordStore::Handle> ChunkedRecordStore::Insert(
    const std::vector<uint8_t>& bytes) {
  Handle handle;
  for (const auto& chunk : Chunk(bytes)) {
    GOMFM_ASSIGN_OR_RETURN(Rid rid, storage_->InsertRecord(segment_, chunk));
    handle.push_back(rid);
  }
  return handle;
}

Status ChunkedRecordStore::Update(Handle* handle,
                                  const std::vector<uint8_t>& bytes) {
  auto chunks = Chunk(bytes);
  if (chunks.size() == handle->size()) {
    for (size_t i = 0; i < chunks.size(); ++i) {
      GOMFM_ASSIGN_OR_RETURN(
          Rid rid, storage_->UpdateRecord(segment_, (*handle)[i], chunks[i]));
      (*handle)[i] = rid;
    }
    return Status::Ok();
  }
  GOMFM_RETURN_IF_ERROR(Delete(*handle));
  handle->clear();
  for (const auto& chunk : chunks) {
    GOMFM_ASSIGN_OR_RETURN(Rid rid, storage_->InsertRecord(segment_, chunk));
    handle->push_back(rid);
  }
  return Status::Ok();
}

Status ChunkedRecordStore::Delete(const Handle& handle) {
  for (const Rid& rid : handle) {
    GOMFM_RETURN_IF_ERROR(storage_->DeleteRecord(rid));
  }
  return Status::Ok();
}

Status ChunkedRecordStore::Touch(const Handle& handle) const {
  for (const Rid& rid : handle) {
    GOMFM_RETURN_IF_ERROR(storage_->TouchRecord(rid));
  }
  return Status::Ok();
}

Result<std::vector<uint8_t>> ChunkedRecordStore::Read(const Handle& handle) {
  std::vector<uint8_t> out;
  for (const Rid& rid : handle) {
    GOMFM_ASSIGN_OR_RETURN(std::vector<uint8_t> chunk,
                           storage_->ReadRecord(rid));
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
  return out;
}

}  // namespace gom
