#ifndef GOMFM_STORAGE_CHUNKED_RECORD_H_
#define GOMFM_STORAGE_CHUNKED_RECORD_H_

#include <vector>

#include "common/status.h"
#include "storage/storage_manager.h"

namespace gom {

/// Byte payloads of arbitrary size on top of the record store: payloads
/// larger than a page are split across several records ("long records").
/// Used for objects and GMR rows, whose logical reads must touch every
/// page their encoding occupies.
class ChunkedRecordStore {
 public:
  /// A stored payload: the records holding its chunks, in order.
  using Handle = std::vector<Rid>;

  ChunkedRecordStore(StorageManager* storage, SegmentId segment)
      : storage_(storage), segment_(segment) {}

  /// Stores `bytes`, returning the chunk handle.
  Result<Handle> Insert(const std::vector<uint8_t>& bytes);

  /// Replaces the payload; the handle is updated in place (records may be
  /// relocated or re-chunked).
  Status Update(Handle* handle, const std::vector<uint8_t>& bytes);

  /// Frees all chunk records.
  Status Delete(const Handle& handle);

  /// Touches every chunk page (simulates a logical read of the payload
  /// when the decoded form is cached in memory).
  Status Touch(const Handle& handle) const;

  /// Reads the payload back (concatenated chunks).
  Result<std::vector<uint8_t>> Read(const Handle& handle);

  SegmentId segment() const { return segment_; }

 private:
  static std::vector<std::vector<uint8_t>> Chunk(
      const std::vector<uint8_t>& bytes);

  StorageManager* storage_;
  SegmentId segment_;
};

}  // namespace gom

#endif  // GOMFM_STORAGE_CHUNKED_RECORD_H_
