#ifndef GOMFM_STORAGE_FAULT_INJECTOR_H_
#define GOMFM_STORAGE_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace gom {

/// A deterministic fault schedule for `SimDisk`.
///
/// Every page read and write consumes one *op index* (0, 1, 2, …). The
/// schedule maps op indices to faults, so a given seed/schedule always
/// fails at exactly the same point of a deterministic workload — the crash
/// property tests iterate "fail after N ops" over a whole range of N and
/// each N is a distinct, reproducible crash point.
///
/// Fault kinds:
///  - kReadError / kWriteError: the single scheduled op fails with a clean
///    `kIoError` status and does not transfer any data. The device keeps
///    working afterwards (transient fault).
///  - kTornWrite: the scheduled write transfers only the first
///    `torn_bytes` bytes of the page (the tail keeps its previous
///    contents), then the device halts. Models a power loss mid-sector.
///  - kCrash: the scheduled op does not happen and the device halts.
///
/// Once halted ("crashed"), every subsequent I/O fails with `kIoError`
/// until `ClearCrash()` — which models restarting the machine: the page
/// images then hold exactly the durable state.
class FaultInjector {
 public:
  enum class Kind : uint8_t { kReadError, kWriteError, kTornWrite, kCrash };

  struct ScheduledFault {
    uint64_t op_index = 0;
    Kind kind = Kind::kCrash;
    /// kTornWrite: bytes that reach the platter before the power fails.
    size_t torn_bytes = 0;
  };

  FaultInjector() = default;

  /// Schedules `kind` at the `n`-th I/O from now (0 = the very next op).
  void FailAfter(uint64_t n, Kind kind, size_t torn_bytes = 0) {
    schedule_.push_back(ScheduledFault{ops_ + n, kind, torn_bytes});
  }

  /// Convenience: halt the device at the `n`-th I/O from now.
  void CrashAfter(uint64_t n) { FailAfter(n, Kind::kCrash); }

  /// Decision for the next read. Exactly one op index is consumed.
  /// Returns OK when the read should proceed normally.
  Status OnRead() {
    uint64_t op = ops_++;
    ++reads_seen_;
    if (crashed_) return Crashed();
    const ScheduledFault* f = Match(op);
    if (f == nullptr) return Status::Ok();
    switch (f->kind) {
      case Kind::kReadError:
        ++faults_fired_;
        return Status::IoError("injected read fault at op " +
                               std::to_string(op));
      case Kind::kCrash:
        crashed_ = true;
        ++faults_fired_;
        return Crashed();
      default:
        return Status::Ok();  // write faults do not apply to reads
    }
  }

  /// Decision for the next write. `torn_bytes_out` is set to a nonzero
  /// prefix length when the write must be torn (the caller transfers only
  /// that prefix and the device halts).
  Status OnWrite(size_t* torn_bytes_out) {
    *torn_bytes_out = 0;
    uint64_t op = ops_++;
    ++writes_seen_;
    if (crashed_) return Crashed();
    const ScheduledFault* f = Match(op);
    if (f == nullptr) return Status::Ok();
    switch (f->kind) {
      case Kind::kWriteError:
        ++faults_fired_;
        return Status::IoError("injected write fault at op " +
                               std::to_string(op));
      case Kind::kTornWrite:
        crashed_ = true;
        ++faults_fired_;
        *torn_bytes_out = f->torn_bytes;
        return Status::Ok();  // the (partial) transfer happens
      case Kind::kCrash:
        crashed_ = true;
        ++faults_fired_;
        return Crashed();
      default:
        return Status::Ok();  // read faults do not apply to writes
    }
  }

  bool crashed() const { return crashed_; }

  /// "Restart": the device accepts I/O again; the schedule stays armed for
  /// later op indices, counters keep running.
  void ClearCrash() { crashed_ = false; }

  /// Drops all scheduled faults (recovery runs fault-free).
  void ClearSchedule() { schedule_.clear(); }

  uint64_t ops_seen() const { return ops_; }
  uint64_t faults_fired() const { return faults_fired_; }

 private:
  Status Crashed() const {
    return Status::IoError("simulated crash: device halted");
  }

  const ScheduledFault* Match(uint64_t op) const {
    for (const ScheduledFault& f : schedule_) {
      if (f.op_index == op) return &f;
    }
    return nullptr;
  }

  std::vector<ScheduledFault> schedule_;
  bool crashed_ = false;
  uint64_t ops_ = 0;
  uint64_t reads_seen_ = 0;
  uint64_t writes_seen_ = 0;
  uint64_t faults_fired_ = 0;
};

}  // namespace gom

#endif  // GOMFM_STORAGE_FAULT_INJECTOR_H_
