#include "storage/group_commit.h"

#include <algorithm>
#include <chrono>

#include "storage/wal.h"

namespace gom {

constexpr uint32_t GroupCommitter::kWaitBucketUs[5];
constexpr size_t GroupCommitter::kWaitBuckets;

GroupCommitter::GroupCommitter(WriteAheadLog* wal,
                               const GroupCommitOptions& options)
    : wal_(wal), options_(options) {}

Status GroupCommitter::CommitAll() { return CommitUpTo(wal_->last_lsn()); }

Status GroupCommitter::CommitUpTo(Lsn lsn) {
  if (lsn == kNullLsn) return Status::Ok();
  // A target beyond the last appended record can never be reached by
  // flushing (the flush pins durability at append-time last_lsn); clamp so
  // a stale caller converges after one flush, matching FlushTo's
  // single-flush behaviour.
  lsn = std::min(lsn, wal_->last_lsn());
  if (lsn == kNullLsn) return Status::Ok();

  const auto t0 = std::chrono::steady_clock::now();
  auto record_wait = [&](bool piggyback) {
    const uint64_t us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    size_t b = 0;
    while (b + 1 < kWaitBuckets && us >= kWaitBucketUs[b]) ++b;
    ++wait_hist_[b];
    if (piggyback) ++piggybacked_;
  };

  std::unique_lock<std::mutex> lock(mu_);
  ++commits_;
  if (lsn <= durable_lsn_) {
    ++already_durable_;
    return Status::Ok();
  }

  for (;;) {
    if (lsn <= durable_lsn_) {
      record_wait(/*piggyback=*/true);
      return Status::Ok();
    }
    if (!flush_active_) {
      // Leader: optionally linger so concurrent sessions (which append
      // under the log's own mutex, unimpeded by ours) can join the group,
      // then flush everything appended so far in one device write.
      flush_active_ = true;
      if (options_.max_group_delay_us > 0 && last_group_ > 1) {
        cv_.wait_for(lock,
                     std::chrono::microseconds(options_.max_group_delay_us));
      }
      lock.unlock();
      const Lsn target = wal_->last_lsn();  // what this attempt covers
      Status st = wal_->FlushDirect();
      const Lsn durable = wal_->flushed_lsn();
      lock.lock();
      ++fsyncs_;
      ++flush_epoch_;
      if (st.ok()) {
        durable_lsn_ = std::max(durable_lsn_, durable);
        uint64_t group = 1;  // the leader itself
        for (Lsn w : waiting_lsns_) {
          if (w <= durable) ++group;
        }
        last_group_ = group;
        grouped_commits_ += group;
        max_group_ = std::max(max_group_, group);
      } else {
        // The attempt covered every record appended before the flush —
        // in particular this leader's and every current waiter's target.
        // None of them may claim durability; waiters covered by the
        // attempt observe the error via attempt_{lsn,status}_.
        attempt_lsn_ = std::max(attempt_lsn_, target);
        attempt_status_ = st;
        last_group_ = 1;
      }
      flush_active_ = false;
      cv_.notify_all();
      if (!st.ok()) return st;
      if (lsn <= durable_lsn_) {
        record_wait(/*piggyback=*/false);
        return Status::Ok();
      }
      continue;  // durability raced backwards? re-elect (defensive)
    }
    // Follower: a leader's flush is in flight. Our record was appended
    // before we got here, so either this flush covers it or the next
    // leader's will.
    waiting_lsns_.push_back(lsn);
    const uint64_t joined = flush_epoch_;
    cv_.wait(lock, [&] {
      return lsn <= durable_lsn_ || flush_epoch_ != joined || !flush_active_;
    });
    auto it = std::find(waiting_lsns_.begin(), waiting_lsns_.end(), lsn);
    if (it != waiting_lsns_.end()) waiting_lsns_.erase(it);
    if (lsn <= durable_lsn_) {
      record_wait(/*piggyback=*/true);
      return Status::Ok();
    }
    if (flush_epoch_ != joined && !attempt_status_.ok() &&
        lsn <= attempt_lsn_) {
      // Our group's flush failed: the device refused the write that would
      // have made us durable. Propagate; a later commit retries fresh.
      return attempt_status_;
    }
    // Not covered (we arrived mid-flush with a later LSN, or the failed
    // attempt predates us): loop and possibly lead the next group.
  }
}

GroupCommitter::Snapshot GroupCommitter::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot s;
  s.commits = commits_;
  s.already_durable = already_durable_;
  s.fsyncs = fsyncs_;
  s.piggybacked = piggybacked_;
  s.max_group = max_group_;
  s.mean_group =
      fsyncs_ > 0 ? static_cast<double>(grouped_commits_) /
                        static_cast<double>(fsyncs_)
                  : 0.0;
  for (size_t i = 0; i < kWaitBuckets; ++i) s.wait_hist[i] = wait_hist_[i];
  return s;
}

}  // namespace gom
