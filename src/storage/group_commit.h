#ifndef GOMFM_STORAGE_GROUP_COMMIT_H_
#define GOMFM_STORAGE_GROUP_COMMIT_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/status.h"

namespace gom {

class WriteAheadLog;
using Lsn = uint64_t;

/// Knobs for one group committer (one per WAL stream).
struct GroupCommitOptions {
  /// How long an elected leader lingers before flushing, giving concurrent
  /// sessions time to append their records and join the group. The linger
  /// is adaptive: it is only paid when the *previous* flush retired more
  /// than one commit (i.e. the stream demonstrably has company) — a
  /// single-session stream never waits, so enabling group commit costs an
  /// idle workload nothing. 0 disables lingering entirely; piggybacking
  /// (joiners that arrive while a flush is in flight share the *next*
  /// flush) still batches.
  uint32_t max_group_delay_us = 0;
  /// Whether an update/delete *intent* record must hit the device before
  /// the in-memory mutation proceeds (the pre-group-commit behavior: one
  /// fsync per relevant update). The relaxed default acknowledges intents
  /// once appended: consistency never depended on the eager fsync —
  /// the intent's LSN precedes every dependent record in the log (a remat
  /// result can only become durable together with its intent) and dirty
  /// base pages carry a recovery LSN past the intent, so the buffer pool's
  /// flush-log-before-dirty-page rule forces the intent out before any
  /// mutated base state can reach the device. A crash then loses the whole
  /// in-flight suffix (intent, mutation and remat together) instead of
  /// leaving a paid-for fsync per update; what it can never lose is an
  /// invalidation some durable state depends on. Strict mode keeps the
  /// per-intent `CommitUpTo` for callers that want the old durability
  /// timing under group commit.
  bool strict_intent_fsync = false;
};

/// InnoDB-style group commit for a `WriteAheadLog`: concurrent sessions
/// append records (under their own gates) and then block in
/// `CommitUpTo(lsn)` until their LSN is durable. The first committer to
/// find no flush in flight becomes the *leader*: it optionally lingers
/// (`max_group_delay_us`), then performs ONE device flush covering every
/// record appended so far and wakes the whole group. Committers that
/// arrive while the leader is flushing wait and are retired either by that
/// flush (their LSN was covered) or by the next one (leader handoff: the
/// first uncovered waiter to wake is elected next).
///
/// Error semantics: a failed flush fails every commit in the group whose
/// LSN the attempt covered (the device said no; nobody in the group may
/// claim durability). Later commits elect a fresh leader and retry — a
/// transient fault does not wedge the stream.
///
/// Thread-safe; one instance per WAL stream. The committer never holds its
/// mutex across the device flush, so appends to the log (which take the
/// log's own mutex) proceed while the leader writes.
class GroupCommitter {
 public:
  GroupCommitter(WriteAheadLog* wal, const GroupCommitOptions& options);

  GroupCommitter(const GroupCommitter&) = delete;
  GroupCommitter& operator=(const GroupCommitter&) = delete;

  /// Blocks until every record with LSN <= `lsn` is durable (possibly
  /// flushed by another session's leader). kNullLsn returns immediately.
  Status CommitUpTo(Lsn lsn);

  /// CommitUpTo over everything appended so far (the drop-in replacement
  /// for `WriteAheadLog::Flush`).
  Status CommitAll();

  bool strict_intent_fsync() const { return options_.strict_intent_fsync; }

  /// Leader-wait histogram bucket upper bounds in microseconds; the last
  /// bucket is open-ended.
  static constexpr uint32_t kWaitBucketUs[5] = {10, 100, 1000, 10000, 0};
  static constexpr size_t kWaitBuckets = 5;

  struct Snapshot {
    uint64_t commits = 0;          // CommitUpTo/CommitAll calls
    uint64_t already_durable = 0;  // satisfied without any waiting
    uint64_t fsyncs = 0;           // device flushes performed by leaders
    uint64_t piggybacked = 0;      // commits retired by another's flush
    uint64_t max_group = 0;        // most commits retired by one flush
    double mean_group = 0;         // (commits - already_durable) / fsyncs
    uint64_t wait_hist[kWaitBuckets] = {0, 0, 0, 0, 0};
  };
  Snapshot snapshot() const;

 private:
  WriteAheadLog* wal_;
  GroupCommitOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool flush_active_ = false;
  Lsn durable_lsn_ = 0;
  /// Highest LSN the most recent (possibly failed) flush attempted to make
  /// durable, and that attempt's outcome + sequence number: a waiter whose
  /// LSN a failed attempt covered returns the attempt's error.
  Lsn attempt_lsn_ = 0;
  Status attempt_status_ = Status::Ok();
  uint64_t flush_epoch_ = 0;
  /// LSNs of committers currently blocked (leader excluded). The leader
  /// counts the covered ones at flush end to size the group.
  std::vector<Lsn> waiting_lsns_;
  uint64_t last_group_ = 1;  // adaptive-linger signal

  uint64_t commits_ = 0;
  uint64_t already_durable_ = 0;
  uint64_t fsyncs_ = 0;
  uint64_t piggybacked_ = 0;
  uint64_t grouped_commits_ = 0;
  uint64_t max_group_ = 0;
  uint64_t wait_hist_[kWaitBuckets] = {0, 0, 0, 0, 0};
};

}  // namespace gom

#endif  // GOMFM_STORAGE_GROUP_COMMIT_H_
