#include "storage/page.h"

#include <algorithm>
#include <cassert>

namespace gom {

size_t Page::FreeSpace() const {
  // Space between the end of the data area and the start of the slot
  // directory, minus one future slot entry. If a free slot entry exists it
  // can be reused, but we report the conservative value.
  size_t directory_begin = kPageSize - slot_count() * kSlotEntrySize;
  size_t used_end = data_begin();
  if (directory_begin < used_end + kSlotEntrySize) return 0;
  return directory_begin - used_end - kSlotEntrySize;
}

bool Page::Fits(size_t length) const { return length <= FreeSpace(); }

SlotId Page::AcquireSlot() {
  uint16_t n = slot_count();
  for (SlotId s = 0; s < n; ++s) {
    if (SlotLength(s) == 0 && SlotOffset(s) == 0) return s;
  }
  if (n == UINT16_MAX - 1) return kInvalidSlot;
  SetSlotCount(n + 1);
  SetSlot(n, 0, 0);
  return n;
}

Result<SlotId> Page::Insert(const uint8_t* data, size_t length) {
  if (length == 0 || length > kPageSize) {
    return Status::InvalidArgument("Page::Insert: bad record length " +
                                   std::to_string(length));
  }
  if (!Fits(length)) {
    return Status::OutOfRange("Page::Insert: record does not fit");
  }
  SlotId slot = AcquireSlot();
  if (slot == kInvalidSlot) {
    return Status::OutOfRange("Page::Insert: slot directory full");
  }
  uint16_t offset = data_begin();
  std::memcpy(image_.data() + offset, data, length);
  SetSlot(slot, offset, static_cast<uint16_t>(length));
  SetDataBegin(static_cast<uint16_t>(offset + length));
  return slot;
}

Result<const uint8_t*> Page::Read(SlotId slot, size_t* length) const {
  if (slot >= slot_count() || SlotLength(slot) == 0) {
    return Status::NotFound("Page::Read: no record in slot " +
                            std::to_string(slot));
  }
  *length = SlotLength(slot);
  return static_cast<const uint8_t*>(image_.data() + SlotOffset(slot));
}

Status Page::Update(SlotId slot, const uint8_t* data, size_t length) {
  if (slot >= slot_count() || SlotLength(slot) == 0) {
    return Status::NotFound("Page::Update: no record in slot " +
                            std::to_string(slot));
  }
  if (length == 0) {
    return Status::InvalidArgument("Page::Update: empty record");
  }
  if (length > SlotLength(slot)) {
    return Status::OutOfRange("Page::Update: record grew; relocate");
  }
  std::memcpy(image_.data() + SlotOffset(slot), data, length);
  SetSlot(slot, SlotOffset(slot), static_cast<uint16_t>(length));
  return Status::Ok();
}

Status Page::Delete(SlotId slot) {
  if (slot >= slot_count() || SlotLength(slot) == 0) {
    return Status::NotFound("Page::Delete: no record in slot " +
                            std::to_string(slot));
  }
  SetSlot(slot, 0, 0);
  return Status::Ok();
}

uint16_t Page::live_records() const {
  uint16_t n = slot_count(), live = 0;
  for (SlotId s = 0; s < n; ++s) {
    if (SlotLength(s) != 0) ++live;
  }
  return live;
}

void Page::Compact() {
  struct LiveSlot {
    SlotId slot;
    uint16_t offset;
    uint16_t length;
  };
  std::vector<LiveSlot> live;
  uint16_t n = slot_count();
  live.reserve(n);
  for (SlotId s = 0; s < n; ++s) {
    if (SlotLength(s) != 0) live.push_back({s, SlotOffset(s), SlotLength(s)});
  }
  std::sort(live.begin(), live.end(),
            [](const LiveSlot& a, const LiveSlot& b) { return a.offset < b.offset; });
  uint16_t cursor = kHeaderSize;
  for (const LiveSlot& ls : live) {
    if (ls.offset != cursor) {
      std::memmove(image_.data() + cursor, image_.data() + ls.offset, ls.length);
      SetSlot(ls.slot, cursor, ls.length);
    }
    cursor = static_cast<uint16_t>(cursor + ls.length);
  }
  SetDataBegin(cursor);
}

}  // namespace gom
