#ifndef GOMFM_STORAGE_PAGE_H_
#define GOMFM_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/status.h"
#include "storage/sim_disk.h"

namespace gom {

using SlotId = uint16_t;

/// A slotted heap page.
///
/// Layout (within the kPageSize image):
///   [0..2)   uint16 slot_count     number of slot directory entries
///   [2..4)   uint16 data_begin     offset of the lowest used data byte
///   [4..)    record data grows upward from offset 4
///   [end)    slot directory grows downward from the page end; each entry is
///            {uint16 offset, uint16 length}; length == 0 marks a free slot.
///
/// Records are raw byte strings. `Update` succeeds in place when the new
/// payload is not larger than the old one; otherwise the caller relocates
/// the record (delete + insert elsewhere), as in classic slotted-page
/// storage managers.
class Page {
 public:
  Page() : image_(kPageSize, 0) { SetSlotCount(0), SetDataBegin(kHeaderSize); }

  /// Adopts an existing page image (e.g., freshly read from disk).
  explicit Page(std::vector<uint8_t> image) : image_(std::move(image)) {}

  /// Bytes of free space available for one more record (accounting for the
  /// slot directory entry it would need).
  size_t FreeSpace() const;

  /// True if a record of `length` bytes fits on this page.
  bool Fits(size_t length) const;

  /// Inserts a record, returning its slot. Fails with kOutOfRange when the
  /// record does not fit (callers should check `Fits` first).
  Result<SlotId> Insert(const uint8_t* data, size_t length);

  /// Reads the record in `slot`; the returned pointer aliases the page image
  /// and is invalidated by any mutation of the page.
  Result<const uint8_t*> Read(SlotId slot, size_t* length) const;

  /// Replaces the record in `slot`. Only shrinking or same-size updates are
  /// done in place; growing updates fail with kOutOfRange so the caller can
  /// relocate.
  Status Update(SlotId slot, const uint8_t* data, size_t length);

  /// Frees the record in `slot`. The slot entry is retained (length = 0) so
  /// other record ids stay stable; space is reclaimed by `Compact`.
  Status Delete(SlotId slot);

  /// Rewrites the data area to squeeze out holes left by deletes/shrinks.
  void Compact();

  uint16_t slot_count() const { return ReadU16(0); }

  /// Number of live (non-deleted) records.
  uint16_t live_records() const;

  const std::vector<uint8_t>& image() const { return image_; }
  std::vector<uint8_t>& mutable_image() { return image_; }

  static constexpr size_t kHeaderSize = 4;
  static constexpr size_t kSlotEntrySize = 4;

 private:
  uint16_t ReadU16(size_t off) const {
    uint16_t v;
    std::memcpy(&v, image_.data() + off, 2);
    return v;
  }
  void WriteU16(size_t off, uint16_t v) {
    std::memcpy(image_.data() + off, &v, 2);
  }
  void SetSlotCount(uint16_t n) { WriteU16(0, n); }
  void SetDataBegin(uint16_t o) { WriteU16(2, o); }
  uint16_t data_begin() const { return ReadU16(2); }

  size_t SlotEntryOffset(SlotId slot) const {
    return kPageSize - (static_cast<size_t>(slot) + 1) * kSlotEntrySize;
  }
  uint16_t SlotOffset(SlotId slot) const { return ReadU16(SlotEntryOffset(slot)); }
  uint16_t SlotLength(SlotId slot) const {
    return ReadU16(SlotEntryOffset(slot) + 2);
  }
  void SetSlot(SlotId slot, uint16_t offset, uint16_t length) {
    WriteU16(SlotEntryOffset(slot), offset);
    WriteU16(SlotEntryOffset(slot) + 2, length);
  }

  /// Finds a free (deleted) slot entry to reuse, or allocates a new one.
  /// Returns kInvalidSlot when the directory cannot grow.
  SlotId AcquireSlot();

  static constexpr SlotId kInvalidSlot = UINT16_MAX;

  std::vector<uint8_t> image_;
};

}  // namespace gom

#endif  // GOMFM_STORAGE_PAGE_H_
