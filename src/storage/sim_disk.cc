#include "storage/sim_disk.h"

#include <chrono>
#include <cstring>
#include <thread>

namespace gom {

PageId SimDisk::AllocatePage() {
  std::lock_guard<std::mutex> lock(mu_);
  pages_.emplace_back(kPageSize, 0);
  return static_cast<PageId>(pages_.size() - 1);
}

Status SimDisk::ReadPage(PageId id, uint8_t* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= pages_.size()) {
    return Status::OutOfRange("SimDisk::ReadPage: page " + std::to_string(id) +
                              " beyond end of disk");
  }
  if (injector_ != nullptr) {
    GOMFM_RETURN_IF_ERROR(injector_->OnRead());
  }
  std::memcpy(out, pages_[id].data(), kPageSize);
  ++reads_;
  clock_->Advance(cost_.disk_access_seconds);
  return Status::Ok();
}

Status SimDisk::WritePage(PageId id, const uint8_t* data) {
  int stall = write_stall_us_.load(std::memory_order_relaxed);
  if (stall > 0) {
    // Under the device mutex writes would serialize anyway; stalling before
    // taking it lets concurrent committers reach their wait queues, which
    // is the contention pattern group commit batches.
    std::this_thread::sleep_for(std::chrono::microseconds(stall));
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= pages_.size()) {
    return Status::OutOfRange("SimDisk::WritePage: page " + std::to_string(id) +
                              " beyond end of disk");
  }
  size_t torn_bytes = 0;
  if (injector_ != nullptr) {
    GOMFM_RETURN_IF_ERROR(injector_->OnWrite(&torn_bytes));
  }
  if (torn_bytes > 0 && torn_bytes < kPageSize) {
    // Torn write: only a prefix reaches the platter, the rest of the page
    // keeps its previous contents, and the device halts. Recovery must
    // detect the mix via record checksums.
    std::memcpy(pages_[id].data(), data, torn_bytes);
    ++writes_;
    clock_->Advance(cost_.disk_access_seconds);
    return Status::Ok();
  }
  std::memcpy(pages_[id].data(), data, kPageSize);
  ++writes_;
  clock_->Advance(cost_.disk_access_seconds);
  return Status::Ok();
}

}  // namespace gom
