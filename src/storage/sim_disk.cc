#include "storage/sim_disk.h"

#include <cstring>

namespace gom {

PageId SimDisk::AllocatePage() {
  pages_.emplace_back(kPageSize, 0);
  return static_cast<PageId>(pages_.size() - 1);
}

Status SimDisk::ReadPage(PageId id, uint8_t* out) {
  if (id >= pages_.size()) {
    return Status::OutOfRange("SimDisk::ReadPage: page " + std::to_string(id) +
                              " beyond end of disk");
  }
  std::memcpy(out, pages_[id].data(), kPageSize);
  ++reads_;
  clock_->Advance(cost_.disk_access_seconds);
  return Status::Ok();
}

Status SimDisk::WritePage(PageId id, const uint8_t* data) {
  if (id >= pages_.size()) {
    return Status::OutOfRange("SimDisk::WritePage: page " + std::to_string(id) +
                              " beyond end of disk");
  }
  std::memcpy(pages_[id].data(), data, kPageSize);
  ++writes_;
  clock_->Advance(cost_.disk_access_seconds);
  return Status::Ok();
}

}  // namespace gom
