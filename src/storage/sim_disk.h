#ifndef GOMFM_STORAGE_SIM_DISK_H_
#define GOMFM_STORAGE_SIM_DISK_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/sim_clock.h"
#include "common/status.h"
#include "storage/fault_injector.h"

namespace gom {

/// Fixed page size of the simulated store (EXODUS used 4 kB pages as well).
inline constexpr size_t kPageSize = 4096;

using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = UINT32_MAX;

/// A simulated disk: an array of page images plus an I/O accounting layer.
/// Every page read or write charges `CostModel::disk_access_seconds` to the
/// attached `SimClock` and bumps the corresponding counter. Benchmarks read
/// the clock to obtain the paper's "user time".
class SimDisk {
 public:
  /// `clock` must outlive the disk. `cost` is copied.
  SimDisk(SimClock* clock, const CostModel& cost)
      : clock_(clock), cost_(cost) {}

  SimDisk(const SimDisk&) = delete;
  SimDisk& operator=(const SimDisk&) = delete;

  /// Allocates a fresh zeroed page and returns its id. Allocation itself is
  /// not charged (the subsequent write is).
  PageId AllocatePage();

  /// Copies the page image into `out` (must hold kPageSize bytes).
  Status ReadPage(PageId id, uint8_t* out);

  /// Overwrites the page image from `data` (kPageSize bytes).
  Status WritePage(PageId id, const uint8_t* data);

  size_t page_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pages_.size();
  }
  uint64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  uint64_t writes() const { return writes_.load(std::memory_order_relaxed); }

  /// Consistent view of the I/O counters for harnesses (relaxed loads; the
  /// counters are monotonic so any snapshot is a valid point in time).
  struct Counters {
    uint64_t reads = 0;
    uint64_t writes = 0;
  };
  Counters Snapshot() const { return Counters{reads(), writes()}; }

  /// Clears I/O counters (the clock is owned by the caller and reset there).
  void ResetCounters() {
    reads_.store(0, std::memory_order_relaxed);
    writes_.store(0, std::memory_order_relaxed);
  }

  /// Attaches a deterministic fault schedule (nullptr detaches). The
  /// injector must outlive the disk. With no injector every I/O succeeds —
  /// the pre-fault-model behaviour, bit for bit.
  void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() { return injector_; }

  /// Wall-clock stall per page write (a benchmark hook, like
  /// GmrManager::set_maintenance_stall_us): emulates a device whose flush
  /// takes real time, so group-commit batching has a cost to amortize —
  /// the in-memory memcpy alone finishes before a second committer can
  /// even block. 0 (the default) keeps writes instantaneous; simulated
  /// time is unaffected either way.
  void set_write_stall_us(int us) {
    write_stall_us_.store(us, std::memory_order_relaxed);
  }

 private:
  SimClock* clock_;
  CostModel cost_;
  FaultInjector* injector_ = nullptr;
  /// Guards the page array: per-shard WAL streams and writer threads under
  /// different shard gates share one device. Uncontended in single-threaded
  /// runs and free of simulated-time charges either way.
  mutable std::mutex mu_;
  std::vector<std::vector<uint8_t>> pages_;
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<int> write_stall_us_{0};
};

}  // namespace gom

#endif  // GOMFM_STORAGE_SIM_DISK_H_
