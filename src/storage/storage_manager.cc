#include "storage/storage_manager.h"

#include <functional>

namespace gom {

SegmentId StorageManager::CreateSegment(const std::string& name) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  SegmentId id = static_cast<SegmentId>(segments_.size());
  segments_.push_back(Segment{name, {}});
  by_name_.emplace(name, id);
  return id;
}

Result<PageId> StorageManager::PageWithRoom(SegmentId segment, size_t length) {
  if (segment >= segments_.size()) {
    return Status::InvalidArgument("StorageManager: unknown segment");
  }
  Segment& seg = segments_[segment];
  // Try the most recently filled page first: this keeps inserts append-
  // oriented and clustered in creation order.
  if (!seg.pages.empty()) {
    PageId last = seg.pages.back();
    GOMFM_ASSIGN_OR_RETURN(auto guard, pool_->Acquire(last, false));
    if (guard.page()->Fits(length)) return last;
  }
  PageId id;
  GOMFM_ASSIGN_OR_RETURN(auto guard, pool_->AcquireNew(&id));
  (void)guard;
  seg.pages.push_back(id);
  return id;
}

Result<Rid> StorageManager::InsertRecord(SegmentId segment,
                                         const std::vector<uint8_t>& data) {
  if (data.empty() || data.size() > kPageSize - Page::kHeaderSize -
                                        Page::kSlotEntrySize) {
    return Status::InvalidArgument("StorageManager::InsertRecord: bad size " +
                                   std::to_string(data.size()));
  }
  GOMFM_ASSIGN_OR_RETURN(PageId pid, PageWithRoom(segment, data.size()));
  GOMFM_ASSIGN_OR_RETURN(auto guard, pool_->Acquire(pid, true));
  GOMFM_ASSIGN_OR_RETURN(SlotId slot,
                         guard.page()->Insert(data.data(), data.size()));
  GOMFM_RETURN_IF_ERROR(pool_->MarkDirty(pid));
  return Rid{pid, slot};
}

Result<std::vector<uint8_t>> StorageManager::ReadRecord(const Rid& rid) {
  GOMFM_ASSIGN_OR_RETURN(auto guard, pool_->Acquire(rid.page, false));
  size_t length = 0;
  GOMFM_ASSIGN_OR_RETURN(const uint8_t* data,
                         guard.page()->Read(rid.slot, &length));
  return std::vector<uint8_t>(data, data + length);
}

Status StorageManager::TouchRecord(const Rid& rid) {
  GOMFM_ASSIGN_OR_RETURN(auto guard, pool_->Acquire(rid.page, false));
  (void)guard;
  return Status::Ok();
}

Result<Rid> StorageManager::UpdateRecord(SegmentId segment, const Rid& rid,
                                         const std::vector<uint8_t>& data) {
  GOMFM_ASSIGN_OR_RETURN(auto guard, pool_->Acquire(rid.page, true));
  Page* page = guard.page();
  Status in_place = page->Update(rid.slot, data.data(), data.size());
  if (in_place.ok()) {
    GOMFM_RETURN_IF_ERROR(pool_->MarkDirty(rid.page));
    return rid;
  }
  if (in_place.code() != StatusCode::kOutOfRange) return in_place;
  // The record grew: try compaction on its page, then relocate.
  page->Compact();
  Status retry = page->Update(rid.slot, data.data(), data.size());
  if (retry.ok()) {
    GOMFM_RETURN_IF_ERROR(pool_->MarkDirty(rid.page));
    return rid;
  }
  GOMFM_RETURN_IF_ERROR(page->Delete(rid.slot));
  GOMFM_RETURN_IF_ERROR(pool_->MarkDirty(rid.page));
  guard.Release();  // InsertRecord may relocate onto this same page
  return InsertRecord(segment, data);
}

Status StorageManager::DeleteRecord(const Rid& rid) {
  GOMFM_ASSIGN_OR_RETURN(auto guard, pool_->Acquire(rid.page, true));
  GOMFM_RETURN_IF_ERROR(guard.page()->Delete(rid.slot));
  return pool_->MarkDirty(rid.page);
}

size_t StorageManager::SegmentPageCount(SegmentId segment) const {
  if (segment >= segments_.size()) return 0;
  return segments_[segment].pages.size();
}

Status StorageManager::ScanSegment(SegmentId segment,
                                   const std::function<void(const Rid&)>& fn) {
  if (segment >= segments_.size()) {
    return Status::InvalidArgument("StorageManager::ScanSegment: bad segment");
  }
  for (PageId pid : segments_[segment].pages) {
    GOMFM_ASSIGN_OR_RETURN(auto guard, pool_->Acquire(pid, false));
    uint16_t n = guard.page()->slot_count();
    for (SlotId s = 0; s < n; ++s) {
      size_t len = 0;
      if (guard.page()->Read(s, &len).ok()) fn(Rid{pid, s});
    }
  }
  return Status::Ok();
}

}  // namespace gom
