#ifndef GOMFM_STORAGE_STORAGE_MANAGER_H_
#define GOMFM_STORAGE_STORAGE_MANAGER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"

namespace gom {

/// Physical address of a record: page + slot.
struct Rid {
  PageId page = kInvalidPageId;
  SlotId slot = 0;

  bool valid() const { return page != kInvalidPageId; }
  bool operator==(const Rid& o) const { return page == o.page && slot == o.slot; }
};

struct RidHash {
  size_t operator()(const Rid& r) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(r.page) << 16) | r.slot);
  }
};

using SegmentId = uint32_t;

/// Record-oriented storage on top of the buffer pool — the role EXODUS
/// played for GOM. Records live in named segments; within a segment pages
/// fill in insertion order, which gives composite objects created together
/// (a Cuboid followed by its eight Vertex instances) natural physical
/// clustering, mirroring GOM's placement.
///
/// Updates that grow a record relocate it and return the new `Rid`; the
/// object layer keeps its OID → Rid mapping up to date.
class StorageManager {
 public:
  /// `pool` must outlive the manager.
  explicit StorageManager(BufferPool* pool) : pool_(pool) {}

  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;

  /// Creates (or returns) the segment named `name`.
  SegmentId CreateSegment(const std::string& name);

  /// Appends a record to `segment`.
  Result<Rid> InsertRecord(SegmentId segment, const std::vector<uint8_t>& data);

  /// Copies the record's bytes out (the page may be evicted afterwards).
  Result<std::vector<uint8_t>> ReadRecord(const Rid& rid);

  /// Touches the record's page for reading without copying bytes — used by
  /// the object layer when the authoritative object state is cached in
  /// memory and only the I/O behaviour must be simulated.
  Status TouchRecord(const Rid& rid);

  /// Overwrites the record. Returns the (possibly relocated) Rid.
  Result<Rid> UpdateRecord(SegmentId segment, const Rid& rid,
                           const std::vector<uint8_t>& data);

  Status DeleteRecord(const Rid& rid);

  /// Number of pages owned by `segment`.
  size_t SegmentPageCount(SegmentId segment) const;

  /// Runs `fn(rid)` for every live record of the segment in physical order,
  /// faulting pages as needed (this is a full segment scan).
  Status ScanSegment(SegmentId segment,
                     const std::function<void(const Rid&)>& fn);

  BufferPool* buffer_pool() { return pool_; }

 private:
  struct Segment {
    std::string name;
    std::vector<PageId> pages;
  };

  /// Finds or creates a page in the segment with room for `length` bytes.
  Result<PageId> PageWithRoom(SegmentId segment, size_t length);

  BufferPool* pool_;
  std::vector<Segment> segments_;
  std::unordered_map<std::string, SegmentId> by_name_;
};

}  // namespace gom

#endif  // GOMFM_STORAGE_STORAGE_MANAGER_H_
