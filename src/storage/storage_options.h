#ifndef GOMFM_STORAGE_STORAGE_OPTIONS_H_
#define GOMFM_STORAGE_STORAGE_OPTIONS_H_

namespace gom {

/// Knobs for the simulated storage stack. Defaults reproduce the pre-WAL
/// behaviour exactly (bit-identical I/O counts and figures): durability is
/// opt-in because the paper's experiments assume a fault-free device.
struct StorageOptions {
  /// Create a `WriteAheadLog`, attach it to the buffer pool (write-ahead
  /// rule for dirty data pages) and to the `GmrManager` (logical
  /// maintenance records, failure-atomic batches).
  bool enable_wal = false;
};

}  // namespace gom

#endif  // GOMFM_STORAGE_STORAGE_OPTIONS_H_
