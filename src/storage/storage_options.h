#ifndef GOMFM_STORAGE_STORAGE_OPTIONS_H_
#define GOMFM_STORAGE_STORAGE_OPTIONS_H_

#include <cstdint>

namespace gom {

/// Knobs for the simulated storage stack. Defaults reproduce the pre-WAL
/// behaviour exactly (bit-identical I/O counts and figures): durability is
/// opt-in because the paper's experiments assume a fault-free device.
struct StorageOptions {
  /// Create a `WriteAheadLog`, attach it to the buffer pool (write-ahead
  /// rule for dirty data pages) and to the `GmrManager` (logical
  /// maintenance records, failure-atomic batches).
  bool enable_wal = false;

  /// Route every WAL stream's Flush()/FlushTo() through an InnoDB-style
  /// group committer: concurrent sessions block on their commit LSN while
  /// one leader batches the device flush. Durability semantics are
  /// unchanged; only the fsync count drops. No effect without
  /// `enable_wal`. Sharded configurations get one committer per stream.
  bool enable_group_commit = false;

  /// Upper bound on how long an elected group-commit leader lingers before
  /// flushing so concurrent committers can join its group (adaptive: the
  /// linger is only paid when the previous flush actually retired more
  /// than one commit, so single-session streams never wait). 0 = flush
  /// immediately; piggybacking still batches whatever arrives mid-flush.
  uint32_t max_group_delay_us = 0;

  /// Only with `enable_group_commit`: keep the historical synchronous
  /// device flush per update/delete intent instead of letting intents ride
  /// later group flushes. Consistency never needed the eager fsync (LSN
  /// order plus flush-log-before-dirty-page keep durable state behind its
  /// intent — see GroupCommitOptions::strict_intent_fsync); strict mode
  /// restores the old durability *timing* at one fsync per relevant
  /// update. Without group commit intents always flush synchronously.
  bool strict_intent_fsync = false;
};

}  // namespace gom

#endif  // GOMFM_STORAGE_STORAGE_OPTIONS_H_
