#include "storage/wal.h"

#include <algorithm>
#include <array>
#include <cstring>

namespace gom {

namespace {

/// Identifies a disk page as belonging to the write-ahead log. Eight bytes
/// so that a slotted data page cannot collide with it by accident.
constexpr std::array<uint8_t, 8> kWalMagic = {'G', 'O', 'M', 'F',
                                              'M', 'W', 'A', 'L'};

/// Page layout: [magic 8][seq u32][used u16][records...].
constexpr size_t kWalHeaderSize = kWalMagic.size() + 4 + 2;
constexpr size_t kWalPageCapacity = kPageSize - kWalHeaderSize;

/// Record frame: [size u16][crc u32][body], body = [lsn u64][type u8][payload].
constexpr size_t kFrameOverhead = 2 + 4;
constexpr size_t kBodyHeader = 8 + 1;

uint32_t CrcTableEntry(uint32_t i) {
  uint32_t c = i;
  for (int k = 0; k < 8; ++k) {
    c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
  }
  return c;
}

const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) t[i] = CrcTableEntry(i);
    return t;
  }();
  return table;
}

void PutU16(uint8_t* p, uint16_t v) { std::memcpy(p, &v, 2); }
void PutU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, 4); }
void PutU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, 8); }
uint16_t GetU16(const uint8_t* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

/// Stream `s` pages carry the shared 7-byte prefix plus a per-stream final
/// byte ('L' + s, so stream 0 keeps the original 8-byte magic verbatim).
bool HasWalMagic(const uint8_t* page, uint8_t stream) {
  return std::memcmp(page, kWalMagic.data(), kWalMagic.size() - 1) == 0 &&
         page[kWalMagic.size() - 1] == static_cast<uint8_t>('L' + stream);
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t size) {
  const auto& table = CrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

WriteAheadLog::LogPage& WriteAheadLog::CurrentPage() { return pages_.back(); }

void WriteAheadLog::SealHeader(LogPage& page) {
  std::memcpy(page.image.data(), kWalMagic.data(), kWalMagic.size());
  page.image[kWalMagic.size() - 1] = static_cast<uint8_t>('L' + stream_);
  PutU32(page.image.data() + kWalMagic.size(), page.seq);
  PutU16(page.image.data() + kWalMagic.size() + 4, page.used);
}

Result<Lsn> WriteAheadLog::Append(WalRecordType type, const uint8_t* payload,
                                  size_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t body_size = kBodyHeader + size;
  const size_t frame_size = kFrameOverhead + body_size;
  if (frame_size > kWalPageCapacity) {
    return Status::Internal("WAL record too large (" + std::to_string(size) +
                            " payload bytes); records may not span pages");
  }
  if (pages_.empty() || CurrentPage().used + frame_size > kWalPageCapacity) {
    LogPage page;
    page.id = disk_->AllocatePage();
    page.seq = next_seq_++;
    page.image.assign(kPageSize, 0);
    pages_.push_back(std::move(page));
  }
  LogPage& page = CurrentPage();
  const Lsn lsn = next_lsn_++;
  if (page.first_lsn == kNullLsn) page.first_lsn = lsn;
  page.last_lsn = lsn;
  uint8_t* frame = page.image.data() + kWalHeaderSize + page.used;
  PutU16(frame, static_cast<uint16_t>(body_size));
  uint8_t* body = frame + kFrameOverhead;
  PutU64(body, lsn);
  // Type in the low nibble, stream id in the high nibble (types are 1..15).
  body[8] = static_cast<uint8_t>(static_cast<uint8_t>(type) |
                                 static_cast<uint8_t>(stream_ << 4));
  if (size != 0) {
    std::memcpy(body + kBodyHeader, payload, size);
  }
  PutU32(frame + 2, Crc32(body, body_size));
  page.used = static_cast<uint16_t>(page.used + frame_size);
  page.dirty = true;
  first_dirty_ = std::min(first_dirty_, pages_.size() - 1);
  unflushed_bytes_ += frame_size;
  ++appends_;
  return lsn;
}

Status WriteAheadLog::Flush() {
  if (committer_ != nullptr) return committer_->CommitAll();
  return FlushDirect();
}

Status WriteAheadLog::FlushDirect() {
  std::lock_guard<std::mutex> lock(mu_);
  return FlushLocked();
}

Status WriteAheadLog::FlushLocked() {
  bool wrote = false;
  for (size_t i = first_dirty_; i < pages_.size(); ++i) {
    LogPage& page = pages_[i];
    if (!page.dirty) continue;
    SealHeader(page);
    GOMFM_RETURN_IF_ERROR(disk_->WritePage(page.id, page.image.data()));
    page.dirty = false;
    wrote = true;
    ++page_writes_;
  }
  first_dirty_ = pages_.size();
  if (wrote) ++flushes_;
  flushed_lsn_ = next_lsn_ - 1;
  unflushed_bytes_ = 0;
  return Status::Ok();
}

Status WriteAheadLog::FlushTo(Lsn lsn) {
  if (committer_ != nullptr) {
    if (lsn == kNullLsn) return Status::Ok();
    return committer_->CommitUpTo(lsn);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (lsn == kNullLsn || lsn <= flushed_lsn_) return Status::Ok();
  return FlushLocked();
}

Status WriteAheadLog::CommitIntent(Lsn lsn) {
  if (committer_ == nullptr) return FlushDirect();
  if (committer_->strict_intent_fsync()) return committer_->CommitUpTo(lsn);
  return Status::Ok();
}

void WriteAheadLog::EnableGroupCommit(const GroupCommitOptions& options) {
  committer_ = std::make_unique<GroupCommitter>(this, options);
}

Status WriteAheadLog::Open() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!pages_.empty() || next_lsn_ != 1) {
    return Status::FailedPrecondition(
        "WriteAheadLog::Open: log has already been written to");
  }
  // Scan the disk image for log pages. The scan cost (one read per disk
  // page) is the dominant part of recovery time and is charged to the
  // simulated clock like any other I/O.
  struct Candidate {
    uint32_t seq;
    PageId id;
    std::vector<uint8_t> image;
  };
  std::vector<Candidate> candidates;
  std::vector<uint8_t> buf(kPageSize);
  const size_t disk_pages = disk_->page_count();
  for (PageId pid = 0; pid < disk_pages; ++pid) {
    GOMFM_RETURN_IF_ERROR(disk_->ReadPage(pid, buf.data()));
    if (!HasWalMagic(buf.data(), stream_)) continue;
    candidates.push_back(
        Candidate{GetU32(buf.data() + kWalMagic.size()), pid, buf});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.seq != b.seq) return a.seq < b.seq;
              return a.id < b.id;
            });

  // Accept the longest contiguous seq run starting at the lowest surviving
  // sequence number (a segment-truncated log no longer starts at 0) and
  // within it the longest record chain that passes checksum and
  // LSN-continuity checks. The chain's first record defines the LSN base —
  // 1 for a never-truncated log, floor + 1 after retention truncation.
  // Everything after the first break is a lost tail: a crash interrupted
  // the flush that would have made it durable.
  Lsn expected_lsn = 0;  // unset until the first record is read
  bool truncated = false;
  uint32_t next_seq = candidates.empty() ? 0 : candidates.front().seq;
  size_t chain_end = 0;  // candidates[0, chain_end) joined the chain
  for (const Candidate& cand : candidates) {
    if (truncated || cand.seq != next_seq) break;
    ++next_seq;
    ++chain_end;
    LogPage page;
    page.id = cand.id;
    page.seq = cand.seq;
    page.image = cand.image;
    const uint16_t claimed_used = GetU16(page.image.data() + kWalMagic.size() + 4);
    const size_t limit = std::min<size_t>(claimed_used, kWalPageCapacity);
    size_t offset = 0;
    while (offset + kFrameOverhead <= limit) {
      const uint8_t* frame = page.image.data() + kWalHeaderSize + offset;
      const uint16_t body_size = GetU16(frame);
      if (body_size < kBodyHeader ||
          offset + kFrameOverhead + body_size > limit) {
        truncated = true;
        break;
      }
      const uint8_t* body = frame + kFrameOverhead;
      if (GetU32(frame + 2) != Crc32(body, body_size)) {
        truncated = true;
        break;
      }
      const Lsn lsn = GetU64(body);
      if (expected_lsn == 0) {
        expected_lsn = lsn;  // chain base: the oldest retained record
      } else if (lsn != expected_lsn) {
        truncated = true;
        break;
      }
      WalRecord rec;
      rec.lsn = lsn;
      rec.type = static_cast<WalRecordType>(body[8] & 0x0F);
      rec.stream = static_cast<uint8_t>(body[8] >> 4);
      rec.payload.assign(body + kBodyHeader, body + body_size);
      recovered_.push_back(std::move(rec));
      if (page.first_lsn == kNullLsn) page.first_lsn = lsn;
      page.last_lsn = lsn;
      ++expected_lsn;
      offset += kFrameOverhead + body_size;
    }
    if (offset + kFrameOverhead > limit && offset < limit) {
      // Trailing bytes too short to hold a frame: treat as tail garbage.
      truncated = true;
    }
    page.used = static_cast<uint16_t>(offset);
    page.dirty = false;
    pages_.push_back(std::move(page));
    if (truncated) break;
  }

  // Scrub log-magic pages beyond the accepted chain so a later recovery
  // cannot mistake their stale contents for live log.
  std::vector<uint8_t> zero(kPageSize, 0);
  for (size_t i = chain_end; i < candidates.size(); ++i) {
    GOMFM_RETURN_IF_ERROR(disk_->WritePage(candidates[i].id, zero.data()));
  }

  if (expected_lsn == 0) expected_lsn = 1;  // empty log
  next_lsn_ = expected_lsn;
  flushed_lsn_ = expected_lsn - 1;
  oldest_lsn_ = recovered_.empty() ? next_lsn_ : recovered_.front().lsn;
  next_seq_ = pages_.empty() ? 0 : pages_.back().seq + 1;
  first_dirty_ = pages_.size();  // everything recovered is clean
  unflushed_bytes_ = 0;
  // The last chain page (possibly holding a truncated tail) stays current:
  // the next append overwrites the garbage and the next flush re-seals it.
  return Status::Ok();
}

Result<std::vector<WalRecord>> WriteAheadLog::ReadFlushedSince(
    Lsn after, size_t max_records) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<WalRecord> out;
  if (after + 1 < oldest_lsn_) {
    return Status::OutOfRange(
        "WAL tail read from LSN " + std::to_string(after + 1) +
        " but the log was truncated up to " + std::to_string(oldest_lsn_ - 1));
  }
  for (const LogPage& page : pages_) {
    if (page.first_lsn == kNullLsn || page.last_lsn <= after) continue;
    if (page.first_lsn > flushed_lsn_) break;
    size_t offset = 0;
    while (offset + kFrameOverhead <= page.used) {
      const uint8_t* frame = page.image.data() + kWalHeaderSize + offset;
      const uint16_t body_size = GetU16(frame);
      if (body_size < kBodyHeader ||
          offset + kFrameOverhead + body_size > page.used) {
        return Status::Internal("WAL tail read hit a malformed frame");
      }
      const uint8_t* body = frame + kFrameOverhead;
      const Lsn lsn = GetU64(body);
      if (lsn > flushed_lsn_) return out;  // unflushed tail: never shipped
      if (lsn > after) {
        WalRecord rec;
        rec.lsn = lsn;
        rec.type = static_cast<WalRecordType>(body[8] & 0x0F);
        rec.stream = static_cast<uint8_t>(body[8] >> 4);
        rec.payload.assign(body + kBodyHeader, body + body_size);
        out.push_back(std::move(rec));
        if (max_records != 0 && out.size() >= max_records) return out;
      }
      offset += kFrameOverhead + body_size;
    }
  }
  return out;
}

Status WriteAheadLog::TruncateUpTo(Lsn floor) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint8_t> zero(kPageSize, 0);
  size_t dropped = 0;
  // The current append page is never dropped (the next Append writes into
  // it), and a dirty page still holds undurable records.
  while (pages_.size() - dropped > 1) {
    const LogPage& page = pages_[dropped];
    if (page.dirty || page.last_lsn == kNullLsn || page.last_lsn > floor) {
      break;
    }
    GOMFM_RETURN_IF_ERROR(disk_->WritePage(page.id, zero.data()));
    ++dropped;
  }
  if (dropped > 0) {
    pages_.erase(pages_.begin(),
                 pages_.begin() + static_cast<ptrdiff_t>(dropped));
    // Dropped pages are never dirty, so the watermark shifts with them.
    first_dirty_ = first_dirty_ > dropped ? first_dirty_ - dropped : 0;
    oldest_lsn_ = pages_.front().first_lsn != kNullLsn
                      ? pages_.front().first_lsn
                      : next_lsn_;
  }
  return Status::Ok();
}

Status WriteAheadLog::Replay(
    const std::function<Status(const WalRecord&)>& cb) const {
  for (const WalRecord& rec : recovered_) {
    GOMFM_RETURN_IF_ERROR(cb(rec));
  }
  return Status::Ok();
}

}  // namespace gom
