#ifndef GOMFM_STORAGE_WAL_H_
#define GOMFM_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "storage/group_commit.h"
#include "storage/sim_disk.h"

namespace gom {

/// Log sequence number. LSNs start at 1 and increase by one per record;
/// 0 means "nothing logged yet".
using Lsn = uint64_t;
inline constexpr Lsn kNullLsn = 0;

/// Logical maintenance records of the GMR subsystem. The WAL is *logical*:
/// it describes maintenance events (row inserted, object about to change,
/// result recomputed), not page images — recovery replays them against a
/// freshly registered GMR catalog. See DESIGN.md "Durability, recovery &
/// fault injection" for the exact replay semantics of each kind.
enum class WalRecordType : uint8_t {
  /// An object with a non-empty ObjDepFct is about to be updated. Flushed
  /// *before* the object base mutates (the write-ahead rule): recovery
  /// conservatively invalidates every materialized result the object
  /// contributed to. Payload: oid u64.
  kUpdateIntent = 1,
  /// The update completed; rematerializations logged inside the
  /// intent…commit region (compensating actions run *before* the mutation)
  /// become effective. Payload: oid u64.
  kUpdateCommit = 2,
  /// An object is about to be deleted. Flushed before the deletion.
  /// Payload: oid u64.
  kDeleteIntent = 3,
  /// A row joined a GMR extension (results all invalid until a
  /// kRematResult re-validates them). Payload: gmr u32, argc u16, args.
  kRowInsert = 4,
  /// A row left a GMR extension. Payload: gmr u32, argc u16, args.
  kRowRemove = 5,
  /// One (re)computed result: column `col` of the row for `args` now holds
  /// `value`, and the computation accessed `oids` (its reverse
  /// references). Payload: gmr u32, col u32, argc u16, args, value,
  /// oidc u16, oids.
  kRematResult = 6,
  /// An update batch opened (informational). No payload.
  kBatchBegin = 7,
  /// EndBatch started its coalesced rematerialization flush. Remat records
  /// between this marker and kBatchCommit apply only when the commit is
  /// durable — a crash mid-flush recovers to the pre-flush state with the
  /// batch's rows still invalid. No payload.
  kBatchFlush = 8,
  /// The batch flush completed; the WAL is flushed right after this record
  /// so EndBatch() returning OK implies durability. No payload.
  kBatchCommit = 9,
  /// The update whose intent is open for `oid` failed and was rolled back:
  /// rematerializations logged inside the region describe a state that
  /// never came to be and are discarded at replay (the conservative
  /// invalidation of the intent itself stands). Payload: oid u64.
  kUpdateAbort = 10,
  /// Administrative wholesale invalidation of one GMR (the Fig. 10 "Lazy"
  /// starting state): every result becomes invalid and all reverse
  /// references of the member functions (and predicate) are dropped.
  /// Flushed synchronously — updates after it carry no intents (the RRR is
  /// empty), so losing it would resurrect stale valid results at replay.
  /// Payload: gmr u32.
  kInvalidateAll = 11,
  /// A derived update function repaired one stored result in place (delta
  /// maintenance, no rematerialization). The payload is the kRematResult
  /// codec with `value` holding the *absolute* post-delta result — replay
  /// is therefore idempotent and reconciles over any already-recovered
  /// base value — and `oids` holding the changed object, whose reverse
  /// reference the intent's conservative invalidation dropped. Buffered in
  /// intent/batch regions exactly like kRematResult. Payload: gmr u32,
  /// col u32, argc u16, args, value, oidc u16, oids.
  kDeltaApply = 12,
  /// Full post-update image of one base object (replication shipping,
  /// opt-in via ObjectManager::AttachReplicationLog). The image is
  /// *absolute* — apply is idempotent — and excludes the ObjDepFct marks,
  /// which the receiver maintains from the maintenance records it replays.
  /// Large objects span several kObjPut records (part/total chunking in
  /// the payload); see gom/obj_wal_records.h for the codec.
  kObjPut = 13,
  /// A base object was created. Same image codec as kObjPut; the receiver
  /// additionally registers the oid in the type extent and bumps its oid
  /// allocator past it.
  kObjCreate = 14,
  /// A base object was deleted. Payload: oid u64.
  kObjDelete = 15,
};

struct WalRecord {
  Lsn lsn = kNullLsn;
  WalRecordType type = WalRecordType::kBatchBegin;
  /// Shard stream the record was written by (0 = the primary/unsharded
  /// stream). Carried in the high nibble of the on-disk type byte, so the
  /// record format is byte-identical to the pre-sharding one at stream 0.
  uint8_t stream = 0;
  std::vector<uint8_t> payload;
};

/// CRC32 (IEEE, reflected) over `data` — used to checksum WAL records so
/// recovery can tell a torn or lost tail from valid log.
uint32_t Crc32(const uint8_t* data, size_t size);

/// An append-only write-ahead log on top of `SimDisk`.
///
/// Physical format: the log owns dedicated disk pages, each carrying an
/// 8-byte magic, a page sequence number and a used-bytes count; records
/// never span pages. Each record is framed
/// `[size u16][crc u32][lsn u64][type u8][payload]` with the CRC covering
/// everything after itself. Appends buffer in memory (group commit);
/// `Flush()` writes all dirty log pages, re-writing the current partial
/// page as it fills. Recovery (`Open()`) scans the disk for log pages,
/// orders them by sequence number and truncates at the first checksum,
/// LSN-chain or sequence break — exactly the prefix of records whose flush
/// completed survives a crash.
class WriteAheadLog {
 public:
  /// `disk` must outlive the log. `stream_id` (0..15) tags every page and
  /// record this log writes: sharded configurations run one log per
  /// maintenance plane on the same disk, and `Open()` only accepts pages of
  /// its own stream. Stream 0 — the only stream unsharded configurations
  /// ever use — is byte-identical to the pre-sharding format.
  explicit WriteAheadLog(SimDisk* disk, uint8_t stream_id = 0)
      : disk_(disk), stream_(stream_id & 0x0F) {}

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends a record (buffered; durable only after the next Flush). The
  /// pointer overload is the zero-allocation path for the small fixed-size
  /// payloads on the maintenance hot path (one intent + one commit record
  /// per relevant update); the vector overload just forwards.
  Result<Lsn> Append(WalRecordType type, const uint8_t* payload, size_t size);
  Result<Lsn> Append(WalRecordType type, const std::vector<uint8_t>& payload) {
    return Append(type, payload.data(), payload.size());
  }

  /// Group flush: writes every dirty log page. After OK, all appended
  /// records are durable. With group commit enabled this routes through
  /// the committer — concurrent callers share one device flush.
  Status Flush();

  /// Flushes only if `lsn` is not durable yet — the flush-log-before-
  /// dirty-page rule calls this with the page's recovery LSN. With group
  /// commit enabled this blocks until `lsn` is durable, possibly riding
  /// another session's flush.
  Status FlushTo(Lsn lsn);

  /// The write-ahead rule's flush for an intent record just appended at
  /// `lsn`. Without group commit this is a synchronous device flush (the
  /// historical one-fsync-per-relevant-update behavior, and what the
  /// crash-sweep tests exercise). With group commit the default is
  /// *relaxed*: the intent is acknowledged as appended and rides the next
  /// commit, batch flush or write-back-forced FlushTo — safe because the
  /// log's LSN order plus the buffer pool's flush-log-before-dirty-page
  /// rule already keep any durable dependent state behind its intent (see
  /// GroupCommitOptions::strict_intent_fsync for the full argument).
  Status CommitIntent(Lsn lsn);

  /// Routes all subsequent Flush()/FlushTo() calls through an InnoDB-style
  /// group committer: concurrent sessions block on their commit LSN while
  /// one leader batches the device flush. Call once, before the log sees
  /// concurrent traffic; every existing flush call site (maintenance
  /// intents, EndBatch, buffer-pool write-back, replication) batches
  /// transparently. Durability semantics are unchanged — Flush/FlushTo
  /// still only return OK once the requested records are on the device.
  void EnableGroupCommit(const GroupCommitOptions& options);
  /// The attached committer, or nullptr when group commit is off
  /// (observability: fsync count, group sizes, leader-wait histogram).
  GroupCommitter* group_committer() const { return committer_.get(); }

  /// Immediate device flush bypassing the group committer — the
  /// committer's leader path. Everyone else wants Flush().
  Status FlushDirect();

  uint8_t stream_id() const { return stream_; }

  Lsn last_lsn() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_lsn_ - 1;
  }
  Lsn flushed_lsn() const {
    std::lock_guard<std::mutex> lock(mu_);
    return flushed_lsn_;
  }

  /// LSN of the oldest record the log still holds (kNullLsn + 1 == 1 for a
  /// never-truncated log). After `TruncateUpTo(f)` this is f + 1. A reader
  /// wanting to resume from LSN r can be served iff oldest_lsn() <= r + 1.
  Lsn oldest_lsn() const {
    std::lock_guard<std::mutex> lock(mu_);
    return oldest_lsn_;
  }

  /// Tailing (replication shipping): decodes the *durable* records with
  /// `lsn > after` out of the in-memory page images, up to `max_records`
  /// per call (0 = unlimited). Never touches the disk and never returns
  /// unflushed records — the shipped stream is exactly the crash-safe
  /// prefix. kOutOfRange when `after + 1` has already been truncated away
  /// (the reader must bootstrap from a snapshot instead).
  Result<std::vector<WalRecord>> ReadFlushedSince(Lsn after,
                                                  size_t max_records) const;

  /// Segment retention: drops every *sealed* log page whose records are all
  /// <= `floor` (the current append page is never dropped), zeroing the
  /// pages on disk so a later Open() cannot resurrect them. The caller
  /// guarantees a snapshot at or above `floor` exists somewhere — replayng
  /// the remaining suffix alone only recovers state past that snapshot.
  Status TruncateUpTo(Lsn floor);

  /// Recovery: scans the disk image for log pages and rebuilds the record
  /// chain, truncating at the first break. The chain may start at a
  /// non-zero page sequence / LSN when the log was segment-truncated before
  /// the crash — the contiguous run beginning at the *lowest surviving*
  /// sequence number is accepted. The log is then positioned to continue
  /// appending after the last durable record. Records recovered are
  /// retained for `Replay`.
  Status Open();

  /// Iterates the records recovered by `Open()` in LSN order.
  Status Replay(const std::function<Status(const WalRecord&)>& cb) const;

  size_t recovered_records() const { return recovered_.size(); }
  /// Bytes of log tail (appended after the last durable record) that a
  /// crash right now would lose.
  size_t unflushed_bytes() const { return unflushed_bytes_; }

  uint64_t appends() const { return appends_; }
  uint64_t flushes() const { return flushes_; }
  uint64_t page_writes() const { return page_writes_; }
  size_t log_pages() const { return pages_.size(); }

 private:
  struct LogPage {
    PageId id = kInvalidPageId;
    uint32_t seq = 0;
    uint16_t used = 0;  // record bytes after the header
    bool dirty = false;
    Lsn first_lsn = kNullLsn;  // LSN range held, for tailing & truncation
    Lsn last_lsn = kNullLsn;
    std::vector<uint8_t> image;  // kPageSize, header maintained on write
  };

  LogPage& CurrentPage();
  void SealHeader(LogPage& page);
  /// Flush body; callers hold `mu_` (FlushTo → Flush must not re-lock).
  Status FlushLocked();

  /// Serializes appends/flushes against each other: the maintenance plane
  /// appends under its shard gate while the buffer pool's
  /// flush-log-before-dirty-page rule may flush from whichever writer
  /// thread faults a page. Never held across a callback; accessors the
  /// single-threaded paths use take it uncontended (no simulated-time
  /// charge, so figures are unaffected).
  mutable std::mutex mu_;

  SimDisk* disk_;
  uint8_t stream_ = 0;
  std::unique_ptr<GroupCommitter> committer_;
  std::vector<LogPage> pages_;
  std::vector<WalRecord> recovered_;
  /// Index of the lowest possibly-dirty page: FlushLocked scans
  /// [first_dirty_, pages_.size()) instead of the whole log, keeping each
  /// flush O(dirty pages) — long-lived logs used to pay O(all pages) per
  /// flush, which dominated the WAL's measured storm overhead.
  size_t first_dirty_ = 0;
  Lsn next_lsn_ = 1;
  Lsn flushed_lsn_ = kNullLsn;
  Lsn oldest_lsn_ = 1;
  /// Page sequence numbers are monotonic across truncation (pages_.size()
  /// would collide with dropped sequences at recovery).
  uint32_t next_seq_ = 0;
  size_t unflushed_bytes_ = 0;
  uint64_t appends_ = 0;
  uint64_t flushes_ = 0;
  uint64_t page_writes_ = 0;
};

/// Little-endian payload writer/reader for WAL record payloads.
class WalPayloadWriter {
 public:
  void U8(uint8_t v) { bytes_.push_back(v); }
  void U16(uint16_t v) { Raw(&v, 2); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void Bytes(const std::vector<uint8_t>& v) {
    bytes_.insert(bytes_.end(), v.begin(), v.end());
  }
  void Reserve(size_t n) { bytes_.reserve(bytes_.size() + n); }
  /// Direct access for encoders that serialize nested structures in place
  /// (appending; saves the temp-vector + copy round trip per record).
  std::vector<uint8_t>* mutable_bytes() { return &bytes_; }
  std::vector<uint8_t> Take() { return std::move(bytes_); }

 private:
  void Raw(const void* p, size_t n) {
    const uint8_t* b = static_cast<const uint8_t*>(p);
    bytes_.insert(bytes_.end(), b, b + n);
  }
  std::vector<uint8_t> bytes_;
};

class WalPayloadReader {
 public:
  explicit WalPayloadReader(const std::vector<uint8_t>& bytes)
      : cur_(bytes.data()), end_(bytes.data() + bytes.size()) {}

  Result<uint8_t> U8() {
    if (end_ - cur_ < 1) return Truncated();
    return *cur_++;
  }
  Result<uint16_t> U16() { return Fixed<uint16_t>(); }
  Result<uint32_t> U32() { return Fixed<uint32_t>(); }
  Result<uint64_t> U64() { return Fixed<uint64_t>(); }

  const uint8_t** cursor() { return &cur_; }
  const uint8_t* end() const { return end_; }
  bool exhausted() const { return cur_ == end_; }

 private:
  template <typename T>
  Result<T> Fixed() {
    if (static_cast<size_t>(end_ - cur_) < sizeof(T)) return Truncated();
    T v;
    __builtin_memcpy(&v, cur_, sizeof(T));
    cur_ += sizeof(T);
    return v;
  }
  static Status Truncated() {
    return Status::Internal("WAL payload truncated");
  }
  const uint8_t* cur_;
  const uint8_t* end_;
};

}  // namespace gom

#endif  // GOMFM_STORAGE_WAL_H_
