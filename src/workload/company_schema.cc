#include "workload/company_schema.h"

#include "funclang/builder.h"
#include "funclang/interpreter.h"

namespace gom::workload {

using namespace funclang;  // builder DSL

Result<CompanySchema> CompanySchema::Declare(
    Schema* schema, funclang::FunctionRegistry* registry) {
  CompanySchema s;

  GOMFM_ASSIGN_OR_RETURN(
      s.person, schema->DeclareTupleType({"Person",
                                          kInvalidTypeId,
                                          {{"Name", TypeRef::String()}},
                                          {"Name", "set_Name"},
                                          false}));
  // Forward declarations are impossible — declare leaf types first.
  GOMFM_ASSIGN_OR_RETURN(
      s.employee_set,
      schema->DeclareSetType("EmployeeSet", TypeRef::Any()));
  GOMFM_ASSIGN_OR_RETURN(s.job_set,
                         schema->DeclareSetType("JobSet", TypeRef::Any()));
  GOMFM_ASSIGN_OR_RETURN(
      s.project,
      schema->DeclareTupleType(
          {"Project",
           kInvalidTypeId,
           {{"Name", TypeRef::String()},
            {"Status", TypeRef::Float()},   // −1000 … 1000 (§7.2)
            {"Size", TypeRef::Int()},       // lines of code
            {"Programmers", TypeRef::Object(s.employee_set)}},
           {"Name", "Status", "set_Status", "Size", "set_Size",
            "Programmers"},
           false}));
  GOMFM_ASSIGN_OR_RETURN(
      s.job,
      schema->DeclareTupleType(
          {"Job",
           kInvalidTypeId,
           {{"Proj", TypeRef::Object(s.project)},
            {"Loc", TypeRef::Int()},        // lines of code written
            {"OnTime", TypeRef::Bool()},    // the two status booleans
            {"InBudget", TypeRef::Bool()}},
           {"Proj", "Loc", "set_Loc", "OnTime", "set_OnTime", "InBudget",
            "set_InBudget"},
           false}));
  GOMFM_ASSIGN_OR_RETURN(
      s.employee,
      schema->DeclareTupleType(
          {"Employee",
           s.person,
           {{"EmpNo", TypeRef::Int()},
            {"Salary", TypeRef::Float()},
            {"JobHistory", TypeRef::Object(s.job_set)}},
           {"EmpNo", "Salary", "set_Salary", "JobHistory", "ranking",
            "promote"},
           false}));
  GOMFM_ASSIGN_OR_RETURN(
      s.department,
      schema->DeclareTupleType(
          {"Department",
           kInvalidTypeId,
           {{"Name", TypeRef::String()},
            {"DepNo", TypeRef::Int()},
            {"Emps", TypeRef::Object(s.employee_set)}},
           {"Name", "DepNo", "Emps"},
           false}));
  GOMFM_ASSIGN_OR_RETURN(
      s.department_set,
      schema->DeclareSetType("DepartmentSet", TypeRef::Object(s.department)));
  GOMFM_ASSIGN_OR_RETURN(
      s.project_set,
      schema->DeclareSetType("ProjectSet", TypeRef::Object(s.project)));
  GOMFM_ASSIGN_OR_RETURN(
      s.company,
      schema->DeclareTupleType(
          {"Company",
           kInvalidTypeId,
           {{"Name", TypeRef::String()},
            {"Deps", TypeRef::Object(s.department_set)},
            {"Projs", TypeRef::Object(s.project_set)}},
           {"Name", "Deps", "Projs", "matrix", "add_project"},
           false}));

  // ---- assessment / ranking ------------------------------------------------

  // assessment(j) = j.Loc/1000 + [j.OnTime] + [j.InBudget] + j.Proj.Status/1000
  GOMFM_ASSIGN_OR_RETURN(
      s.assessment,
      registry->Register(FunctionDef{
          kInvalidFunctionId,
          "assessment",
          {{"self", TypeRef::Object(s.job)}},
          TypeRef::Float(),
          Body(Add(
              Add(Div(Attr(Self(), "Loc"), F(1000.0)),
                  Add(IfE(Attr(Self(), "OnTime"), F(1.0), F(0.0)),
                      IfE(Attr(Self(), "InBudget"), F(1.0), F(0.0)))),
              Div(Path(Self(), {"Proj", "Status"}), F(1000.0)))),
          nullptr,
          true}));

  GOMFM_ASSIGN_OR_RETURN(
      s.ranking,
      registry->Register(FunctionDef{
          kInvalidFunctionId,
          "ranking",
          {{"self", TypeRef::Object(s.employee)}},
          TypeRef::Float(),
          Body(AvgOver(Attr(Self(), "JobHistory"), "jh",
                       CallF("assessment", {Var("jh")}))),
          nullptr,
          true}));

  // ---- matrix ---------------------------------------------------------------

  // matrix(c) = { [d, p, {e ∈ d.Emps | e ∈ p.Programmers}] |
  //               d ∈ c.Deps, p ∈ c.Projs, intersection ≠ ∅ }
  GOMFM_ASSIGN_OR_RETURN(
      s.matrix,
      registry->Register(FunctionDef{
          kInvalidFunctionId,
          "matrix",
          {{"self", TypeRef::Object(s.company)}},
          TypeRef::Any(),
          Body(SelectFrom(
              Flatten(MapOver(
                  Attr(Self(), "Deps"), "d",
                  MapOver(Attr(Self(), "Projs"), "p",
                          MakeComposite(
                              {Var("d"), Var("p"),
                               SelectFrom(Attr(Var("d"), "Emps"), "e2",
                                          Contains(Attr(Var("p"),
                                                        "Programmers"),
                                                   Var("e2")))})))),
              "ml", Gt(CountOf(At(Var("ml"), 2)), I(0)))),
          nullptr,
          true}));

  // Compensating action: append the new project's lines to the old matrix.
  GOMFM_ASSIGN_OR_RETURN(
      s.matrix_add_project,
      registry->Register(FunctionDef{
          kInvalidFunctionId,
          "matrix_add_project",
          {{"self", TypeRef::Object(s.company)},
           {"new_proj", TypeRef::Object(s.project)},
           {"old_matrix", TypeRef::Any()}},
          TypeRef::Any(),
          Body(Flatten(MakeComposite(
              {Var("old_matrix"),
               SelectFrom(
                   MapOver(Attr(Self(), "Deps"), "d2",
                           MakeComposite(
                               {Var("d2"), Var("new_proj"),
                                SelectFrom(Attr(Var("d2"), "Emps"), "e3",
                                           Contains(Attr(Var("new_proj"),
                                                         "Programmers"),
                                                    Var("e3")))})),
                   "ml2", Gt(CountOf(At(Var("ml2"), 2)), I(0)))}))),
          nullptr,
          true}));

  // ---- native update operations ---------------------------------------------

  GOMFM_ASSIGN_OR_RETURN(
      s.op_promote,
      registry->Register(FunctionDef{
          kInvalidFunctionId,
          "promote",
          {{"self", TypeRef::Object(s.employee)},
           {"job_index", TypeRef::Int()},
           {"on_time", TypeRef::Bool()},
           {"in_budget", TypeRef::Bool()}},
          TypeRef::Void(),
          {},
          [](EvalContext& ctx, const std::vector<Value>& args)
              -> Result<Value> {
            ObjectManager& om = ctx.om();
            GOMFM_ASSIGN_OR_RETURN(Oid self, args[0].AsRef());
            GOMFM_ASSIGN_OR_RETURN(Value history,
                                   om.GetAttribute(self, "JobHistory"));
            GOMFM_ASSIGN_OR_RETURN(Oid jobs, history.AsRef());
            GOMFM_ASSIGN_OR_RETURN(std::vector<Value> elems,
                                   om.GetElements(jobs));
            if (elems.empty()) return Value::Null();
            size_t idx = static_cast<size_t>(args[1].as_int()) % elems.size();
            GOMFM_ASSIGN_OR_RETURN(Oid job, elems[idx].AsRef());
            GOMFM_RETURN_IF_ERROR(
                om.SetAttribute(job, "OnTime", args[2]));
            GOMFM_RETURN_IF_ERROR(
                om.SetAttribute(job, "InBudget", args[3]));
            return Value::Null();
          },
          false}));

  FunctionId add_project_id = static_cast<FunctionId>(registry->size());
  GOMFM_ASSIGN_OR_RETURN(
      s.op_add_project,
      registry->Register(FunctionDef{
          kInvalidFunctionId,
          "add_project",
          {{"self", TypeRef::Object(s.company)},
           {"proj", TypeRef::Object(s.project)}},
          TypeRef::Void(),
          {},
          [add_project_id](EvalContext& ctx, const std::vector<Value>& args)
              -> Result<Value> {
            ObjectManager& om = ctx.om();
            GOMFM_ASSIGN_OR_RETURN(Oid self, args[0].AsRef());
            GOMFM_RETURN_IF_ERROR(
                om.BeginOperation(self, add_project_id, args));
            Status st = Status::Ok();
            auto projs = om.GetAttribute(self, "Projs");
            if (projs.ok()) {
              auto set = projs->AsRef();
              st = set.ok() ? om.InsertElement(*set, args[1]) : set.status();
            } else {
              st = projs.status();
            }
            GOMFM_RETURN_IF_ERROR(om.EndOperation(self, add_project_id));
            GOMFM_RETURN_IF_ERROR(st);
            return Value::Null();
          },
          false}));

  GOMFM_RETURN_IF_ERROR(
      schema->AttachOperation(s.employee, "ranking", s.ranking));
  GOMFM_RETURN_IF_ERROR(
      schema->AttachOperation(s.employee, "promote", s.op_promote));
  GOMFM_RETURN_IF_ERROR(
      schema->AttachOperation(s.company, "matrix", s.matrix));
  GOMFM_RETURN_IF_ERROR(
      schema->AttachOperation(s.company, "add_project", s.op_add_project));
  return s;
}

Result<CompanyDb> BuildCompany(const CompanySchema& s, ObjectManager* om,
                               const CompanyConfig& config, Rng* rng) {
  CompanyDb db;

  // Projects first (jobs reference them).
  for (size_t p = 0; p < config.projects; ++p) {
    GOMFM_ASSIGN_OR_RETURN(Oid programmers,
                           om->CreateCollection(s.employee_set));
    GOMFM_ASSIGN_OR_RETURN(
        Oid proj,
        om->CreateTuple(
            s.project,
            {Value::String("P" + std::to_string(p)),
             Value::Float(rng->UniformDouble(-1000.0, 1000.0)),
             Value::Int(rng->UniformInt(1000, 200000)),
             Value::Ref(programmers)}));
    db.projects.push_back(proj);
  }

  GOMFM_ASSIGN_OR_RETURN(Oid deps_set,
                         om->CreateCollection(s.department_set));
  GOMFM_ASSIGN_OR_RETURN(Oid projs_set, om->CreateCollection(s.project_set));
  for (Oid p : db.projects) {
    GOMFM_RETURN_IF_ERROR(om->InsertElement(projs_set, Value::Ref(p)));
  }

  int64_t next_emp_no = 1;
  for (size_t d = 0; d < config.departments; ++d) {
    GOMFM_ASSIGN_OR_RETURN(Oid emps, om->CreateCollection(s.employee_set));
    GOMFM_ASSIGN_OR_RETURN(
        Oid dep, om->CreateTuple(s.department,
                                 {Value::String("D" + std::to_string(d)),
                                  Value::Int(static_cast<int64_t>(d)),
                                  Value::Ref(emps)}));
    db.departments.push_back(dep);
    GOMFM_RETURN_IF_ERROR(om->InsertElement(deps_set, Value::Ref(dep)));

    for (size_t e = 0; e < config.employees_per_department; ++e) {
      GOMFM_ASSIGN_OR_RETURN(Oid history, om->CreateCollection(s.job_set));
      int64_t emp_no = next_emp_no++;
      GOMFM_ASSIGN_OR_RETURN(
          Oid emp,
          om->CreateTuple(
              s.employee,
              {Value::String("E" + std::to_string(emp_no)),
               Value::Int(emp_no),
               Value::Float(rng->UniformDouble(30000.0, 120000.0)),
               Value::Ref(history)}));
      db.employees.push_back(emp);
      db.by_emp_no[emp_no] = emp;
      GOMFM_RETURN_IF_ERROR(om->InsertElement(emps, Value::Ref(emp)));
      // On average every employee has been involved in
      // `jobs_per_employee` projects.
      for (size_t j = 0; j < config.jobs_per_employee; ++j) {
        Oid proj = db.projects[rng->UniformInt(0, db.projects.size() - 1)];
        GOMFM_ASSIGN_OR_RETURN(
            Oid job, om->CreateTuple(
                         s.job, {Value::Ref(proj),
                                 Value::Int(rng->UniformInt(100, 20000)),
                                 Value::Bool(rng->Bernoulli(0.7)),
                                 Value::Bool(rng->Bernoulli(0.6))}));
        GOMFM_RETURN_IF_ERROR(om->InsertElement(history, Value::Ref(job)));
      }
    }
  }

  // Staff the projects with `programmers_per_project` employees each.
  for (Oid proj : db.projects) {
    GOMFM_ASSIGN_OR_RETURN(Value programmers,
                           om->GetAttribute(proj, "Programmers"));
    GOMFM_ASSIGN_OR_RETURN(Oid prog_set, programmers.AsRef());
    for (size_t k = 0; k < config.programmers_per_project; ++k) {
      Oid emp = db.employees[rng->UniformInt(0, db.employees.size() - 1)];
      Status st = om->InsertElement(prog_set, Value::Ref(emp));
      if (!st.ok() && st.code() != StatusCode::kAlreadyExists) return st;
    }
  }

  GOMFM_ASSIGN_OR_RETURN(
      db.company,
      om->CreateTuple(s.company, {Value::String("GOM Corp"),
                                  Value::Ref(deps_set),
                                  Value::Ref(projs_set)}));
  return db;
}

}  // namespace gom::workload
