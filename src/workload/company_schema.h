#ifndef GOMFM_WORKLOAD_COMPANY_SCHEMA_H_
#define GOMFM_WORKLOAD_COMPANY_SCHEMA_H_

#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "funclang/function_registry.h"
#include "gom/object_manager.h"

namespace gom::workload {

/// The personnel / project administration application of §7.2: the matrix
/// organization of a company and the ranking of employees.
///
/// Reference graph (Figure 12): Company →→ Departments/Projects;
/// Department →→ Employees; Project →→ programmers (Employees);
/// Employee →→ JobHistory (Jobs); Job → Project.
struct CompanySchema {
  TypeId person = kInvalidTypeId;
  TypeId employee = kInvalidTypeId;
  TypeId job = kInvalidTypeId;
  TypeId project = kInvalidTypeId;
  TypeId department = kInvalidTypeId;
  TypeId company = kInvalidTypeId;
  TypeId employee_set = kInvalidTypeId;
  TypeId job_set = kInvalidTypeId;
  TypeId department_set = kInvalidTypeId;
  TypeId project_set = kInvalidTypeId;

  /// assessment(j: Job) → float: computed from the job's attributes and
  /// its project's status.
  FunctionId assessment = kInvalidFunctionId;
  /// ranking(e: Employee) → float: average assessment over the job history.
  FunctionId ranking = kInvalidFunctionId;
  /// matrix(c: Company) → set of MatrixLine [Dep, Proj, Emps] tuples with
  /// Emps ≠ ∅ (as transient composites).
  FunctionId matrix = kInvalidFunctionId;
  /// Compensating action for Company.add_project / matrix: appends the new
  /// project's matrix lines to the old result.
  FunctionId matrix_add_project = kInvalidFunctionId;

  /// Native update: promote/degrade — rewrites one job's status booleans.
  /// promote(self: Employee, job_index: int, on_time: bool, in_budget: bool)
  FunctionId op_promote = kInvalidFunctionId;
  /// Native update: add_project(self: Company, proj: Project); inserts into
  /// the company's project set inside an operation bracket so compensating
  /// actions and InvalidatedFct apply (§5.3/§5.4).
  FunctionId op_add_project = kInvalidFunctionId;

  static Result<CompanySchema> Declare(Schema* schema,
                                       funclang::FunctionRegistry* registry);
};

/// A generated company instance.
struct CompanyDb {
  Oid company;
  std::vector<Oid> departments;
  std::vector<Oid> employees;
  std::vector<Oid> projects;
  /// EmpNo → Employee (models the unique-number index of §7.2).
  std::unordered_map<int64_t, Oid> by_emp_no;
};

struct CompanyConfig {
  size_t departments = 20;
  size_t employees_per_department = 100;
  size_t projects = 1000;
  size_t jobs_per_employee = 10;
  size_t programmers_per_project = 5;
};

/// Populates an object base with one company per the configuration.
Result<CompanyDb> BuildCompany(const CompanySchema& s, ObjectManager* om,
                               const CompanyConfig& config, Rng* rng);

}  // namespace gom::workload

#endif  // GOMFM_WORKLOAD_COMPANY_SCHEMA_H_
