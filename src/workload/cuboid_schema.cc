#include "workload/cuboid_schema.h"

#include <cmath>

#include "funclang/builder.h"
#include "funclang/interpreter.h"

namespace gom::workload {

using namespace funclang;  // builder DSL

namespace {

/// Native update operation applying `fn(x, y, z) -> (x', y', z')` to every
/// boundary vertex of the receiving cuboid, inside an operation bracket.
Result<Value> TransformVertices(
    EvalContext& ctx, Oid self, FunctionId op, const std::vector<Value>& args,
    const std::function<void(double&, double&, double&)>& fn) {
  ObjectManager& om = ctx.om();
  GOMFM_RETURN_IF_ERROR(om.BeginOperation(self, op, args));
  Status failure = Status::Ok();
  for (int i = 1; i <= 8 && failure.ok(); ++i) {
    std::string attr = "V" + std::to_string(i);
    auto vref = om.GetAttribute(self, attr);
    if (!vref.ok()) {
      failure = vref.status();
      break;
    }
    Oid v = vref->as_ref();
    auto x = om.GetAttribute(v, "X");
    auto y = om.GetAttribute(v, "Y");
    auto z = om.GetAttribute(v, "Z");
    if (!x.ok() || !y.ok() || !z.ok()) {
      failure = Status::Internal("vertex coordinates unreadable");
      break;
    }
    double xd = x->as_float(), yd = y->as_float(), zd = z->as_float();
    fn(xd, yd, zd);
    failure = om.SetAttribute(v, "X", Value::Float(xd));
    if (failure.ok()) failure = om.SetAttribute(v, "Y", Value::Float(yd));
    if (failure.ok()) failure = om.SetAttribute(v, "Z", Value::Float(zd));
  }
  GOMFM_RETURN_IF_ERROR(om.EndOperation(self, op));
  GOMFM_RETURN_IF_ERROR(failure);
  return Value::Null();
}

}  // namespace

Result<CuboidSchema> CuboidSchema::Declare(Schema* schema,
                                           funclang::FunctionRegistry* registry) {
  CuboidSchema s;

  GOMFM_ASSIGN_OR_RETURN(
      s.vertex,
      schema->DeclareTupleType(
          {"Vertex",
           kInvalidTypeId,
           {{"X", TypeRef::Float()},
            {"Y", TypeRef::Float()},
            {"Z", TypeRef::Float()}},
           {"X", "set_X", "Y", "set_Y", "Z", "set_Z", "translate", "scale",
            "rotate", "dist"},
           false}));
  GOMFM_ASSIGN_OR_RETURN(
      s.material,
      schema->DeclareTupleType(
          {"Material",
           kInvalidTypeId,
           {{"Name", TypeRef::String()}, {"SpecWeight", TypeRef::Float()}},
           {"Name", "set_Name", "SpecWeight", "set_SpecWeight"},
           false}));
  GOMFM_ASSIGN_OR_RETURN(
      s.robot,
      schema->DeclareTupleType(
          {"Robot",
           kInvalidTypeId,
           {{"Pos", TypeRef::Object(s.vertex)}},
           {"Pos", "set_Pos"},
           false}));

  std::vector<Attribute> cuboid_attrs;
  for (int i = 1; i <= 8; ++i) {
    cuboid_attrs.push_back(
        {"V" + std::to_string(i), TypeRef::Object(s.vertex)});
  }
  cuboid_attrs.push_back({"Mat", TypeRef::Object(s.material)});
  cuboid_attrs.push_back({"Value", TypeRef::Float()});
  GOMFM_ASSIGN_OR_RETURN(
      s.cuboid,
      schema->DeclareTupleType(
          {"Cuboid",
           kInvalidTypeId,
           cuboid_attrs,
           // Figure 1 intentionally makes the whole structure public; §5.3
           // later restricts the public clause under strict encapsulation.
           {"length", "width", "height", "volume", "weight", "rotate",
            "scale", "translate", "distance", "V1", "set_V1", "V2", "set_V2",
            "V3", "set_V3", "V4", "set_V4", "V5", "set_V5", "V6", "set_V6",
            "V7", "set_V7", "V8", "set_V8", "Value", "set_Value", "Mat",
            "set_Mat"},
           false}));

  GOMFM_ASSIGN_OR_RETURN(
      s.workpieces,
      schema->DeclareSetType("Workpieces", TypeRef::Object(s.cuboid)));
  GOMFM_ASSIGN_OR_RETURN(
      s.valuables,
      schema->DeclareSetType("Valuables", TypeRef::Object(s.cuboid)));

  // --- Side-effect-free functions (function language, analyzable) ---------

  auto sq = [](ExprPtr a, ExprPtr b) { return Mul(Sub(a, b), Sub(a, b)); };
  GOMFM_ASSIGN_OR_RETURN(
      s.dist,
      registry->Register(FunctionDef{
          kInvalidFunctionId,
          "dist",
          {{"self", TypeRef::Object(s.vertex)},
           {"other", TypeRef::Object(s.vertex)}},
          TypeRef::Float(),
          Body(Sqrt(Add(Add(sq(Attr(Self(), "X"), Attr(Var("other"), "X")),
                            sq(Attr(Self(), "Y"), Attr(Var("other"), "Y"))),
                        sq(Attr(Self(), "Z"), Attr(Var("other"), "Z"))))),
          nullptr,
          true}));

  auto edge = [&](const char* name,
                  const char* corner) -> Result<FunctionId> {
    return registry->Register(FunctionDef{
        kInvalidFunctionId,
        name,
        {{"self", TypeRef::Object(s.cuboid)}},
        TypeRef::Float(),
        Body(CallF("dist", {Attr(Self(), "V1"), Attr(Self(), corner)})),
        nullptr,
        true});
  };
  GOMFM_ASSIGN_OR_RETURN(s.length, edge("length", "V2"));
  GOMFM_ASSIGN_OR_RETURN(s.width, edge("width", "V4"));
  GOMFM_ASSIGN_OR_RETURN(s.height, edge("height", "V5"));

  GOMFM_ASSIGN_OR_RETURN(
      s.volume,
      registry->Register(FunctionDef{
          kInvalidFunctionId,
          "volume",
          {{"self", TypeRef::Object(s.cuboid)}},
          TypeRef::Float(),
          Body(Mul(Mul(CallF("length", {Self()}), CallF("width", {Self()})),
                   CallF("height", {Self()}))),
          nullptr,
          true}));
  GOMFM_ASSIGN_OR_RETURN(
      s.weight,
      registry->Register(FunctionDef{
          kInvalidFunctionId,
          "weight",
          {{"self", TypeRef::Object(s.cuboid)}},
          TypeRef::Float(),
          Body(Mul(CallF("volume", {Self()}),
                   Path(Self(), {"Mat", "SpecWeight"}))),
          nullptr,
          true}));
  GOMFM_ASSIGN_OR_RETURN(
      s.distance,
      registry->Register(FunctionDef{
          kInvalidFunctionId,
          "distance",
          {{"self", TypeRef::Object(s.cuboid)},
           {"robot", TypeRef::Object(s.robot)}},
          TypeRef::Float(),
          Body(CallF("dist",
                     {Attr(Self(), "V1"), Attr(Var("robot"), "Pos")})),
          nullptr,
          true}));

  GOMFM_ASSIGN_OR_RETURN(
      s.total_volume,
      registry->Register(FunctionDef{
          kInvalidFunctionId,
          "total_volume",
          {{"self", TypeRef::Object(s.workpieces)}},
          TypeRef::Float(),
          Body(SumOver(Self(), "c", CallF("volume", {Var("c")}))),
          nullptr,
          true}));
  GOMFM_ASSIGN_OR_RETURN(
      s.total_weight,
      registry->Register(FunctionDef{
          kInvalidFunctionId,
          "total_weight",
          {{"self", TypeRef::Object(s.workpieces)}},
          TypeRef::Float(),
          Body(SumOver(Self(), "cw", CallF("weight", {Var("cw")}))),
          nullptr,
          true}));
  GOMFM_ASSIGN_OR_RETURN(
      s.total_value,
      registry->Register(FunctionDef{
          kInvalidFunctionId,
          "total_value",
          {{"self", TypeRef::Object(s.valuables)}},
          TypeRef::Float(),
          Body(SumOver(Self(), "cv", Attr(Var("cv"), "Value"))),
          nullptr,
          true}));

  // §5.4: increase_total(self, new_cuboid, old_total) = old_total +
  // new_cuboid.volume — compensates Workpieces.insert for total_volume.
  GOMFM_ASSIGN_OR_RETURN(
      s.increase_total,
      registry->Register(FunctionDef{
          kInvalidFunctionId,
          "increase_total",
          {{"self", TypeRef::Object(s.workpieces)},
           {"new_cuboid", TypeRef::Object(s.cuboid)},
           {"old_total", TypeRef::Float()}},
          TypeRef::Float(),
          Body(Add(Var("old_total"), CallF("volume", {Var("new_cuboid")}))),
          nullptr,
          true}));

  // --- Native update operations -------------------------------------------

  FunctionId op_translate_id = static_cast<FunctionId>(registry->size());
  GOMFM_ASSIGN_OR_RETURN(
      s.op_translate,
      registry->Register(FunctionDef{
          kInvalidFunctionId,
          "translate",
          {{"self", TypeRef::Object(s.cuboid)},
           {"dx", TypeRef::Float()},
           {"dy", TypeRef::Float()},
           {"dz", TypeRef::Float()}},
          TypeRef::Void(),
          {},
          [op_translate_id](EvalContext& ctx,
                            const std::vector<Value>& args) -> Result<Value> {
            GOMFM_ASSIGN_OR_RETURN(Oid self, args[0].AsRef());
            double dx = *args[1].AsDouble(), dy = *args[2].AsDouble(),
                   dz = *args[3].AsDouble();
            return TransformVertices(ctx, self, op_translate_id, args,
                                     [&](double& x, double& y, double& z) {
                                       x += dx;
                                       y += dy;
                                       z += dz;
                                     });
          },
          false}));

  FunctionId op_scale_id = static_cast<FunctionId>(registry->size());
  GOMFM_ASSIGN_OR_RETURN(
      s.op_scale,
      registry->Register(FunctionDef{
          kInvalidFunctionId,
          "scale",
          {{"self", TypeRef::Object(s.cuboid)},
           {"sx", TypeRef::Float()},
           {"sy", TypeRef::Float()},
           {"sz", TypeRef::Float()}},
          TypeRef::Void(),
          {},
          [op_scale_id](EvalContext& ctx,
                        const std::vector<Value>& args) -> Result<Value> {
            GOMFM_ASSIGN_OR_RETURN(Oid self, args[0].AsRef());
            double sx = *args[1].AsDouble(), sy = *args[2].AsDouble(),
                   sz = *args[3].AsDouble();
            return TransformVertices(ctx, self, op_scale_id, args,
                                     [&](double& x, double& y, double& z) {
                                       x *= sx;
                                       y *= sy;
                                       z *= sz;
                                     });
          },
          false}));

  FunctionId op_rotate_id = static_cast<FunctionId>(registry->size());
  GOMFM_ASSIGN_OR_RETURN(
      s.op_rotate,
      registry->Register(FunctionDef{
          kInvalidFunctionId,
          "rotate",
          {{"self", TypeRef::Object(s.cuboid)},
           {"axis", TypeRef::Int()},  // 0 = X, 1 = Y, 2 = Z
           {"angle", TypeRef::Float()}},
          TypeRef::Void(),
          {},
          [op_rotate_id](EvalContext& ctx,
                         const std::vector<Value>& args) -> Result<Value> {
            GOMFM_ASSIGN_OR_RETURN(Oid self, args[0].AsRef());
            int64_t axis = args[1].as_int();
            double a = *args[2].AsDouble();
            double c = std::cos(a), si = std::sin(a);
            return TransformVertices(
                ctx, self, op_rotate_id, args,
                [&](double& x, double& y, double& z) {
                  double nx = x, ny = y, nz = z;
                  switch (axis % 3) {
                    case 0:
                      ny = y * c - z * si;
                      nz = y * si + z * c;
                      break;
                    case 1:
                      nx = x * c + z * si;
                      nz = -x * si + z * c;
                      break;
                    default:
                      nx = x * c - y * si;
                      ny = x * si + y * c;
                  }
                  x = nx;
                  y = ny;
                  z = nz;
                });
          },
          false}));

  // Attach type-associated operations to the schema's type frames.
  GOMFM_RETURN_IF_ERROR(schema->AttachOperation(s.cuboid, "volume", s.volume));
  GOMFM_RETURN_IF_ERROR(schema->AttachOperation(s.cuboid, "weight", s.weight));
  GOMFM_RETURN_IF_ERROR(
      schema->AttachOperation(s.cuboid, "translate", s.op_translate));
  GOMFM_RETURN_IF_ERROR(schema->AttachOperation(s.cuboid, "scale", s.op_scale));
  GOMFM_RETURN_IF_ERROR(
      schema->AttachOperation(s.cuboid, "rotate", s.op_rotate));
  GOMFM_RETURN_IF_ERROR(schema->AttachOperation(s.vertex, "dist", s.dist));

  return s;
}

Result<Oid> CuboidSchema::MakeMaterial(ObjectManager* om,
                                       const std::string& name,
                                       double spec_weight) const {
  return om->CreateTuple(material,
                         {Value::String(name), Value::Float(spec_weight)});
}

Result<Oid> CuboidSchema::MakeRobot(ObjectManager* om, double x, double y,
                                    double z) const {
  GOMFM_ASSIGN_OR_RETURN(
      Oid pos, om->CreateTuple(vertex, {Value::Float(x), Value::Float(y),
                                        Value::Float(z)}));
  // Pin the position to the robot's shard (see MakeCuboid for the pattern).
  om->SetAffinityRoot(pos, Oid(om->next_oid()));
  GOMFM_ASSIGN_OR_RETURN(Oid r, om->CreateTuple(robot, {Value::Ref(pos)}));
  if (om->AffinityRoot(pos) != r) om->SetAffinityRoot(pos, r);
  return r;
}

Result<Oid> CuboidSchema::MakeCuboid(ObjectManager* om, double l, double w,
                                     double h, Oid mat, double value,
                                     double x0, double y0, double z0) const {
  // Standard corner layout: V1 origin, V2 +x, V3 +x+y, V4 +y, V5..V8 the
  // same square shifted by +z.
  const double xs[8] = {0, l, l, 0, 0, l, l, 0};
  const double ys[8] = {0, 0, w, w, 0, 0, w, w};
  const double zs[8] = {0, 0, 0, 0, h, h, h, h};
  std::vector<Value> fields;
  for (int i = 0; i < 8; ++i) {
    GOMFM_ASSIGN_OR_RETURN(
        Oid v, om->CreateTuple(vertex, {Value::Float(x0 + xs[i]),
                                        Value::Float(y0 + ys[i]),
                                        Value::Float(z0 + zs[i])}));
    fields.push_back(Value::Ref(v));
  }
  fields.push_back(Value::Ref(mat));
  fields.push_back(Value::Float(value));
  // Pin the vertices to the cuboid's shard *before* the cuboid is created:
  // creation fires AfterCreate -> GmrManager::NewObject, which materializes
  // volume(cuboid) and records reverse references for the vertices — their
  // shard must already be final at that point. The allocator hands out OIDs
  // sequentially, so the cuboid's OID is next_oid(); if an exotic notifier
  // allocated objects mid-create the roots are repaired after the fact.
  Oid predicted(om->next_oid());
  for (const Value& f : fields) {
    if (f.kind() == ValueKind::kRef) {
      Result<Oid> v = f.AsRef();
      if (v.ok() && *v != mat) om->SetAffinityRoot(*v, predicted);
    }
  }
  GOMFM_ASSIGN_OR_RETURN(Oid c, om->CreateTuple(cuboid, std::move(fields)));
  if (c != predicted) {
    GOMFM_ASSIGN_OR_RETURN(std::vector<Oid> vs, VerticesOf(om, c));
    for (Oid v : vs) om->SetAffinityRoot(v, c);
  }
  return c;
}

Result<std::vector<Oid>> CuboidSchema::VerticesOf(ObjectManager* om,
                                                  Oid cuboid_oid) const {
  std::vector<Oid> out;
  for (int i = 1; i <= 8; ++i) {
    GOMFM_ASSIGN_OR_RETURN(
        Value v, om->GetAttribute(cuboid_oid, "V" + std::to_string(i)));
    GOMFM_ASSIGN_OR_RETURN(Oid oid, v.AsRef());
    out.push_back(oid);
  }
  return out;
}

Status CuboidSchema::DeleteCuboid(ObjectManager* om, Oid cuboid_oid) const {
  GOMFM_ASSIGN_OR_RETURN(std::vector<Oid> vertices,
                         VerticesOf(om, cuboid_oid));
  GOMFM_RETURN_IF_ERROR(om->Delete(cuboid_oid));
  for (Oid v : vertices) {
    GOMFM_RETURN_IF_ERROR(om->Delete(v));
  }
  return Status::Ok();
}

}  // namespace gom::workload
