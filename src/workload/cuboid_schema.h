#ifndef GOMFM_WORKLOAD_CUBOID_SCHEMA_H_
#define GOMFM_WORKLOAD_CUBOID_SCHEMA_H_

#include <string>
#include <vector>

#include "funclang/function_registry.h"
#include "gom/object_manager.h"

namespace gom::workload {

/// The computer-geometry application of §2/§7.1: Vertex, Material, Robot,
/// Cuboid (Figure 1), the set types Workpieces and Valuables, the
/// side-effect-free functions (dist, length, width, height, volume, weight,
/// distance, total_volume, total_weight, total_value) and the native update
/// operations (translate, scale, rotate).
///
/// The update operations delegate to the boundary vertices through the
/// elementary `set_X/Y/Z` operations, inside a Begin/EndOperation bracket —
/// so all invalidation strategies of §4/§5 observe exactly the events the
/// paper describes (e.g. one `scale` performs 12 relevant coordinate writes
/// on the four vertices the materialized `volume` depends on).
struct CuboidSchema {
  TypeId vertex = kInvalidTypeId;
  TypeId material = kInvalidTypeId;
  TypeId robot = kInvalidTypeId;
  TypeId cuboid = kInvalidTypeId;
  TypeId workpieces = kInvalidTypeId;
  TypeId valuables = kInvalidTypeId;

  FunctionId dist = kInvalidFunctionId;
  FunctionId length = kInvalidFunctionId;
  FunctionId width = kInvalidFunctionId;
  FunctionId height = kInvalidFunctionId;
  FunctionId volume = kInvalidFunctionId;
  FunctionId weight = kInvalidFunctionId;
  FunctionId distance = kInvalidFunctionId;      // Cuboid × Robot → float
  FunctionId total_volume = kInvalidFunctionId;  // Workpieces → float
  FunctionId total_weight = kInvalidFunctionId;
  FunctionId total_value = kInvalidFunctionId;   // Valuables → float
  /// Compensating action for Workpieces.insert / total_volume (§5.4).
  FunctionId increase_total = kInvalidFunctionId;

  FunctionId op_translate = kInvalidFunctionId;  // Cuboid ‖ dx,dy,dz → void
  FunctionId op_scale = kInvalidFunctionId;      // Cuboid ‖ sx,sy,sz → void
  FunctionId op_rotate = kInvalidFunctionId;     // Cuboid ‖ axis,angle → void

  /// Declares all types and functions into the given schema/registry.
  static Result<CuboidSchema> Declare(Schema* schema,
                                      funclang::FunctionRegistry* registry);

  /// Creates an axis-aligned cuboid l × w × h with corner V1 at
  /// (x0, y0, z0), its eight vertices (created right before it, so they
  /// cluster on its pages), referencing `mat`.
  Result<Oid> MakeCuboid(ObjectManager* om, double l, double w, double h,
                         Oid mat, double value = 0.0, double x0 = 0.0,
                         double y0 = 0.0, double z0 = 0.0) const;

  Result<Oid> MakeMaterial(ObjectManager* om, const std::string& name,
                           double spec_weight) const;

  Result<Oid> MakeRobot(ObjectManager* om, double x, double y, double z) const;

  /// The eight vertex OIDs of a cuboid.
  Result<std::vector<Oid>> VerticesOf(ObjectManager* om, Oid cuboid_oid) const;

  /// Deletes a cuboid together with its eight (exclusively owned) vertices.
  Status DeleteCuboid(ObjectManager* om, Oid cuboid_oid) const;
};

}  // namespace gom::workload

#endif  // GOMFM_WORKLOAD_CUBOID_SCHEMA_H_
