#include "workload/driver.h"

#include <algorithm>

namespace gom::workload {

namespace {

GmrManagerOptions OptionsFor(ProgramVersion v) {
  GmrManagerOptions options;
  options.remat = v == ProgramVersion::kLazy ? RematStrategy::kLazy
                                             : RematStrategy::kImmediate;
  return options;
}

NotifyLevel LevelFor(ProgramVersion v) {
  switch (v) {
    case ProgramVersion::kInfoHiding:
    case ProgramVersion::kCompAction:
      return NotifyLevel::kInfoHiding;
    default:
      return NotifyLevel::kObjDep;
  }
}

}  // namespace

Session* Environment::MakeSession() {
  if (session_pool == nullptr) {
    session_pool = std::make_unique<SessionPool>(this, mgr.shard_count());
    mgr.EnableConcurrentReads();
  }
  return session_pool->CreateSession();
}

// ---------------------------------------------------------------- GeoBench

GeoBench::GeoBench(const Config& config)
    : config_(config),
      env_(std::make_unique<Environment>(config.buffer_pages,
                                         OptionsFor(config.version))),
      rng_(config.seed) {
  setup_ = Setup();
}

Status GeoBench::Setup() {
  GOMFM_ASSIGN_OR_RETURN(geo_,
                         CuboidSchema::Declare(&env_->schema,
                                               &env_->registry));
  GOMFM_ASSIGN_OR_RETURN(iron_, geo_.MakeMaterial(&env_->om, "Iron", 7.86));
  GOMFM_ASSIGN_OR_RETURN(gold_, geo_.MakeMaterial(&env_->om, "Gold", 19.0));

  cuboids_.reserve(config_.num_cuboids);
  for (size_t i = 0; i < config_.num_cuboids; ++i) {
    double l = rng_.UniformDouble(1, 20);
    double w = rng_.UniformDouble(1, 20);
    double h = rng_.UniformDouble(1, 20);
    max_volume_ = std::max(max_volume_, l * w * h);
    GOMFM_ASSIGN_OR_RETURN(
        Oid c, geo_.MakeCuboid(&env_->om, l, w, h,
                               rng_.Bernoulli(0.5) ? iron_ : gold_,
                               rng_.UniformDouble(0, 1000)));
    cuboids_.push_back(c);
  }

  bool with_gmr = config_.version != ProgramVersion::kWithoutGmr;
  if (with_gmr) {
    GmrSpec spec;
    spec.name = "volume";
    spec.arg_types = {TypeRef::Object(geo_.cuboid)};
    spec.functions = {geo_.volume};
    if (config_.materialize_weight) {
      spec.name = "volume_weight";
      spec.functions.push_back(geo_.weight);
    }
    GOMFM_ASSIGN_OR_RETURN(GmrId id, env_->mgr.Materialize(spec));

    if (LevelFor(config_.version) == NotifyLevel::kInfoHiding) {
      // §5.3: Cuboid becomes strictly encapsulated; the database
      // programmer declares that only scale affects volume/weight.
      GOMFM_RETURN_IF_ERROR(
          env_->schema.SetStrictlyEncapsulated(geo_.cuboid, true));
      env_->mgr.deps().AddInvalidated(geo_.cuboid, geo_.op_scale,
                                      geo_.volume);
      if (config_.materialize_weight) {
        env_->mgr.deps().AddInvalidated(geo_.cuboid, geo_.op_scale,
                                        geo_.weight);
      }
    }
    auto* notifier = env_->InstallNotifier(LevelFor(config_.version));
    ConfigureVersion(config_.version, &env_->mgr, notifier);
    if (config_.pre_invalidate) {
      env_->mgr.set_remat_strategy(RematStrategy::kLazy);
      GOMFM_RETURN_IF_ERROR(env_->mgr.InvalidateAllResults(id));
    }
  }
  exec_ = std::make_unique<query::QueryExecutor>(&env_->om, &env_->interp,
                                                 &env_->mgr, with_gmr);
  // Cold-start the cache so all program versions measure from the same
  // buffer state.
  GOMFM_RETURN_IF_ERROR(env_->pool.EvictAll());
  env_->pool.ResetCounters();
  env_->disk.ResetCounters();
  return Status::Ok();
}

Result<double> GeoBench::RunMix(const OperationMix& mix) {
  GOMFM_RETURN_IF_ERROR(setup_);
  env_->clock.Reset();
  env_->mgr.ResetStats();
  for (size_t i = 0; i < mix.num_ops; ++i) {
    GOMFM_ASSIGN_OR_RETURN(OpKind kind, mix.Sample(&rng_));
    GOMFM_RETURN_IF_ERROR(DoOp(kind));
  }
  if (env_->notifier != nullptr) {
    GOMFM_RETURN_IF_ERROR(env_->notifier->first_error());
  }
  return env_->clock.seconds();
}

Status GeoBench::DoOp(OpKind kind) {
  switch (kind) {
    case OpKind::kBackwardQuery:
      return BackwardQuery();
    case OpKind::kForwardQuery:
      return ForwardQuery();
    case OpKind::kInsert:
    case OpKind::kDelete:
    case OpKind::kScale:
    case OpKind::kRotate:
    case OpKind::kTranslate:
      break;  // update operations, batched below when configured
    default:
      return Status::InvalidArgument("operation outside the geometry mix");
  }
  auto run = [&]() -> Status {
    switch (kind) {
      case OpKind::kInsert:
        return Insert();
      case OpKind::kDelete:
        return Delete();
      case OpKind::kScale:
        return Scale();
      case OpKind::kRotate:
        return Rotate();
      default:
        return Translate();
    }
  };
  if (!config_.batch_updates) return run();
  GmrManager::UpdateBatch batch(&env_->mgr);
  GOMFM_RETURN_IF_ERROR(run());
  return batch.Commit();
}

Status GeoBench::BackwardQuery() {
  double r = rng_.UniformDouble(0, max_volume_ * 0.5);
  double eps = max_volume_ * 0.002;
  query::BackwardQuery q;
  q.range_type = geo_.cuboid;
  q.function = geo_.volume;
  q.lo = r - eps;
  q.hi = r + eps;
  q.lo_inclusive = false;
  q.hi_inclusive = false;
  GOMFM_ASSIGN_OR_RETURN(std::vector<Oid> hits, exec_->RunBackward(q));
  last_backward_matches_ = hits.size();
  return Status::Ok();
}

Status GeoBench::ForwardQuery() {
  if (cuboids_.empty()) return Status::Ok();
  Oid c = cuboids_[rng_.UniformInt(0, cuboids_.size() - 1)];
  query::ForwardQuery q{geo_.volume, {Value::Ref(c)}};
  return exec_->RunForward(q).status();
}

Status GeoBench::Insert() {
  double l = rng_.UniformDouble(1, 20), w = rng_.UniformDouble(1, 20),
         h = rng_.UniformDouble(1, 20);
  max_volume_ = std::max(max_volume_, l * w * h);
  GOMFM_ASSIGN_OR_RETURN(
      Oid c, geo_.MakeCuboid(&env_->om, l, w, h,
                             rng_.Bernoulli(0.5) ? iron_ : gold_,
                             rng_.UniformDouble(0, 1000)));
  cuboids_.push_back(c);
  return Status::Ok();
}

Status GeoBench::Delete() {
  if (cuboids_.size() < 2) return Status::Ok();
  size_t idx = rng_.UniformInt(0, cuboids_.size() - 1);
  GOMFM_RETURN_IF_ERROR(geo_.DeleteCuboid(&env_->om, cuboids_[idx]));
  cuboids_.erase(cuboids_.begin() + idx);
  return Status::Ok();
}

Status GeoBench::Scale() {
  if (cuboids_.empty()) return Status::Ok();
  Oid c = cuboids_[rng_.UniformInt(0, cuboids_.size() - 1)];
  return env_->interp
      .Invoke(geo_.op_scale,
              {Value::Ref(c), Value::Float(rng_.UniformDouble(0.5, 1.5)),
               Value::Float(rng_.UniformDouble(0.5, 1.5)),
               Value::Float(rng_.UniformDouble(0.5, 1.5))})
      .status();
}

Status GeoBench::Rotate() {
  if (cuboids_.empty()) return Status::Ok();
  Oid c = cuboids_[rng_.UniformInt(0, cuboids_.size() - 1)];
  return env_->interp
      .Invoke(geo_.op_rotate,
              {Value::Ref(c), Value::Int(rng_.UniformInt(0, 2)),
               Value::Float(rng_.UniformDouble(0, 3.14159))})
      .status();
}

Status GeoBench::Translate() {
  if (cuboids_.empty()) return Status::Ok();
  Oid c = cuboids_[rng_.UniformInt(0, cuboids_.size() - 1)];
  return env_->interp
      .Invoke(geo_.op_translate,
              {Value::Ref(c), Value::Float(rng_.UniformDouble(-10, 10)),
               Value::Float(rng_.UniformDouble(-10, 10)),
               Value::Float(rng_.UniformDouble(-10, 10))})
      .status();
}

// ------------------------------------------------------------ CompanyBench

CompanyBench::CompanyBench(const Config& config)
    : config_(config),
      env_(std::make_unique<Environment>(config.buffer_pages,
                                         OptionsFor(config.version))),
      rng_(config.seed) {
  setup_ = Setup();
}

Status CompanyBench::Setup() {
  GOMFM_ASSIGN_OR_RETURN(
      co_, CompanySchema::Declare(&env_->schema, &env_->registry));
  GOMFM_ASSIGN_OR_RETURN(db_,
                         BuildCompany(co_, &env_->om, config_.company, &rng_));
  next_emp_no_ = static_cast<int64_t>(db_.employees.size()) + 1;
  next_project_no_ = db_.projects.size();

  bool with_gmr = config_.version != ProgramVersion::kWithoutGmr;
  if (with_gmr) {
    if (config_.materialize_ranking) {
      GmrSpec spec;
      spec.name = "ranking";
      spec.arg_types = {TypeRef::Object(co_.employee)};
      spec.functions = {co_.ranking};
      GOMFM_RETURN_IF_ERROR(env_->mgr.Materialize(spec).status());
    }
    if (config_.materialize_matrix) {
      GmrSpec spec;
      spec.name = "matrix";
      spec.arg_types = {TypeRef::Object(co_.company)};
      spec.functions = {co_.matrix};
      GOMFM_RETURN_IF_ERROR(env_->mgr.Materialize(spec).status());
      if (LevelFor(config_.version) == NotifyLevel::kInfoHiding) {
        env_->mgr.deps().AddInvalidated(co_.company, co_.op_add_project,
                                        co_.matrix);
      }
      if (config_.compensate_add_project) {
        GOMFM_RETURN_IF_ERROR(env_->mgr.deps().AddCompensatingAction(
            co_.company, co_.op_add_project, co_.matrix,
            co_.matrix_add_project));
      }
    }
    auto* notifier = env_->InstallNotifier(LevelFor(config_.version));
    ConfigureVersion(config_.version, &env_->mgr, notifier);
  }
  exec_ = std::make_unique<query::QueryExecutor>(&env_->om, &env_->interp,
                                                 &env_->mgr, with_gmr);
  GOMFM_RETURN_IF_ERROR(env_->pool.EvictAll());
  env_->pool.ResetCounters();
  env_->disk.ResetCounters();
  return Status::Ok();
}

Result<double> CompanyBench::RunMix(const OperationMix& mix) {
  GOMFM_RETURN_IF_ERROR(setup_);
  env_->clock.Reset();
  env_->mgr.ResetStats();
  for (size_t i = 0; i < mix.num_ops; ++i) {
    GOMFM_ASSIGN_OR_RETURN(OpKind kind, mix.Sample(&rng_));
    GOMFM_RETURN_IF_ERROR(DoOp(kind));
  }
  if (env_->notifier != nullptr) {
    GOMFM_RETURN_IF_ERROR(env_->notifier->first_error());
  }
  return env_->clock.seconds();
}

Status CompanyBench::DoOp(OpKind kind) {
  switch (kind) {
    case OpKind::kRankingBackward:
      return RankingBackward();
    case OpKind::kRankingForward:
      return RankingForward();
    case OpKind::kMatrixSelect:
      return MatrixSelect();
    case OpKind::kPromote:
    case OpKind::kNewEmployee:
    case OpKind::kNewProject:
      break;  // update operations, batched below when configured
    default:
      return Status::InvalidArgument("operation outside the company mix");
  }
  auto run = [&]() -> Status {
    switch (kind) {
      case OpKind::kPromote:
        return Promote();
      case OpKind::kNewEmployee:
        return NewEmployee();
      default:
        return NewProject();
    }
  };
  if (!config_.batch_updates) return run();
  GmrManager::UpdateBatch batch(&env_->mgr);
  GOMFM_RETURN_IF_ERROR(run());
  return batch.Commit();
}

Status CompanyBench::RankingBackward() {
  // Rankings concentrate around loc/1000·avg + status bonuses; probe the
  // dense region with a small ε.
  double r = rng_.UniformDouble(8.0, 14.0);
  double eps = 0.05;
  query::BackwardQuery q;
  q.range_type = co_.employee;
  q.function = co_.ranking;
  q.lo = r - eps;
  q.hi = r + eps;
  q.lo_inclusive = false;
  q.hi_inclusive = false;
  return exec_->RunBackward(q).status();
}

Status CompanyBench::RankingForward() {
  if (db_.by_emp_no.empty()) return Status::Ok();
  int64_t no = rng_.UniformInt(1, static_cast<int64_t>(db_.by_emp_no.size()));
  auto it = db_.by_emp_no.find(no);
  if (it == db_.by_emp_no.end()) return Status::Ok();
  query::ForwardQuery q{co_.ranking, {Value::Ref(it->second)}};
  return exec_->RunForward(q).status();
}

Status CompanyBench::MatrixSelect() {
  // Qsel,m: all projects a random department participates in.
  query::ForwardQuery q{co_.matrix, {Value::Ref(db_.company)}};
  GOMFM_ASSIGN_OR_RETURN(Value m, exec_->RunForward(q));
  int64_t dep_no = rng_.UniformInt(0, config_.company.departments - 1);
  size_t found = 0;
  for (const Value& line : m.elements()) {
    const auto& fields = line.elements();
    GOMFM_ASSIGN_OR_RETURN(Oid dep, fields[0].AsRef());
    GOMFM_ASSIGN_OR_RETURN(Value no, env_->om.GetAttribute(dep, "DepNo"));
    if (no.as_int() == dep_no) ++found;
  }
  (void)found;
  return Status::Ok();
}

Status CompanyBench::Promote() {
  if (db_.employees.empty()) return Status::Ok();
  Oid e = db_.employees[rng_.UniformInt(0, db_.employees.size() - 1)];
  return env_->interp
      .Invoke(co_.op_promote,
              {Value::Ref(e), Value::Int(rng_.UniformInt(0, 1 << 20)),
               Value::Bool(rng_.Bernoulli(0.5)),
               Value::Bool(rng_.Bernoulli(0.5))})
      .status();
}

Status CompanyBench::NewEmployee() {
  GOMFM_ASSIGN_OR_RETURN(Oid history, env_->om.CreateCollection(co_.job_set));
  int64_t emp_no = next_emp_no_++;
  GOMFM_ASSIGN_OR_RETURN(
      Oid emp,
      env_->om.CreateTuple(
          co_.employee,
          {Value::String("E" + std::to_string(emp_no)), Value::Int(emp_no),
           Value::Float(rng_.UniformDouble(30000.0, 120000.0)),
           Value::Ref(history)}));
  for (size_t j = 0; j < config_.company.jobs_per_employee; ++j) {
    Oid proj = db_.projects[rng_.UniformInt(0, db_.projects.size() - 1)];
    GOMFM_ASSIGN_OR_RETURN(
        Oid job, env_->om.CreateTuple(
                     co_.job, {Value::Ref(proj),
                               Value::Int(rng_.UniformInt(100, 20000)),
                               Value::Bool(rng_.Bernoulli(0.7)),
                               Value::Bool(rng_.Bernoulli(0.6))}));
    GOMFM_RETURN_IF_ERROR(env_->om.InsertElement(history, Value::Ref(job)));
  }
  Oid dep = db_.departments[rng_.UniformInt(0, db_.departments.size() - 1)];
  GOMFM_ASSIGN_OR_RETURN(Value emps, env_->om.GetAttribute(dep, "Emps"));
  GOMFM_ASSIGN_OR_RETURN(Oid emp_set, emps.AsRef());
  GOMFM_RETURN_IF_ERROR(env_->om.InsertElement(emp_set, Value::Ref(emp)));
  db_.employees.push_back(emp);
  db_.by_emp_no[emp_no] = emp;
  return Status::Ok();
}

Status CompanyBench::NewProject() {
  GOMFM_ASSIGN_OR_RETURN(Oid programmers,
                         env_->om.CreateCollection(co_.employee_set));
  size_t n = next_project_no_++;
  GOMFM_ASSIGN_OR_RETURN(
      Oid proj,
      env_->om.CreateTuple(
          co_.project, {Value::String("P" + std::to_string(n)),
                        Value::Float(rng_.UniformDouble(-1000.0, 1000.0)),
                        Value::Int(rng_.UniformInt(1000, 200000)),
                        Value::Ref(programmers)}));
  for (size_t k = 0; k < config_.company.programmers_per_project; ++k) {
    Oid emp = db_.employees[rng_.UniformInt(0, db_.employees.size() - 1)];
    Status st = env_->om.InsertElement(programmers, Value::Ref(emp));
    if (!st.ok() && st.code() != StatusCode::kAlreadyExists) return st;
  }
  db_.projects.push_back(proj);
  return env_->interp
      .Invoke(co_.op_add_project, {Value::Ref(db_.company), Value::Ref(proj)})
      .status();
}

}  // namespace gom::workload
