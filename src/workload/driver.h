#ifndef GOMFM_WORKLOAD_DRIVER_H_
#define GOMFM_WORKLOAD_DRIVER_H_

#include <memory>
#include <vector>

#include "query/executor.h"
#include "storage/storage_options.h"
#include "workload/company_schema.h"
#include "workload/cuboid_schema.h"
#include "workload/operation_mix.h"
#include "workload/program_version.h"
#include "workload/session.h"

namespace gom::workload {

/// The full system stack used by benchmarks and examples: simulated
/// storage (600 kB buffer by default, matching §7), object base,
/// interpreter and GMR manager. With `StorageOptions::enable_wal` a
/// write-ahead log is created on the same disk and attached to both the
/// buffer pool (flush-log-before-dirty-page) and the GMR manager (logical
/// maintenance records); the default keeps all figures bit-identical to the
/// log-free configuration.
struct Environment {
  explicit Environment(size_t buffer_pages = 150,
                       GmrManagerOptions options = {},
                       StorageOptions storage_options = {})
      : disk(&clock, CostModel::Default()),
        pool(&disk, buffer_pages),
        storage(&pool),
        om(&schema, &storage, &clock),
        interp(&om, &registry),
        mgr(&om, &interp, &registry, &storage, options) {
    if (storage_options.enable_wal) {
      GroupCommitOptions gc;
      gc.max_group_delay_us = storage_options.max_group_delay_us;
      gc.strict_intent_fsync = storage_options.strict_intent_fsync;
      if (mgr.shard_count() > 1) {
        // One WAL stream per maintenance plane, all on the shared disk,
        // distinguished by stream id in page magic and record headers.
        // Stream 0 doubles as the buffer pool's primary (recovery-LSN
        // tracked) log; the extra streams flush wholesale before dirty
        // page write-back.
        shard_wals.reserve(mgr.shard_count());
        for (size_t s = 0; s < mgr.shard_count(); ++s) {
          shard_wals.push_back(std::make_unique<WriteAheadLog>(
              &disk, static_cast<uint8_t>(s)));
          if (storage_options.enable_group_commit) {
            shard_wals[s]->EnableGroupCommit(gc);
          }
          mgr.AttachWalAt(s, shard_wals[s].get());
        }
        pool.AttachWal(shard_wals[0].get());
        for (size_t s = 1; s < mgr.shard_count(); ++s) {
          pool.AttachExtraWal(shard_wals[s].get());
        }
      } else {
        wal = std::make_unique<WriteAheadLog>(&disk);
        if (storage_options.enable_group_commit) wal->EnableGroupCommit(gc);
        pool.AttachWal(wal.get());
        mgr.AttachWal(wal.get());
      }
    }
  }

  /// Installs (or retunes) the update notifier. Idempotent: a second call
  /// adjusts the existing notifier's level instead of replacing it, so the
  /// interception hook is installed at most once. `install_interception`
  /// controls the §3.2 call mapping (tests exercising the notifier in
  /// isolation leave it off).
  MaterializationNotifier* InstallNotifier(NotifyLevel level,
                                           bool install_interception = true) {
    if (notifier != nullptr) {
      notifier->set_level(level);
      return notifier.get();
    }
    notifier = std::make_unique<MaterializationNotifier>(&mgr, &om, level);
    om.SetNotifier(notifier.get());
    if (install_interception) {
      // §3.2: from here on, nested invocations of materialized functions
      // are served as forward queries through the GMR manager.
      mgr.InstallCallInterception();
    }
    return notifier.get();
  }

  /// Hands out a concurrent reader session (creating the pool and
  /// switching the GMR catalog into concurrent mode on first use). Call on
  /// the coordinating thread before spawning the session's worker.
  /// Single-threaded benchmarks never call this, so their figures are
  /// untouched.
  Session* MakeSession();

  /// Returns a MakeSession() session to the pool for reuse (e.g. when the
  /// server connection owning it closes). Safe from any thread; the caller
  /// must have drained the session's in-flight queries first.
  void ReleaseSession(Session* session) {
    if (session_pool != nullptr) session_pool->Release(session);
  }

  SimClock clock;
  SimDisk disk;
  BufferPool pool;
  StorageManager storage;
  Schema schema;
  ObjectManager om;
  funclang::FunctionRegistry registry;
  funclang::Interpreter interp;
  GmrManager mgr;
  std::unique_ptr<WriteAheadLog> wal;
  /// Sharded configurations: stream s is plane s's log (empty unsharded,
  /// where `wal` is the single stream-0 log).
  std::vector<std::unique_ptr<WriteAheadLog>> shard_wals;
  std::unique_ptr<MaterializationNotifier> notifier;
  std::unique_ptr<SessionPool> session_pool;
};

/// Driver for the computer-geometry benchmarks (§7.1): builds the 8000-
/// cuboid database, configures one of the program versions and executes
/// operation mixes, reporting simulated time.
class GeoBench {
 public:
  struct Config {
    size_t num_cuboids = 8000;
    size_t buffer_pages = 150;  // 600 kB / 4 kB (§7)
    ProgramVersion version = ProgramVersion::kWithoutGmr;
    uint64_t seed = 42;
    /// Materialize ⟨⟨weight⟩⟩ alongside ⟨⟨volume⟩⟩ (the §7.1 figures use
    /// only ⟨⟨volume⟩⟩).
    bool materialize_weight = false;
    /// Fig. 10's "Lazy" configuration: all volume results invalidated
    /// before the run, leaving RRR and ObjDepFct empty for ⟨⟨volume⟩⟩.
    bool pre_invalidate = false;
    /// Wrap each update operation in a GmrManager::UpdateBatch so the
    /// rematerializations its elementary updates trigger are coalesced
    /// (one recomputation per distinct invalidated result). Off by
    /// default: the §7 figures model the paper's immediate strategy.
    bool batch_updates = false;
  };

  /// Builds the database and applies the program version. Errors from
  /// setup latch into `setup_status()`.
  explicit GeoBench(const Config& config);

  const Status& setup_status() const { return setup_; }

  /// Runs the mix, returning the simulated seconds it took (the clock is
  /// reset before the first operation, as the paper reports per-profile
  /// user time).
  Result<double> RunMix(const OperationMix& mix);

  /// Individual operations (used by RunMix and by examples).
  Status DoOp(OpKind kind);
  Status BackwardQuery();
  Status ForwardQuery();
  Status Insert();
  Status Delete();
  Status Scale();
  Status Rotate();
  Status Translate();

  Environment& env() { return *env_; }
  const CuboidSchema& geo() const { return geo_; }
  size_t cuboid_count() const { return cuboids_.size(); }
  /// Matches found by the last backward query (for sanity checks).
  size_t last_backward_matches() const { return last_backward_matches_; }

 private:
  Status Setup();

  Config config_;
  std::unique_ptr<Environment> env_;
  CuboidSchema geo_;
  std::unique_ptr<query::QueryExecutor> exec_;
  Rng rng_;
  Oid iron_, gold_;
  std::vector<Oid> cuboids_;
  double max_volume_ = 0;
  Status setup_ = Status::Ok();
  size_t last_backward_matches_ = 0;
};

/// Driver for the company benchmarks (§7.2).
class CompanyBench {
 public:
  struct Config {
    CompanyConfig company;       // 20×100 employees, 1000 projects, …
    size_t buffer_pages = 150;
    ProgramVersion version = ProgramVersion::kWithoutGmr;
    uint64_t seed = 4711;
    bool materialize_ranking = true;
    bool materialize_matrix = false;  // Fig. 15
    /// Declare the compensating action for add_project/matrix (§5.4).
    bool compensate_add_project = false;
    /// Coalesce rematerializations per update operation (see GeoBench).
    bool batch_updates = false;
  };

  explicit CompanyBench(const Config& config);

  const Status& setup_status() const { return setup_; }

  Result<double> RunMix(const OperationMix& mix);
  Status DoOp(OpKind kind);
  Status RankingBackward();
  Status RankingForward();
  Status MatrixSelect();
  Status Promote();
  Status NewEmployee();
  Status NewProject();

  Environment& env() { return *env_; }
  const CompanySchema& schema() const { return co_; }
  const CompanyDb& db() const { return db_; }

 private:
  Status Setup();

  Config config_;
  std::unique_ptr<Environment> env_;
  CompanySchema co_;
  std::unique_ptr<query::QueryExecutor> exec_;
  Rng rng_;
  CompanyDb db_;
  int64_t next_emp_no_ = 0;
  size_t next_project_no_ = 0;
  Status setup_ = Status::Ok();
};

}  // namespace gom::workload

#endif  // GOMFM_WORKLOAD_DRIVER_H_
