#include "workload/operation_mix.h"

namespace gom::workload {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kBackwardQuery:
      return "Qbw";
    case OpKind::kForwardQuery:
      return "Qfw";
    case OpKind::kDelete:
      return "D";
    case OpKind::kInsert:
      return "I";
    case OpKind::kScale:
      return "S";
    case OpKind::kRotate:
      return "R";
    case OpKind::kTranslate:
      return "T";
    case OpKind::kRankingBackward:
      return "Qbw,r";
    case OpKind::kRankingForward:
      return "Qfw,r";
    case OpKind::kMatrixSelect:
      return "Qsel,m";
    case OpKind::kNewEmployee:
      return "N(emp)";
    case OpKind::kPromote:
      return "P";
    case OpKind::kNewProject:
      return "N(proj)";
  }
  return "?";
}

Result<OpKind> OperationMix::Sample(Rng* rng) const {
  const std::vector<WeightedOp>* mix = nullptr;
  if (rng->Bernoulli(update_probability)) {
    mix = &update_mix;
  } else {
    mix = &query_mix;
  }
  if (mix->empty()) {
    // A degenerate profile (e.g. Pup = 1.0 with no queries, sampled as a
    // query because Pup < 1): fall back to the other side.
    mix = mix == &update_mix ? &query_mix : &update_mix;
  }
  if (mix->empty()) {
    return Status::FailedPrecondition("operation mix is empty");
  }
  std::vector<double> weights;
  weights.reserve(mix->size());
  for (const WeightedOp& op : *mix) weights.push_back(op.weight);
  return (*mix)[rng->WeightedIndex(weights)].kind;
}

}  // namespace gom::workload
