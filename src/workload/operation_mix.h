#ifndef GOMFM_WORKLOAD_OPERATION_MIX_H_
#define GOMFM_WORKLOAD_OPERATION_MIX_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace gom::workload {

/// The operations appearing in the paper's two application profiles (§7).
enum class OpKind : uint8_t {
  // Geometry (§7.1)
  kBackwardQuery,   // Qbw: retrieve c where r−ε < c.volume < r+ε
  kForwardQuery,    // Qfw: retrieve c.volume for a random cuboid
  kDelete,          // D: delete a random cuboid
  kInsert,          // I: create a cuboid of random dimensions
  kScale,           // S
  kRotate,          // R
  kTranslate,       // T
  // Company (§7.2)
  kRankingBackward, // Qbw,r
  kRankingForward,  // Qfw,r
  kMatrixSelect,    // Qsel,m
  kNewEmployee,     // N (employee variant)
  kPromote,         // P
  kNewProject,      // N (project variant, Fig. 15)
};

const char* OpKindName(OpKind kind);

/// One weighted entry of a query or update mix.
struct WeightedOp {
  double weight;
  OpKind kind;
};

/// The paper's benchmark descriptor M = (Qmix, Umix, Pup, #ops).
struct OperationMix {
  std::vector<WeightedOp> query_mix;   // weights sum to 1 (normalized here)
  std::vector<WeightedOp> update_mix;
  double update_probability = 0.0;     // Pup
  size_t num_ops = 0;                  // #ops

  /// Samples the next operation: an update with probability Pup, then a
  /// weighted choice within the respective mix.
  Result<OpKind> Sample(Rng* rng) const;
};

}  // namespace gom::workload

#endif  // GOMFM_WORKLOAD_OPERATION_MIX_H_
