#include "workload/program_version.h"

#include <algorithm>

namespace gom::workload {

FidSet MaterializationNotifier::IntersectObjDep(Oid oid,
                                                const FidSet& candidates) {
  ++objdep_checks_;
  FidSet out;
  auto used = om_->UsedBy(oid);
  if (!used.ok()) return out;
  for (FunctionId f : **used) {
    if (candidates.count(f)) out.insert(f);
  }
  return out;
}

void MaterializationNotifier::BeforeElementaryUpdate(
    const ElementaryUpdate& update) {
  pending_elementary_compensated_.clear();
  if (level_ == NotifyLevel::kInfoHiding && update.operation_depth > 0) {
    return;  // strictly encapsulated: only the outer operation notifies
  }
  if (update.kind == ElementaryUpdate::Kind::kSetAttribute) return;
  // Compensating actions for t.insert / t.remove run before the mutation.
  FunctionId op = update.kind == ElementaryUpdate::Kind::kInsertElement
                      ? kElementInsertOp
                      : kElementRemoveOp;
  const FidSet& compensated = mgr_->deps().CompensatedFct(update.type, op);
  if (compensated.empty()) return;
  FidSet relevant = IntersectObjDep(update.oid, compensated);
  if (relevant.empty()) return;
  ++manager_calls_;
  Latch(mgr_->Compensate(update.oid, update.type, op,
                         {update.value == nullptr ? Value::Null()
                                                  : *update.value},
                         relevant));
  pending_elementary_compensated_ = std::move(relevant);
}

void MaterializationNotifier::AfterElementaryUpdate(
    const ElementaryUpdate& update) {
  FidSet compensated;
  compensated.swap(pending_elementary_compensated_);
  if (level_ == NotifyLevel::kInfoHiding && update.operation_depth > 0) {
    return;
  }
  if (level_ == NotifyLevel::kNaive) {
    // Version 1 (Figure 4): GMR_Manager.invalidate(self) on every update.
    ++manager_calls_;
    Latch(mgr_->Invalidate(update.oid));
    return;
  }
  const FidSet& schema_dep =
      mgr_->deps().SchemaDepFct(update.type, PropertyOf(update));
  if (schema_dep.empty()) return;  // operation was never rewritten (§5.1)

  if (level_ == NotifyLevel::kSchemaDep) {
    ++manager_calls_;
    Latch(mgr_->Invalidate(update.oid, schema_dep));
    return;
  }
  // §5.2 / Figure 5: RelevFct := self.ObjDepFct ∩ SchemaDepFct(t.set_A)
  // (\ CompensatedFct for the §5.4 insert' rewrite).
  FidSet relevant = IntersectObjDep(update.oid, schema_dep);
  for (FunctionId f : compensated) relevant.erase(f);
  if (relevant.empty()) return;
  ++manager_calls_;
  Latch(mgr_->Invalidate(update.oid, relevant));
}

void MaterializationNotifier::AfterCreate(Oid oid, TypeId type) {
  ++manager_calls_;
  Latch(mgr_->NewObject(oid, type));
}

void MaterializationNotifier::BeforeDelete(Oid oid, TypeId type) {
  (void)type;
  if (level_ == NotifyLevel::kNaive || level_ == NotifyLevel::kSchemaDep) {
    ++manager_calls_;
    Latch(mgr_->ForgetObject(oid));
    return;
  }
  // Figure 5: delete' checks self.ObjDepFct ≠ {} first.
  ++objdep_checks_;
  auto used = om_->UsedBy(oid);
  if (!used.ok() || (*used)->empty()) return;
  ++manager_calls_;
  Latch(mgr_->ForgetObject(oid));
}

void MaterializationNotifier::BeforeOperation(Oid self, TypeId type,
                                              FunctionId op,
                                              const std::vector<Value>& args) {
  if (level_ != NotifyLevel::kInfoHiding) return;
  PendingOp pending{self, op, {}, {}};
  const FidSet& compensated = mgr_->deps().CompensatedFct(type, op);
  if (!compensated.empty()) {
    pending.compensated = IntersectObjDep(self, compensated);
    if (!pending.compensated.empty()) {
      ++manager_calls_;
      // The operation's arguments exclude the receiver.
      std::vector<Value> op_args(args.begin() + (args.empty() ? 0 : 1),
                                 args.end());
      Latch(mgr_->Compensate(self, type, op, op_args, pending.compensated));
    }
  }
  const FidSet& invalidated = mgr_->deps().InvalidatedFct(type, op);
  if (!invalidated.empty()) {
    pending.to_invalidate = IntersectObjDep(self, invalidated);
    for (FunctionId f : pending.compensated) pending.to_invalidate.erase(f);
  }
  op_stack_.push_back(std::move(pending));
}

void MaterializationNotifier::AfterOperation(Oid self, TypeId type,
                                             FunctionId op) {
  (void)type;
  if (level_ != NotifyLevel::kInfoHiding) return;
  if (op_stack_.empty()) return;
  PendingOp pending = std::move(op_stack_.back());
  op_stack_.pop_back();
  if (pending.self != self || pending.op != op) {
    Latch(Status::Internal("operation bracket mismatch"));
    return;
  }
  if (!pending.to_invalidate.empty()) {
    ++manager_calls_;
    Latch(mgr_->Invalidate(self, pending.to_invalidate));
  }
}

const char* ProgramVersionName(ProgramVersion v) {
  switch (v) {
    case ProgramVersion::kWithoutGmr:
      return "WithoutGMR";
    case ProgramVersion::kWithGmr:
      return "WithGMR";
    case ProgramVersion::kLazy:
      return "Lazy";
    case ProgramVersion::kInfoHiding:
      return "InfoHiding";
    case ProgramVersion::kCompAction:
      return "CompAction";
  }
  return "?";
}

void ConfigureVersion(ProgramVersion v, GmrManager* mgr,
                      MaterializationNotifier* notifier) {
  switch (v) {
    case ProgramVersion::kWithoutGmr:
      break;  // no notifier installed; queries bypass the manager
    case ProgramVersion::kWithGmr:
      mgr->set_remat_strategy(RematStrategy::kImmediate);
      notifier->set_level(NotifyLevel::kObjDep);
      break;
    case ProgramVersion::kLazy:
      mgr->set_remat_strategy(RematStrategy::kLazy);
      notifier->set_level(NotifyLevel::kObjDep);
      break;
    case ProgramVersion::kInfoHiding:
      mgr->set_remat_strategy(RematStrategy::kImmediate);
      notifier->set_level(NotifyLevel::kInfoHiding);
      break;
    case ProgramVersion::kCompAction:
      mgr->set_remat_strategy(RematStrategy::kImmediate);
      notifier->set_level(NotifyLevel::kInfoHiding);
      break;
  }
}

}  // namespace gom::workload
