#include "workload/program_version.h"

#include <algorithm>

namespace gom::workload {

thread_local std::vector<MaterializationNotifier::PendingOp>
    MaterializationNotifier::op_stack_;
thread_local FidSet MaterializationNotifier::pending_elementary_compensated_;

FidSet MaterializationNotifier::IntersectObjDep(Oid oid,
                                                const FidSet& candidates) {
  ++objdep_checks_;
  FidSet out;
  auto used = om_->UsedBy(oid);
  if (!used.ok()) return out;
  for (FunctionId f : **used) {
    if (candidates.count(f)) out.insert(f);
  }
  return out;
}

Status MaterializationNotifier::BeforeElementaryUpdate(
    const ElementaryUpdate& update) {
  pending_elementary_compensated_.clear();
  if (level_ == NotifyLevel::kInfoHiding && update.operation_depth > 0) {
    return Status::Ok();  // strictly encapsulated: only the outer op notifies
  }
  // Write-ahead: the intent must be durable before the object mutates; the
  // compensating actions below and the invalidations of the matching After
  // hook all fall inside the intent…commit region. If the intent cannot be
  // made durable the update is vetoed — proceeding could lose the
  // invalidation it implies, the one failure that produces stale answers.
  GOMFM_RETURN_IF_ERROR(mgr_->LogUpdateIntent(update.oid));
  if (update.kind == ElementaryUpdate::Kind::kSetAttribute) {
    return Status::Ok();
  }
  // Compensating actions for t.insert / t.remove run before the mutation.
  FunctionId op = update.kind == ElementaryUpdate::Kind::kInsertElement
                      ? kElementInsertOp
                      : kElementRemoveOp;
  const FidSet& compensated = mgr_->deps().CompensatedFct(update.type, op);
  if (compensated.empty()) return Status::Ok();
  FidSet relevant = IntersectObjDep(update.oid, compensated);
  if (relevant.empty()) return Status::Ok();
  ++manager_calls_;
  Latch(mgr_->Compensate(update.oid, update.type, op,
                         {update.value == nullptr ? Value::Null()
                                                  : *update.value},
                         relevant));
  pending_elementary_compensated_ = std::move(relevant);
  return Status::Ok();
}

void MaterializationNotifier::AfterElementaryUpdate(
    const ElementaryUpdate& update) {
  FidSet compensated;
  compensated.swap(pending_elementary_compensated_);
  if (level_ == NotifyLevel::kInfoHiding && update.operation_depth > 0) {
    return;  // the matching Before hook logged nothing either
  }
  if (level_ == NotifyLevel::kNaive) {
    // Version 1 (Figure 4): GMR_Manager.invalidate(self) on every update.
    ++manager_calls_;
    Latch(mgr_->Invalidate(update.oid));
  } else {
    const FidSet& schema_dep =
        mgr_->deps().SchemaDepFct(update.type, PropertyOf(update));
    if (!schema_dep.empty()) {  // else: operation was never rewritten (§5.1)
      // Hand the elementary update down to the manager: with the delta
      // plane enabled, covered attribute writes are absorbed in place
      // instead of invalidating (a no-op otherwise).
      DeltaUpdate delta;
      const DeltaUpdate* delta_ptr = nullptr;
      if (update.kind == ElementaryUpdate::Kind::kSetAttribute) {
        delta = {update.type, update.attr, update.old_value, update.value};
        delta_ptr = &delta;
      }
      if (level_ == NotifyLevel::kSchemaDep) {
        ++manager_calls_;
        Latch(mgr_->Invalidate(update.oid, schema_dep, delta_ptr));
      } else {
        // §5.2 / Figure 5: RelevFct := self.ObjDepFct ∩
        // SchemaDepFct(t.set_A) (\ CompensatedFct, §5.4 insert' rewrite).
        FidSet relevant = IntersectObjDep(update.oid, schema_dep);
        for (FunctionId f : compensated) relevant.erase(f);
        if (!relevant.empty()) {
          ++manager_calls_;
          Latch(mgr_->Invalidate(update.oid, relevant, delta_ptr));
        }
      }
    }
  }
  // Close the write-ahead region *after* the invalidations so they see the
  // intent still open and do not bracket themselves a second time.
  Latch(mgr_->LogUpdateCommit(update.oid));
}

void MaterializationNotifier::AbortElementaryUpdate(
    const ElementaryUpdate& update) {
  pending_elementary_compensated_.clear();
  if (level_ == NotifyLevel::kInfoHiding && update.operation_depth > 0) {
    return;
  }
  // The object was rolled back: rematerializations logged inside the region
  // (compensating actions) describe a state that never happened.
  Latch(mgr_->LogUpdateAbort(update.oid));
}

void MaterializationNotifier::AfterCreate(Oid oid, TypeId type) {
  ++manager_calls_;
  Latch(mgr_->NewObject(oid, type));
}

Status MaterializationNotifier::BeforeDelete(Oid oid, TypeId type) {
  (void)type;
  // ForgetObject flushes a delete intent first; if that (or the maintenance
  // itself) fails, the deletion is vetoed — the object stays alive and the
  // partially dropped rows merely recompute later (over-invalidation).
  if (level_ == NotifyLevel::kNaive || level_ == NotifyLevel::kSchemaDep) {
    ++manager_calls_;
    return mgr_->ForgetObject(oid);
  }
  // Figure 5: delete' checks self.ObjDepFct ≠ {} first.
  ++objdep_checks_;
  auto used = om_->UsedBy(oid);
  if (!used.ok() || (*used)->empty()) return Status::Ok();
  ++manager_calls_;
  return mgr_->ForgetObject(oid);
}

Status MaterializationNotifier::BeforeOperation(
    Oid self, TypeId type, FunctionId op, const std::vector<Value>& args) {
  if (level_ != NotifyLevel::kInfoHiding) return Status::Ok();
  // One write-ahead region per public operation; the elementary updates it
  // encapsulates are not observed (or logged) individually. An intent that
  // cannot be made durable vetoes the whole operation.
  GOMFM_RETURN_IF_ERROR(mgr_->LogUpdateIntent(self));
  PendingOp pending{self, op, {}, {}};
  const FidSet& compensated = mgr_->deps().CompensatedFct(type, op);
  if (!compensated.empty()) {
    pending.compensated = IntersectObjDep(self, compensated);
    if (!pending.compensated.empty()) {
      ++manager_calls_;
      // The operation's arguments exclude the receiver.
      std::vector<Value> op_args(args.begin() + (args.empty() ? 0 : 1),
                                 args.end());
      Latch(mgr_->Compensate(self, type, op, op_args, pending.compensated));
    }
  }
  const FidSet& invalidated = mgr_->deps().InvalidatedFct(type, op);
  if (!invalidated.empty()) {
    pending.to_invalidate = IntersectObjDep(self, invalidated);
    for (FunctionId f : pending.compensated) pending.to_invalidate.erase(f);
  }
  op_stack_.push_back(std::move(pending));
  return Status::Ok();
}

void MaterializationNotifier::AfterOperation(Oid self, TypeId type,
                                             FunctionId op) {
  (void)type;
  if (level_ != NotifyLevel::kInfoHiding) return;
  if (!op_stack_.empty()) {
    PendingOp pending = std::move(op_stack_.back());
    op_stack_.pop_back();
    if (pending.self != self || pending.op != op) {
      Latch(Status::Internal("operation bracket mismatch"));
    } else if (!pending.to_invalidate.empty()) {
      ++manager_calls_;
      Latch(mgr_->Invalidate(self, pending.to_invalidate));
    }
  }
  Latch(mgr_->LogUpdateCommit(self));
}

const char* ProgramVersionName(ProgramVersion v) {
  switch (v) {
    case ProgramVersion::kWithoutGmr:
      return "WithoutGMR";
    case ProgramVersion::kWithGmr:
      return "WithGMR";
    case ProgramVersion::kLazy:
      return "Lazy";
    case ProgramVersion::kInfoHiding:
      return "InfoHiding";
    case ProgramVersion::kCompAction:
      return "CompAction";
  }
  return "?";
}

void ConfigureVersion(ProgramVersion v, GmrManager* mgr,
                      MaterializationNotifier* notifier) {
  switch (v) {
    case ProgramVersion::kWithoutGmr:
      break;  // no notifier installed; queries bypass the manager
    case ProgramVersion::kWithGmr:
      mgr->set_remat_strategy(RematStrategy::kImmediate);
      notifier->set_level(NotifyLevel::kObjDep);
      break;
    case ProgramVersion::kLazy:
      mgr->set_remat_strategy(RematStrategy::kLazy);
      notifier->set_level(NotifyLevel::kObjDep);
      break;
    case ProgramVersion::kInfoHiding:
      mgr->set_remat_strategy(RematStrategy::kImmediate);
      notifier->set_level(NotifyLevel::kInfoHiding);
      break;
    case ProgramVersion::kCompAction:
      mgr->set_remat_strategy(RematStrategy::kImmediate);
      notifier->set_level(NotifyLevel::kInfoHiding);
      break;
  }
}

}  // namespace gom::workload
