#ifndef GOMFM_WORKLOAD_PROGRAM_VERSION_H_
#define GOMFM_WORKLOAD_PROGRAM_VERSION_H_

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

#include "gmr/gmr_manager.h"
#include "gom/object_manager.h"

namespace gom::workload {

/// How much of §5's machinery the rewritten update operations use.
enum class NotifyLevel : uint8_t {
  /// Version 1 (Figure 4): every elementary update notifies the GMR
  /// manager, which consults the RRR for every updated object.
  kNaive,
  /// §5.1: only operations with SchemaDepFct(t.set_A) ≠ ∅ notify, passing
  /// the compiled-in candidate set.
  kSchemaDep,
  /// §5.2 (Figure 5): additionally intersect with the object's ObjDepFct;
  /// the GMR manager is invoked only when an invalidation must happen.
  kObjDep,
  /// §5.3: strictly encapsulated types invalidate through their public
  /// operations' InvalidatedFct; elementary updates inside an operation
  /// are not observed individually.
  kInfoHiding,
};

/// The `UpdateNotifier` produced by the paper's schema rewrite: it receives
/// every elementary update / operation bracket from the object manager and
/// decides — per the configured level — whether and with which candidate
/// set the GMR manager is invoked. Compensating actions (§5.4) fire from
/// the *before* hooks so they can read the pre-update state.
class MaterializationNotifier : public UpdateNotifier {
 public:
  MaterializationNotifier(GmrManager* mgr, ObjectManager* om,
                          NotifyLevel level)
      : mgr_(mgr), om_(om), level_(level) {}

  void set_level(NotifyLevel level) { level_ = level; }
  NotifyLevel level() const { return level_; }

  Status BeforeElementaryUpdate(const ElementaryUpdate& update) override;
  void AfterElementaryUpdate(const ElementaryUpdate& update) override;
  void AbortElementaryUpdate(const ElementaryUpdate& update) override;
  void AfterCreate(Oid oid, TypeId type) override;
  Status BeforeDelete(Oid oid, TypeId type) override;
  Status BeforeOperation(Oid self, TypeId type, FunctionId op,
                         const std::vector<Value>& args) override;
  void AfterOperation(Oid self, TypeId type, FunctionId op) override;

  /// Number of times the notifier ran its in-object ObjDepFct check — the
  /// small residual penalty of "innocent" updates (§5.2, Figure 10).
  uint64_t objdep_checks() const {
    return objdep_checks_.load(std::memory_order_relaxed);
  }
  /// Number of GMR-manager invocations actually made.
  uint64_t manager_calls() const {
    return manager_calls_.load(std::memory_order_relaxed);
  }
  /// The first error any hook encountered (hooks cannot propagate statuses
  /// through the object manager, so they latch here). Mutex-guarded: under
  /// sharded maintenance several writer threads share one notifier.
  Status first_error() const {
    std::lock_guard<std::mutex> lock(error_mu_);
    return first_error_;
  }

 private:
  /// AttrId key of the elementary update in SchemaDepFct's domain.
  static AttrId PropertyOf(const ElementaryUpdate& update) {
    return update.kind == ElementaryUpdate::Kind::kSetAttribute
               ? update.attr
               : kElementsOfAttr;
  }

  /// ObjDepFct(o) ∩ candidates.
  FidSet IntersectObjDep(Oid oid, const FidSet& candidates);

  void Latch(const Status& status) {
    if (status.ok()) return;
    std::lock_guard<std::mutex> lock(error_mu_);
    if (first_error_.ok()) first_error_ = status;
  }

  GmrManager* mgr_;
  ObjectManager* om_;
  NotifyLevel level_;

  /// Functions compensated by the in-flight update (subtracted from the
  /// invalidation set in the *after* hook, as in the §5.4 insert' rewrite).
  struct PendingOp {
    Oid self;
    FunctionId op;
    FidSet compensated;
    FidSet to_invalidate;
  };
  /// Bracket state is per writer thread: under the sharded maintenance
  /// plane several writers drive the same notifier concurrently, but an
  /// update's Before/After hooks always run on the thread that issued it.
  static thread_local std::vector<PendingOp> op_stack_;
  static thread_local FidSet pending_elementary_compensated_;

  std::atomic<uint64_t> objdep_checks_{0};
  std::atomic<uint64_t> manager_calls_{0};
  mutable std::mutex error_mu_;
  Status first_error_;
};

/// The benchmark program versions of §7.
enum class ProgramVersion : uint8_t {
  kWithoutGmr,   // no materialization at all
  kWithGmr,      // GMR under immediate rematerialization (ObjDep level)
  kLazy,         // GMR under lazy rematerialization (ObjDep level)
  kInfoHiding,   // GMR + strict encapsulation (immediate remat.)
  kCompAction,   // GMR + compensating actions (info-hiding level)
};

const char* ProgramVersionName(ProgramVersion v);

/// Applies a program version to a GMR manager + notifier pair: sets the
/// rematerialization strategy and notification level. (The GMRs themselves
/// are created by the benchmark; `kWithoutGmr` simply installs no notifier
/// and bypasses the manager at query time.)
void ConfigureVersion(ProgramVersion v, GmrManager* mgr,
                      MaterializationNotifier* notifier);

}  // namespace gom::workload

#endif  // GOMFM_WORKLOAD_PROGRAM_VERSION_H_
