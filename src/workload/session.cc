#include "workload/session.h"

#include "workload/driver.h"

namespace gom::workload {

Session::Session(Environment* env, SessionPool* pool, uint32_t id)
    : env_(env), pool_(pool), id_(id) {
  ctx_.clock = &clock_;
  ctx_.stats = &stats_;
  ctx_.session_id = id_;
  ctx_.concurrent = true;
}

Result<Value> Session::ForwardQuery(FunctionId f, std::vector<Value> args) {
  std::shared_lock<std::shared_mutex> gate(pool_->gate_);
  ++stats_.forward_queries;
  return env_->mgr.ForwardLookup(&ctx_, f, std::move(args));
}

Result<std::vector<std::vector<Value>>> Session::BackwardQuery(
    FunctionId f, double lo, double hi, bool lo_inclusive,
    bool hi_inclusive) {
  std::shared_lock<std::shared_mutex> gate(pool_->gate_);
  ++stats_.backward_queries;
  return env_->mgr.BackwardRange(&ctx_, f, lo, hi, lo_inclusive,
                                 hi_inclusive);
}

Session* SessionPool::CreateSession() {
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t id = static_cast<uint32_t>(sessions_.size()) + 1;
  sessions_.push_back(
      std::unique_ptr<Session>(new Session(env_, this, id)));
  return sessions_.back().get();
}

size_t SessionPool::session_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

}  // namespace gom::workload
