#include "workload/session.h"

#include "gomql/parser.h"
#include "gomql/planner.h"
#include "workload/driver.h"

namespace gom::workload {

Session::Session(Environment* env, SessionPool* pool, uint32_t id)
    : env_(env), pool_(pool), id_(id) {
  ctx_.clock = &clock_;
  ctx_.stats = &stats_;
  ctx_.session_id = id_;
  ctx_.concurrent = true;
}

Result<Value> Session::ForwardQuery(FunctionId f, std::vector<Value> args) {
  SessionPool::ReaderLock gate(pool_);
  ++stats_.forward_queries;
  return env_->mgr.ForwardLookup(&ctx_, f, std::move(args));
}

Result<std::vector<std::vector<Value>>> Session::BackwardQuery(
    FunctionId f, double lo, double hi, bool lo_inclusive,
    bool hi_inclusive) {
  SessionPool::ReaderLock gate(pool_);
  ++stats_.backward_queries;
  return env_->mgr.BackwardRange(&ctx_, f, lo, hi, lo_inclusive,
                                 hi_inclusive);
}

Result<std::vector<std::vector<Value>>> Session::RunGomql(
    const std::string& text) {
  SessionPool::WriterLock gate(pool_);
  ++stats_.gomql_queries;
  gomql::Parser parser(&env_->schema, &env_->registry);
  GOMFM_ASSIGN_OR_RETURN(gomql::ParsedQuery query, parser.Parse(text));
  gomql::Planner planner(&env_->om, &env_->interp, &env_->mgr,
                         &env_->registry);
  return planner.Run(query);
}

Result<std::string> Session::ExplainGomql(const std::string& text) {
  SessionPool::WriterLock gate(pool_);
  ++stats_.gomql_queries;
  gomql::Parser parser(&env_->schema, &env_->registry);
  GOMFM_ASSIGN_OR_RETURN(gomql::ParsedQuery query, parser.Parse(text));
  if (query.kind != gomql::ParsedQuery::Kind::kRetrieve) {
    return Status::InvalidArgument("EXPLAIN supports retrieve queries only");
  }
  gomql::Planner planner(&env_->om, &env_->interp, &env_->mgr,
                         &env_->registry);
  GOMFM_ASSIGN_OR_RETURN(gomql::Plan plan, planner.PlanRetrieve(query));
  return plan.Explain(&env_->registry);
}

Result<Value> Session::RunOperation(FunctionId op, std::vector<Value> args) {
  GOMFM_ASSIGN_OR_RETURN(const funclang::FunctionDef* def,
                         env_->registry.Get(op));
  if (def->side_effect_free) {
    return Status::InvalidArgument("RunOperation: '" + def->name +
                                   "' is side-effect-free; use a forward "
                                   "query");
  }
  SessionPool::WriterLock gate(pool_);
  ++stats_.update_ops;
  // Owner-mode invoke (no concurrent ctx): the exclusive gate makes this
  // thread the writer, so in-place repairs during invalidation are safe.
  return env_->interp.Invoke(op, std::move(args));
}

Session* SessionPool::CreateSession() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!free_.empty()) {
    Session* reused = free_.back();
    free_.pop_back();
    reused->stats_.Reset();
    reused->clock_.Reset();
    return reused;
  }
  uint32_t id = static_cast<uint32_t>(sessions_.size()) + 1;
  sessions_.push_back(
      std::unique_ptr<Session>(new Session(env_, this, id)));
  return sessions_.back().get();
}

void SessionPool::Release(Session* session) {
  if (session == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(session);
}

size_t SessionPool::session_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

size_t SessionPool::free_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_.size();
}

}  // namespace gom::workload
