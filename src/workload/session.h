#ifndef GOMFM_WORKLOAD_SESSION_H_
#define GOMFM_WORKLOAD_SESSION_H_

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/execution_context.h"
#include "common/sim_clock.h"
#include "gom/ids.h"
#include "gom/value.h"

namespace gom::workload {

struct Environment;
class SessionPool;

/// One reader session against a shared Environment. A session owns its own
/// simulated clock and statistics; every query it runs carries an
/// ExecutionContext pointing at them, so CPU charges and counters never
/// race with other sessions (page I/O still charges the environment's
/// global clock — the simulated disk is a shared device).
///
/// Sessions are created on the coordinating thread via
/// `Environment::MakeSession()` and may then be driven from one worker
/// thread each. Queries take the pool's read/write gate shared, so they
/// interleave freely with each other but never overlap an update storm.
class Session {
 public:
  Result<Value> ForwardQuery(FunctionId f, std::vector<Value> args);
  Result<std::vector<std::vector<Value>>> BackwardQuery(
      FunctionId f, double lo, double hi, bool lo_inclusive = true,
      bool hi_inclusive = true);

  /// Parses and runs one GOMql statement (retrieve or materialize).
  /// GOMql statements take the gate *exclusively*: materialize mutates the
  /// catalog, and retrieve plans execute through the owner-mode read path,
  /// whose in-place repairs (lazy rematerialization, self-healing rows)
  /// must not overlap shared-latch readers. Text queries therefore
  /// serialize against both reader sessions and update storms — the
  /// fast-path Forward/BackwardQuery above stay fully concurrent.
  Result<std::vector<std::vector<Value>>> RunGomql(const std::string& text);

  /// Plans a retrieve statement and renders the §8 EXPLAIN text (all
  /// alternatives with costs, the chosen one starred). Also exclusive:
  /// costing inspects live extension state.
  Result<std::string> ExplainGomql(const std::string& text);

  /// Invokes an update operation op(args) — a registered function that is
  /// not side-effect-free. Takes the gate *exclusively* (it is a one-call
  /// update storm): the operation mutates objects, and the invalidation /
  /// rematerialization it triggers runs on this thread in owner mode.
  /// Side-effect-free functions are rejected — reads go through
  /// ForwardQuery, which stays concurrent.
  Result<Value> RunOperation(FunctionId op, std::vector<Value> args);

  uint32_t id() const { return id_; }
  const SessionStats& stats() const { return stats_; }
  SimClock& clock() { return clock_; }
  const ExecutionContext& ctx() const { return ctx_; }

 private:
  friend class SessionPool;
  Session(Environment* env, SessionPool* pool, uint32_t id);

  Environment* env_;
  SessionPool* pool_;
  uint32_t id_;
  SimClock clock_;
  SessionStats stats_;
  ExecutionContext ctx_;
};

/// Owns the environment's sessions and the read/write gate that separates
/// reader queries from update storms: sessions hold the gate shared per
/// query, a writer takes it exclusively per storm (WriterLock). Together
/// with the component latches this gives update-storm granularity
/// equivalence — a reader observes the extension either entirely before or
/// entirely after any given storm, never mid-storm.
class SessionPool {
 public:
  explicit SessionPool(Environment* env) : env_(env) {}

  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  /// Creates a session (reusing a released one when available). Call from
  /// the coordinating thread before handing the session to its worker.
  Session* CreateSession();

  /// Returns a session to the pool for reuse by a later CreateSession().
  /// The caller must guarantee no in-flight query on it — the server calls
  /// this only after a connection's last request drained. Stats and clock
  /// are reset on reuse, not on release, so post-mortem inspection of a
  /// closed connection's counters stays possible.
  void Release(Session* session);

  size_t session_count() const;
  size_t free_count() const;

  /// RAII exclusive hold of the gate for one update storm.
  class WriterLock {
   public:
    explicit WriterLock(SessionPool* pool) : pool_(pool) {
      pool_->gate_.lock();
    }
    ~WriterLock() { pool_->gate_.unlock(); }
    WriterLock(const WriterLock&) = delete;
    WriterLock& operator=(const WriterLock&) = delete;

   private:
    SessionPool* pool_;
  };

  std::shared_mutex& gate() { return gate_; }

 private:
  friend class Session;

  Environment* env_;
  mutable std::mutex mu_;  // guards sessions_ and free_
  std::vector<std::unique_ptr<Session>> sessions_;
  std::vector<Session*> free_;  // released, awaiting reuse
  std::shared_mutex gate_;
};

}  // namespace gom::workload

#endif  // GOMFM_WORKLOAD_SESSION_H_
