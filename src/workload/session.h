#ifndef GOMFM_WORKLOAD_SESSION_H_
#define GOMFM_WORKLOAD_SESSION_H_

#include <algorithm>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/execution_context.h"
#include "common/sim_clock.h"
#include "gom/ids.h"
#include "gom/value.h"

namespace gom::workload {

struct Environment;
class SessionPool;

/// One reader session against a shared Environment. A session owns its own
/// simulated clock and statistics; every query it runs carries an
/// ExecutionContext pointing at them, so CPU charges and counters never
/// race with other sessions (page I/O still charges the environment's
/// global clock — the simulated disk is a shared device).
///
/// Sessions are created on the coordinating thread via
/// `Environment::MakeSession()` and may then be driven from one worker
/// thread each. Queries take every shard gate shared (in index order), so
/// they interleave freely with each other but never overlap an update storm
/// on any shard.
class Session {
 public:
  Result<Value> ForwardQuery(FunctionId f, std::vector<Value> args);
  Result<std::vector<std::vector<Value>>> BackwardQuery(
      FunctionId f, double lo, double hi, bool lo_inclusive = true,
      bool hi_inclusive = true);

  /// Parses and runs one GOMql statement (retrieve or materialize).
  /// GOMql statements take the gates *exclusively*: materialize mutates the
  /// catalog, and retrieve plans execute through the owner-mode read path,
  /// whose in-place repairs (lazy rematerialization, self-healing rows)
  /// must not overlap shared-latch readers. Text queries therefore
  /// serialize against both reader sessions and update storms — the
  /// fast-path Forward/BackwardQuery above stay fully concurrent.
  Result<std::vector<std::vector<Value>>> RunGomql(const std::string& text);

  /// Plans a retrieve statement and renders the §8 EXPLAIN text (all
  /// alternatives with costs, the chosen one starred). Also exclusive:
  /// costing inspects live extension state.
  Result<std::string> ExplainGomql(const std::string& text);

  /// Invokes an update operation op(args) — a registered function that is
  /// not side-effect-free. Takes the gates *exclusively* (it is a one-call
  /// update storm): the operation mutates objects, and the invalidation /
  /// rematerialization it triggers runs on this thread in owner mode. (All
  /// gates, not one shard's — a general operation may touch objects of any
  /// shard.) Side-effect-free functions are rejected — reads go through
  /// ForwardQuery, which stays concurrent.
  Result<Value> RunOperation(FunctionId op, std::vector<Value> args);

  uint32_t id() const { return id_; }
  const SessionStats& stats() const { return stats_; }
  SimClock& clock() { return clock_; }
  const ExecutionContext& ctx() const { return ctx_; }

 private:
  friend class SessionPool;
  Session(Environment* env, SessionPool* pool, uint32_t id);

  Environment* env_;
  SessionPool* pool_;
  uint32_t id_;
  SimClock clock_;
  SessionStats stats_;
  ExecutionContext ctx_;
};

/// Owns the environment's sessions and the read/write gates that separate
/// reader queries from update storms. Unsharded there is one gate; a
/// sharded environment has one gate per maintenance plane, so update storms
/// confined to disjoint shard sets hold disjoint gates and proceed in
/// parallel. Sessions hold *every* gate shared per query, a writer takes
/// its shard set exclusively per storm (WriterLock); all acquisition is in
/// ascending gate index, which makes deadlock impossible. Together with the
/// component latches this gives update-storm granularity equivalence — a
/// reader observes the extension either entirely before or entirely after
/// any given storm, never mid-storm.
class SessionPool {
 public:
  /// `shard_gates` is the environment's maintenance-plane count (clamped to
  /// ≥ 1); pass 1 for the classic single writer-exclusive gate.
  explicit SessionPool(Environment* env, size_t shard_gates = 1)
      : env_(env) {
    if (shard_gates == 0) shard_gates = 1;
    gates_.reserve(shard_gates);
    for (size_t s = 0; s < shard_gates; ++s) {
      gates_.push_back(std::make_unique<std::shared_mutex>());
    }
  }

  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  /// Creates a session (reusing a released one when available). Call from
  /// the coordinating thread before handing the session to its worker.
  Session* CreateSession();

  /// Returns a session to the pool for reuse by a later CreateSession().
  /// The caller must guarantee no in-flight query on it — the server calls
  /// this only after a connection's last request drained. Stats and clock
  /// are reset on reuse, not on release, so post-mortem inspection of a
  /// closed connection's counters stays possible.
  void Release(Session* session);

  size_t session_count() const;
  size_t free_count() const;

  /// RAII exclusive hold of gates for one update storm. The default
  /// constructor takes every gate (the classic global storm); the shard-set
  /// constructor takes only the named shards' gates, so storms on disjoint
  /// sets run concurrently. Either way gates lock in ascending index order.
  class WriterLock {
   public:
    explicit WriterLock(SessionPool* pool) : pool_(pool) {
      held_.reserve(pool_->gates_.size());
      for (size_t s = 0; s < pool_->gates_.size(); ++s) held_.push_back(s);
      for (size_t s : held_) pool_->gates_[s]->lock();
    }
    WriterLock(SessionPool* pool, std::vector<size_t> shards)
        : pool_(pool), held_(std::move(shards)) {
      std::sort(held_.begin(), held_.end());
      held_.erase(std::unique(held_.begin(), held_.end()), held_.end());
      for (size_t s : held_) pool_->gates_[s]->lock();
    }
    ~WriterLock() {
      for (size_t i = held_.size(); i-- > 0;) pool_->gates_[held_[i]]->unlock();
    }
    WriterLock(const WriterLock&) = delete;
    WriterLock& operator=(const WriterLock&) = delete;

   private:
    SessionPool* pool_;
    std::vector<size_t> held_;  // ascending, deduplicated
  };

  /// RAII shared hold of every gate (reader side; ascending order).
  class ReaderLock {
   public:
    explicit ReaderLock(SessionPool* pool) : pool_(pool) {
      for (auto& g : pool_->gates_) g->lock_shared();
    }
    ~ReaderLock() {
      for (size_t i = pool_->gates_.size(); i-- > 0;) {
        pool_->gates_[i]->unlock_shared();
      }
    }
    ReaderLock(const ReaderLock&) = delete;
    ReaderLock& operator=(const ReaderLock&) = delete;

   private:
    SessionPool* pool_;
  };

  /// The classic single gate (gate 0). External coordinators built before
  /// sharding (replication, server) run single-gate environments, where
  /// this *is* the writer-exclusive gate.
  std::shared_mutex& gate() { return *gates_[0]; }
  std::shared_mutex& gate_at(size_t shard) { return *gates_[shard]; }
  size_t gate_count() const { return gates_.size(); }

 private:
  friend class Session;

  Environment* env_;
  mutable std::mutex mu_;  // guards sessions_ and free_
  std::vector<std::unique_ptr<Session>> sessions_;
  std::vector<Session*> free_;  // released, awaiting reuse
  std::vector<std::unique_ptr<std::shared_mutex>> gates_;
};

}  // namespace gom::workload

#endif  // GOMFM_WORKLOAD_SESSION_H_
