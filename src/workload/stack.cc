#include "workload/stack.h"

namespace gom::workload {

Status PopulateCuboids(ObjectManager* om, const CuboidSchema& geo,
                       size_t num_cuboids, uint64_t seed,
                       std::vector<Oid>* out) {
  Rng rng(seed);
  GOMFM_ASSIGN_OR_RETURN(Oid iron, geo.MakeMaterial(om, "Iron", 7.86));
  out->reserve(out->size() + num_cuboids);
  for (size_t i = 0; i < num_cuboids; ++i) {
    GOMFM_ASSIGN_OR_RETURN(
        Oid c, geo.MakeCuboid(om, rng.UniformDouble(1, 20),
                              rng.UniformDouble(1, 20),
                              rng.UniformDouble(1, 20), iron));
    out->push_back(c);
  }
  return Status::Ok();
}

GmrSpec VolumeSpec(const CuboidSchema& geo) {
  GmrSpec spec;
  spec.name = "volume";
  spec.arg_types = {TypeRef::Object(geo.cuboid)};
  spec.functions = {geo.volume};
  return spec;
}

CompanyStack::CompanyStack(const StackOptions& opts)
    : env(opts.buffer_pages, opts.gmr, opts.storage) {
  setup = [&]() -> Status {
    GOMFM_ASSIGN_OR_RETURN(geo,
                           CuboidSchema::Declare(&env.schema, &env.registry));
    if (opts.num_cuboids > 0) {
      GOMFM_RETURN_IF_ERROR(PopulateCuboids(&env.om, geo, opts.num_cuboids,
                                            opts.seed, &cuboids));
    }
    if (opts.materialize_volume) {
      GOMFM_ASSIGN_OR_RETURN(volume_gmr, env.mgr.Materialize(VolumeSpec(geo)));
    }
    if (opts.notify) {
      env.InstallNotifier(NotifyLevel::kObjDep);
    }
    return Status::Ok();
  }();
}

std::unique_ptr<CompanyStack> MakeCompanyStack(const StackOptions& opts) {
  return std::make_unique<CompanyStack>(opts);
}

}  // namespace gom::workload
