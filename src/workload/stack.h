#ifndef GOMFM_WORKLOAD_STACK_H_
#define GOMFM_WORKLOAD_STACK_H_

#include <memory>
#include <vector>

#include "workload/cuboid_schema.h"
#include "workload/driver.h"

namespace gom::workload {

/// Options for MakeCompanyStack().
struct StackOptions {
  size_t buffer_pages = 150;
  GmrManagerOptions gmr;
  StorageOptions storage;
  /// Cuboids to populate (0 leaves the base empty). The population is the
  /// harnesses' standard one: one "Iron" material (density 7.86) and
  /// `num_cuboids` cuboids with edge lengths uniform in [1, 20).
  size_t num_cuboids = 0;
  uint64_t seed = 97;
  /// Materialize ⟨⟨volume⟩⟩ over the cuboid extension.
  bool materialize_volume = false;
  /// Install the ObjDep notifier (with call interception).
  bool notify = false;
};

/// The standard benchmark/test stack over one Environment: the §7.1 cuboid
/// base with its schema declared, optionally populated, with ⟨⟨volume⟩⟩
/// materialized and the update notifier installed. Replaces the
/// hand-rolled Environment + schema + notifier boilerplate the harnesses
/// used to duplicate.
struct CompanyStack {
  explicit CompanyStack(const StackOptions& opts);

  Environment env;
  CuboidSchema geo;
  std::vector<Oid> cuboids;
  GmrId volume_gmr = kInvalidGmrId;
  Status setup = Status::Ok();  // first error during population, if any
};

std::unique_ptr<CompanyStack> MakeCompanyStack(const StackOptions& opts = {});

/// Population piece alone, for rigs that own their stack differently (the
/// recovery harness rebuilds its GMR manager mid-run and cannot use
/// Environment).
Status PopulateCuboids(ObjectManager* om, const CuboidSchema& geo,
                       size_t num_cuboids, uint64_t seed,
                       std::vector<Oid>* out);

/// The ⟨⟨volume⟩⟩ spec over the cuboid extension.
GmrSpec VolumeSpec(const CuboidSchema& geo);

}  // namespace gom::workload

#endif  // GOMFM_WORKLOAD_STACK_H_
