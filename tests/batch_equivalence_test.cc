// Property tests for batched invalidation (GmrManager::UpdateBatch):
// running a random update/query mix inside batches must leave the system in
// the same state as running it under plain immediate rematerialization —
// same GMR extension, same RRR, same row churn, same query answers — while
// performing at most as many (and for storms strictly fewer)
// rematerializations.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "test_env.h"

namespace gom {
namespace {

constexpr size_t kNumCuboids = 60;

struct Fixture {
  Fixture() {
    Rng rng(5);
    iron = *env.geo.MakeMaterial(&env.om, "Iron", 7.86);
    for (size_t i = 0; i < kNumCuboids; ++i) {
      cuboids.push_back(*env.geo.MakeCuboid(&env.om, rng.UniformDouble(1, 20),
                                            rng.UniformDouble(1, 20),
                                            rng.UniformDouble(1, 20), iron));
    }
    GmrSpec spec;
    spec.name = "volume";
    spec.arg_types = {TypeRef::Object(env.geo.cuboid)};
    spec.functions = {env.geo.volume};
    gmr = *env.mgr.Materialize(spec);
    env.InstallNotifier(workload::NotifyLevel::kObjDep);
  }

  TestEnv env;
  Oid iron;
  std::vector<Oid> cuboids;
  GmrId gmr = kInvalidGmrId;
};

/// Applies `steps` random operations. Both runs of a comparison call this
/// with the same seed, so every Rng draw — including the ones for skipped
/// operations — happens identically; only the batching differs.
Status RunMix(Fixture* fx, uint64_t seed, size_t steps, size_t batch_chunk,
              bool with_deletes, std::vector<std::string>* query_log) {
  static const char* kVertices[] = {"V1", "V2", "V3", "V4"};
  static const char* kCoords[] = {"X", "Y", "Z"};
  Rng rng(seed);
  std::set<size_t> deleted;

  size_t step = 0;
  while (step < steps) {
    size_t chunk = std::min(batch_chunk, steps - step);
    std::unique_ptr<GmrManager::UpdateBatch> batch;
    if (batch_chunk > 1) {
      batch = std::make_unique<GmrManager::UpdateBatch>(&fx->env.mgr);
    }
    for (size_t i = 0; i < chunk; ++i, ++step) {
      double pick = rng.UniformDouble(0, 1);
      size_t idx = rng.UniformInt(0, fx->cuboids.size() - 1);
      Oid c = fx->cuboids[idx];
      bool alive = deleted.count(idx) == 0;
      if (pick < 0.40) {
        // Relevant write: vertex coordinate ∈ RelAttr(volume).
        const char* vertex = kVertices[rng.UniformInt(0, 3)];
        const char* coord = kCoords[rng.UniformInt(0, 2)];
        double v = rng.UniformDouble(0, 10);
        if (!alive) continue;
        Oid vo = fx->env.om.GetAttribute(c, vertex)->as_ref();
        GOMFM_RETURN_IF_ERROR(
            fx->env.om.SetAttribute(vo, coord, Value::Float(v)));
      } else if (pick < 0.55) {
        // Irrelevant write: set_Value is outside RelAttr(volume).
        double v = rng.UniformDouble(0, 100);
        if (!alive) continue;
        GOMFM_RETURN_IF_ERROR(
            fx->env.om.SetAttribute(c, "Value", Value::Float(v)));
      } else if (pick < 0.75) {
        // Forward query — mid-batch lookups must see the same answers too.
        auto v = fx->env.mgr.ForwardLookup(fx->env.geo.volume,
                                           {Value::Ref(c)});
        query_log->push_back(v.ok() ? v->ToString() : v.status().ToString());
      } else if (pick < 0.88) {
        // Update storm on one object: several relevant writes in a row —
        // the batch should coalesce these into one recomputation.
        const char* vertex = kVertices[rng.UniformInt(0, 3)];
        double a = rng.UniformDouble(0, 10);
        double b = rng.UniformDouble(0, 10);
        double d = rng.UniformDouble(0, 10);
        if (!alive) continue;
        Oid vo = fx->env.om.GetAttribute(c, vertex)->as_ref();
        GOMFM_RETURN_IF_ERROR(fx->env.om.SetAttribute(vo, "X",
                                                      Value::Float(a)));
        GOMFM_RETURN_IF_ERROR(fx->env.om.SetAttribute(vo, "Y",
                                                      Value::Float(b)));
        GOMFM_RETURN_IF_ERROR(fx->env.om.SetAttribute(vo, "Z",
                                                      Value::Float(d)));
      } else {
        if (!with_deletes || !alive || deleted.size() + 5 >= kNumCuboids) {
          continue;
        }
        deleted.insert(idx);
        GOMFM_RETURN_IF_ERROR(fx->env.om.Delete(c));
      }
    }
    if (batch != nullptr) GOMFM_RETURN_IF_ERROR(batch->Commit());
  }
  return Status::Ok();
}

/// Canonical sorted dump of the GMR extension: args, results and validity.
std::vector<std::string> ExtensionDump(Fixture* fx) {
  Gmr* gmr = *fx->env.mgr.Get(fx->gmr);
  std::vector<std::string> rows;
  gmr->ForEachRow([&](RowId, const Gmr::Row& row) {
    std::string line;
    for (const Value& a : row.args) line += a.ToString() + "|";
    line += "->";
    for (size_t i = 0; i < row.results.size(); ++i) {
      line += row.valid[i] ? row.results[i].ToString() : "<invalid>";
      line += "|";
    }
    rows.push_back(std::move(line));
    return true;
  });
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::string EntryString(const Rrr::Entry& e) {
  std::string line = e.object.ToString() + "/" + std::to_string(e.function);
  for (const Value& a : e.args) line += "/" + a.ToString();
  return line;
}

/// Sorted dump of the RRR. With `live_rows_only`, entries whose argument
/// combination has no GMR row with a *valid* result are skipped: deleting
/// an object mid-run leaves behind garbage reverse references (blind
/// references, §4.2) — and a complete GMR may even self-heal a forever-
/// invalid row when the deleted combination is queried again — whose exact
/// set legitimately differs between a batch that never flushes the removed
/// row and the immediate strategy. Neither kind is observable by any later
/// operation.
std::vector<std::string> RrrDump(Fixture* fx, bool live_rows_only) {
  Gmr* gmr = *fx->env.mgr.Get(fx->gmr);
  std::vector<std::string> lines;
  for (const Rrr::Entry& e : fx->env.mgr.rrr().AllEntries()) {
    if (live_rows_only) {
      auto row = gmr->FindRow(e.args);
      if (!row.ok()) continue;
      const Gmr::Row* r = *gmr->Get(*row);
      auto idx = gmr->FunctionIndex(e.function);
      if (!idx.ok() || !r->valid[*idx]) continue;
    }
    lines.push_back(EntryString(e));
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

class BatchEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchEquivalenceTest, RandomMixMatchesImmediate) {
  const uint64_t seed = GetParam();
  Fixture immediate;
  std::vector<std::string> immediate_queries;
  ASSERT_TRUE(RunMix(&immediate, seed, 400, /*batch_chunk=*/1,
                     /*with_deletes=*/false, &immediate_queries)
                  .ok());

  Fixture batched;
  std::vector<std::string> batched_queries;
  ASSERT_TRUE(RunMix(&batched, seed, 400, /*batch_chunk=*/16,
                     /*with_deletes=*/false, &batched_queries)
                  .ok());

  EXPECT_EQ(ExtensionDump(&immediate), ExtensionDump(&batched));
  EXPECT_EQ(RrrDump(&immediate, false), RrrDump(&batched, false));
  EXPECT_EQ(immediate_queries, batched_queries);

  const auto& si = immediate.env.mgr.stats();
  const auto& sb = batched.env.mgr.stats();
  EXPECT_EQ(si.rows_created, sb.rows_created);
  EXPECT_EQ(si.rows_removed, sb.rows_removed);
  EXPECT_LE(sb.rematerializations, si.rematerializations);
  EXPECT_GT(sb.batch_flushes, 0u);
}

TEST_P(BatchEquivalenceTest, MixWithDeletesMatchesImmediate) {
  const uint64_t seed = GetParam() + 1000;
  Fixture immediate;
  std::vector<std::string> immediate_queries;
  ASSERT_TRUE(RunMix(&immediate, seed, 400, /*batch_chunk=*/1,
                     /*with_deletes=*/true, &immediate_queries)
                  .ok());

  Fixture batched;
  std::vector<std::string> batched_queries;
  ASSERT_TRUE(RunMix(&batched, seed, 400, /*batch_chunk=*/16,
                     /*with_deletes=*/true, &batched_queries)
                  .ok());

  EXPECT_EQ(ExtensionDump(&immediate), ExtensionDump(&batched));
  EXPECT_EQ(RrrDump(&immediate, true), RrrDump(&batched, true));
  EXPECT_EQ(immediate_queries, batched_queries);

  const auto& si = immediate.env.mgr.stats();
  const auto& sb = batched.env.mgr.stats();
  EXPECT_EQ(si.rows_created, sb.rows_created);
  EXPECT_EQ(si.rows_removed, sb.rows_removed);
  EXPECT_LE(sb.rematerializations, si.rematerializations);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchEquivalenceTest,
                         ::testing::Values(7, 77, 777));

TEST(BatchBehaviorTest, StormCoalescesToStrictlyFewerRematerializations) {
  // Three write rounds over the four vertices volume actually reads
  // (length = |V1V2|, width = |V1V4|, height = |V1V5|).
  static const char* kRelevantVertices[] = {"V1", "V2", "V4", "V5"};
  auto storm = [](Fixture* fx, bool batched) {
    std::unique_ptr<GmrManager::UpdateBatch> batch;
    if (batched) batch = std::make_unique<GmrManager::UpdateBatch>(&fx->env.mgr);
    Oid c = fx->cuboids[0];
    for (int round = 0; round < 3; ++round) {
      for (const char* vertex : kRelevantVertices) {
        Oid vo = fx->env.om.GetAttribute(c, vertex)->as_ref();
        ASSERT_TRUE(
            fx->env.om.SetAttribute(vo, "X", Value::Float(round + 1.0)).ok());
      }
    }
    if (batch != nullptr) ASSERT_TRUE(batch->Commit().ok());
  };

  Fixture immediate;
  uint64_t before = immediate.env.mgr.stats().rematerializations;
  storm(&immediate, false);
  uint64_t immediate_remats =
      immediate.env.mgr.stats().rematerializations - before;

  Fixture batched;
  before = batched.env.mgr.stats().rematerializations;
  storm(&batched, true);
  uint64_t batched_remats =
      batched.env.mgr.stats().rematerializations - before;

  // 12 relevant writes to one cuboid: immediate recomputes volume every
  // time; the batch recomputes it exactly once. The first write consumes
  // each vertex's reverse reference, so the first round yields one batch
  // record plus three dedup hits and the later rounds don't re-trigger.
  EXPECT_EQ(immediate_remats, 12u);
  EXPECT_EQ(batched_remats, 1u);
  EXPECT_EQ(batched.env.mgr.stats().batch_records, 1u);
  EXPECT_EQ(batched.env.mgr.stats().batch_dedup_hits, 3u);

  // And both end on the same value.
  auto vi = immediate.env.mgr.ForwardLookup(immediate.env.geo.volume,
                                            {Value::Ref(immediate.cuboids[0])});
  auto vb = batched.env.mgr.ForwardLookup(batched.env.geo.volume,
                                          {Value::Ref(batched.cuboids[0])});
  ASSERT_TRUE(vi.ok() && vb.ok());
  EXPECT_EQ(vi->ToString(), vb->ToString());
}

TEST(BatchBehaviorTest, NestedBatchesFlushAtOutermostCommit) {
  Fixture fx;
  uint64_t before = fx.env.mgr.stats().rematerializations;
  {
    GmrManager::UpdateBatch outer(&fx.env.mgr);
    {
      GmrManager::UpdateBatch inner(&fx.env.mgr);
      Oid v1 = fx.env.om.GetAttribute(fx.cuboids[0], "V1")->as_ref();
      ASSERT_TRUE(fx.env.om.SetAttribute(v1, "X", Value::Float(3.5)).ok());
      ASSERT_TRUE(inner.Commit().ok());
    }
    // Inner commit must not flush while the outer batch is open.
    EXPECT_EQ(fx.env.mgr.stats().rematerializations, before);
    EXPECT_TRUE(fx.env.mgr.InBatch());
    ASSERT_TRUE(outer.Commit().ok());
  }
  EXPECT_EQ(fx.env.mgr.stats().rematerializations, before + 1);
  EXPECT_FALSE(fx.env.mgr.InBatch());
}

TEST(BatchBehaviorTest, EndBatchWithoutBeginFails) {
  Fixture fx;
  EXPECT_FALSE(fx.env.mgr.EndBatch().ok());
}

TEST(BatchBehaviorTest, DestructorFlushesUncommittedBatch) {
  Fixture fx;
  uint64_t before = fx.env.mgr.stats().rematerializations;
  {
    GmrManager::UpdateBatch batch(&fx.env.mgr);
    Oid v1 = fx.env.om.GetAttribute(fx.cuboids[0], "V1")->as_ref();
    ASSERT_TRUE(fx.env.om.SetAttribute(v1, "X", Value::Float(9.0)).ok());
    // No Commit(): the guard must still close the batch on scope exit.
  }
  EXPECT_FALSE(fx.env.mgr.InBatch());
  EXPECT_EQ(fx.env.mgr.stats().rematerializations, before + 1);
}

TEST(BatchBehaviorTest, LazyStrategyIgnoresBatches) {
  GmrManagerOptions options;
  options.remat = RematStrategy::kLazy;
  TestEnv env(150, options);
  Oid iron = *env.geo.MakeMaterial(&env.om, "Iron", 7.86);
  Oid c = *env.geo.MakeCuboid(&env.om, 2, 3, 4, iron);
  GmrSpec spec;
  spec.name = "volume";
  spec.arg_types = {TypeRef::Object(env.geo.cuboid)};
  spec.functions = {env.geo.volume};
  ASSERT_TRUE(env.mgr.Materialize(spec).ok());
  env.InstallNotifier(workload::NotifyLevel::kObjDep);

  uint64_t before = env.mgr.stats().rematerializations;
  {
    GmrManager::UpdateBatch batch(&env.mgr);
    Oid v1 = env.om.GetAttribute(c, "V1")->as_ref();
    ASSERT_TRUE(env.om.SetAttribute(v1, "X", Value::Float(5.0)).ok());
    ASSERT_TRUE(batch.Commit().ok());
  }
  // Lazy invalidation stays lazy: nothing recomputes at commit, the next
  // forward lookup does.
  EXPECT_EQ(env.mgr.stats().rematerializations, before);
  EXPECT_EQ(env.mgr.stats().batch_records, 0u);
  auto v = env.mgr.ForwardLookup(env.geo.volume, {Value::Ref(c)});
  ASSERT_TRUE(v.ok());
  EXPECT_GT(env.mgr.stats().rematerializations, before);
}

}  // namespace
}  // namespace gom
