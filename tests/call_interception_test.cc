#include <gtest/gtest.h>

#include "test_env.h"

namespace gom {
namespace {

using workload::NotifyLevel;

/// §3.2: invocations of materialized functions inside other functions are
/// mapped to forward queries against the GMR.
class CallInterceptionTest : public ::testing::Test {
 protected:
  CallInterceptionTest() {
    iron_ = *env_.geo.MakeMaterial(&env_.om, "Iron", 7.86);
    c_ = *env_.geo.MakeCuboid(&env_.om, 10, 6, 5, iron_);
    GmrSpec spec;
    spec.name = "volume";
    spec.arg_types = {TypeRef::Object(env_.geo.cuboid)};
    spec.functions = {env_.geo.volume};
    gmr_id_ = *env_.mgr.Materialize(spec);
    env_.InstallNotifier(NotifyLevel::kObjDep);
    env_.mgr.InstallCallInterception();
  }

  TestEnv env_;
  Oid iron_, c_;
  GmrId gmr_id_ = kInvalidGmrId;
};

TEST_F(CallInterceptionTest, NestedInvocationHitsTheGmr) {
  env_.mgr.ResetStats();
  // weight calls volume; the nested call must be answered from the GMR
  // instead of re-evaluating length·width·height.
  auto w = env_.interp.Invoke(env_.geo.weight, {Value::Ref(c_)});
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  EXPECT_DOUBLE_EQ(w->as_float(), 300.0 * 7.86);
  EXPECT_EQ(env_.mgr.stats().forward_hits, 1u);
  EXPECT_EQ(env_.mgr.stats().rematerializations, 0u);
}

TEST_F(CallInterceptionTest, TracedRunsEvaluateTheRealBody) {
  // A traced run is a (re)materialization: it must touch the actual
  // objects so the RRR stays complete — no interception.
  env_.mgr.ResetStats();
  funclang::Trace trace;
  auto w = env_.interp.Invoke(env_.geo.weight, {Value::Ref(c_)}, &trace);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(env_.mgr.stats().forward_hits, 0u);
  // The vertices were accessed (through the real volume evaluation).
  EXPECT_GT(trace.accessed_objects.size(), 2u);
}

TEST_F(CallInterceptionTest, InterceptionRecomputesInvalidResultsSafely) {
  // Invalidate the volume lazily, then evaluate weight: the nested volume
  // call triggers a ForwardLookup, which recomputes and re-caches — no
  // infinite recursion through the interceptor.
  env_.mgr.set_remat_strategy(RematStrategy::kLazy);
  auto vertices = *env_.geo.VerticesOf(&env_.om, c_);
  ASSERT_TRUE(env_.om.SetAttribute(vertices[1], "X", Value::Float(20)).ok());
  Gmr* gmr = *env_.mgr.Get(gmr_id_);
  ASSERT_FALSE((*gmr->Get(*gmr->FindRow({Value::Ref(c_)})))->valid[0]);

  auto w = env_.interp.Invoke(env_.geo.weight, {Value::Ref(c_)});
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  EXPECT_DOUBLE_EQ(w->as_float(), 600.0 * 7.86);
  EXPECT_TRUE((*gmr->Get(*gmr->FindRow({Value::Ref(c_)})))->valid[0]);
}

TEST_F(CallInterceptionTest, TopLevelInvocationIsNotIntercepted) {
  // Depth-0 invocations are the caller's explicit choice (e.g. the
  // WithoutGMR executor path); they evaluate the body.
  env_.mgr.ResetStats();
  auto v = env_.interp.Invoke(env_.geo.volume, {Value::Ref(c_)});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(env_.mgr.stats().forward_hits, 0u);
}

TEST_F(CallInterceptionTest, AggregateOverMaterializedFunction) {
  // total_volume sums volume over a set: with interception the per-element
  // volume calls are forward queries.
  Oid set = *env_.om.CreateCollection(env_.geo.workpieces);
  Oid c2 = *env_.geo.MakeCuboid(&env_.om, 2, 2, 2, iron_);
  ASSERT_TRUE(env_.om.InsertElement(set, Value::Ref(c_)).ok());
  ASSERT_TRUE(env_.om.InsertElement(set, Value::Ref(c2)).ok());
  env_.mgr.ResetStats();
  auto total = env_.interp.Invoke(env_.geo.total_volume, {Value::Ref(set)});
  ASSERT_TRUE(total.ok());
  EXPECT_DOUBLE_EQ(total->as_float(), 308.0);
  EXPECT_EQ(env_.mgr.stats().forward_hits, 2u);
}

}  // namespace
}  // namespace gom
