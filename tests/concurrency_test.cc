// Concurrent-equivalence property tests: reader sessions racing an update
// storm must observe only values the single-threaded execution could have
// produced. A twin environment driven through the identical storm sequence
// serves as the oracle — after each storm it records every cuboid's
// volume, and the union of those per-storm snapshots is the complete set
// of legal observations (the session gate serializes readers against whole
// storms, so a reader always sees some storm-prefix state, never a
// mid-storm one).
//
// These tests are the payload of the TSan CI job: four reader threads
// overlap each other on the shared-latch read path while the writer
// exercises the exclusive maintenance plane.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "workload/session.h"
#include "workload/stack.h"

namespace gom {
namespace {

using workload::CompanyStack;
using workload::Session;
using workload::SessionPool;
using workload::StackOptions;

constexpr size_t kNumCuboids = 60;
constexpr size_t kStorms = 25;
constexpr size_t kWritesPerStorm = 6;
constexpr size_t kReaders = 4;
constexpr size_t kQueriesPerReader = 400;

StackOptions TestStack() {
  StackOptions opts;
  opts.buffer_pages = 512;
  opts.num_cuboids = kNumCuboids;
  opts.seed = 41;
  opts.materialize_volume = true;
  opts.notify = true;
  return opts;
}

/// One update storm, identical for the live and oracle environments:
/// deterministic vertex writes under a maintenance batch. The caller's Rng
/// carries the storm sequence, so replaying storms 0..k on a twin stack
/// reproduces the exact extension state after storm k.
Status ApplyStorm(CompanyStack& s, Rng& rng) {
  static const char* kCoords[] = {"X", "Y", "Z"};
  GmrManager::UpdateBatch batch(&s.env.mgr);
  for (size_t i = 0; i < kWritesPerStorm; ++i) {
    Oid c = s.cuboids[rng.UniformInt(0, s.cuboids.size() - 1)];
    GOMFM_ASSIGN_OR_RETURN(std::vector<Oid> vertices,
                           s.geo.VerticesOf(&s.env.om, c));
    GOMFM_RETURN_IF_ERROR(s.env.om.SetAttribute(
        vertices[rng.UniformInt(1, 3)], kCoords[rng.UniformInt(0, 2)],
        Value::Float(rng.UniformDouble(1, 15))));
  }
  return batch.Commit();
}

TEST(ConcurrencyTest, ReadersObserveOnlyOracleStates) {
  // Oracle pass: single-threaded, records the legal volume set per cuboid
  // across every storm prefix.
  auto oracle = workload::MakeCompanyStack(TestStack());
  ASSERT_TRUE(oracle->setup.ok()) << oracle->setup.ToString();
  std::vector<std::set<double>> allowed(kNumCuboids);
  auto snapshot = [&](CompanyStack& s) {
    for (size_t i = 0; i < s.cuboids.size(); ++i) {
      auto v = s.env.mgr.ForwardLookup(s.geo.volume,
                                       {Value::Ref(s.cuboids[i])});
      ASSERT_TRUE(v.ok()) << v.status().ToString();
      allowed[i].insert(*v->AsDouble());
    }
  };
  {
    Rng storms(7);
    snapshot(*oracle);
    for (size_t k = 0; k < kStorms; ++k) {
      ASSERT_TRUE(ApplyStorm(*oracle, storms).ok());
      snapshot(*oracle);
    }
  }

  // Live pass: identical storms on a twin stack, now with reader threads
  // racing the writer through the session gate.
  auto live = workload::MakeCompanyStack(TestStack());
  ASSERT_TRUE(live->setup.ok()) << live->setup.ToString();
  CompanyStack& s = *live;

  std::vector<Session*> sessions;
  for (size_t t = 0; t < kReaders; ++t) sessions.push_back(s.env.MakeSession());

  struct Observation {
    size_t cuboid;
    double volume;
  };
  std::vector<std::vector<Observation>> observed(kReaders);
  std::atomic<bool> go{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t]() {
      Session* session = sessions[t];
      observed[t].reserve(kQueriesPerReader);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (size_t i = 0; i < kQueriesPerReader; ++i) {
        size_t idx = (t * 131 + i * 17) % kNumCuboids;
        auto v = session->ForwardQuery(s.geo.volume,
                                       {Value::Ref(s.cuboids[idx])});
        if (!v.ok() || !v->is_numeric()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        observed[t].push_back({idx, *v->AsDouble()});
      }
    });
  }

  go.store(true, std::memory_order_release);
  {
    Rng storms(7);
    for (size_t k = 0; k < kStorms; ++k) {
      Status st;
      {
        SessionPool::WriterLock lock(s.env.session_pool.get());
        st = ApplyStorm(s, storms);
      }
      ASSERT_TRUE(st.ok()) << st.ToString();
      std::this_thread::yield();  // let readers interleave between storms
    }
  }
  for (auto& r : readers) r.join();

  EXPECT_EQ(failures.load(), 0);
  size_t total = 0;
  for (size_t t = 0; t < kReaders; ++t) {
    for (const Observation& o : observed[t]) {
      ASSERT_TRUE(allowed[o.cuboid].count(o.volume) != 0)
          << "reader " << t << " saw volume " << o.volume << " for cuboid "
          << o.cuboid << " — not any storm-prefix state";
      ++total;
    }
  }
  EXPECT_EQ(total, kReaders * kQueriesPerReader);

  // The live stack ends in the same final state as the oracle.
  for (size_t i = 0; i < kNumCuboids; ++i) {
    auto lv =
        s.env.mgr.ForwardLookup(s.geo.volume, {Value::Ref(s.cuboids[i])});
    auto ov = oracle->env.mgr.ForwardLookup(oracle->geo.volume,
                                            {Value::Ref(oracle->cuboids[i])});
    ASSERT_TRUE(lv.ok() && ov.ok());
    EXPECT_DOUBLE_EQ(lv->as_float(), ov->as_float()) << "cuboid " << i;
  }
}

TEST(ConcurrencyTest, ParallelReadersAgreeWithQuiescentState) {
  auto stack = workload::MakeCompanyStack(TestStack());
  ASSERT_TRUE(stack->setup.ok()) << stack->setup.ToString();
  CompanyStack& s = *stack;

  std::vector<double> expected(s.cuboids.size());
  for (size_t i = 0; i < s.cuboids.size(); ++i) {
    auto v =
        s.env.mgr.ForwardLookup(s.geo.volume, {Value::Ref(s.cuboids[i])});
    ASSERT_TRUE(v.ok());
    expected[i] = *v->AsDouble();
  }

  std::vector<Session*> sessions;
  for (size_t t = 0; t < kReaders; ++t) sessions.push_back(s.env.MakeSession());
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t]() {
      Session* session = sessions[t];
      for (size_t i = 0; i < kQueriesPerReader; ++i) {
        size_t idx = (t * 7919 + i) % s.cuboids.size();
        auto v = session->ForwardQuery(s.geo.volume,
                                       {Value::Ref(s.cuboids[idx])});
        if (!v.ok() || *v->AsDouble() != expected[idx]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& r : readers) r.join();
  EXPECT_EQ(mismatches.load(), 0);

  // All queries were pure hits on the read plane.
  const auto& st = sessions[0]->stats();
  EXPECT_EQ(st.forward_queries, kQueriesPerReader);
  EXPECT_EQ(st.plain_evaluations, 0u);
}

TEST(ConcurrencyTest, ConcurrentBackwardRangeDuringStorms) {
  auto stack = workload::MakeCompanyStack(TestStack());
  ASSERT_TRUE(stack->setup.ok()) << stack->setup.ToString();
  CompanyStack& s = *stack;

  std::vector<Session*> sessions;
  for (size_t t = 0; t < 2; ++t) sessions.push_back(s.env.MakeSession());
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (size_t t = 0; t < 2; ++t) {
    readers.emplace_back([&, t]() {
      Session* session = sessions[t];
      while (!stop.load(std::memory_order_acquire)) {
        auto rows = session->BackwardQuery(s.geo.volume, 100, 4000);
        if (!rows.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        // Every returned argument must reference a live cuboid.
        for (const auto& args : *rows) {
          if (args.size() != 1 || args[0].kind() != ValueKind::kRef) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  Rng storms(11);
  for (size_t k = 0; k < kStorms; ++k) {
    Status st;
    {
      SessionPool::WriterLock lock(s.env.session_pool.get());
      st = ApplyStorm(s, storms);
    }
    ASSERT_TRUE(st.ok()) << st.ToString();
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(sessions[0]->stats().backward_queries, 0u);
}

TEST(ConcurrencyTest, InstallNotifierIsIdempotent) {
  auto stack = workload::MakeCompanyStack(TestStack());
  ASSERT_TRUE(stack->setup.ok());
  workload::Environment& env = stack->env;
  workload::MaterializationNotifier* first = env.notifier.get();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->level(), workload::NotifyLevel::kObjDep);

  // A second install retunes the existing notifier instead of replacing it.
  workload::MaterializationNotifier* second =
      env.InstallNotifier(workload::NotifyLevel::kSchemaDep);
  EXPECT_EQ(second, first);
  EXPECT_EQ(second->level(), workload::NotifyLevel::kSchemaDep);
}

}  // namespace
}  // namespace gom
