// Crash–recover–compare property test: a deterministic update/query mix
// runs against a WAL-enabled stack while a fault injector halts the disk
// at every sampled I/O index ("fail after N ops"). After each crash the
// GMR machinery is discarded and rebuilt by RecoveryManager from the
// durable log prefix; every recovered answer must then match a
// from-scratch interpreter evaluation (the oracle). The sweep covers well
// over 200 distinct seeded crash points, including crashes inside
// EndBatch's coalesced flush and inside lazy rematerialization.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/sim_clock.h"
#include "funclang/interpreter.h"
#include "gmr/gmr_manager.h"
#include "gmr/recovery.h"
#include "gom/object_manager.h"
#include "storage/buffer_pool.h"
#include "storage/fault_injector.h"
#include "storage/sim_disk.h"
#include "storage/storage_manager.h"
#include "storage/wal.h"
#include "workload/cuboid_schema.h"
#include "workload/program_version.h"

namespace gom {
namespace {

// A deliberately tiny pool: the whole database spans only a few pages, and
// the crash points are disk-op indices, so the mix must generate real page
// traffic — with two frames nearly every object touch misses.
constexpr size_t kBufferPages = 2;
constexpr size_t kNumCuboids = 8;
constexpr size_t kMixSteps = 40;

/// The full stack with a fault injector wired under the disk and the GMR
/// manager / WAL replaceable, so a "machine restart" can discard and
/// rebuild exactly the state the crash model says is lost.
struct CrashRig {
  explicit CrashRig(GmrManagerOptions opts)
      : disk(&clock, CostModel::Default()),
        pool(&disk, kBufferPages),
        storage(&pool),
        om(&schema, &storage, &clock),
        interp(&om, &registry),
        options(opts) {
    disk.SetFaultInjector(&fi);
    wal = std::make_unique<WriteAheadLog>(&disk);
    pool.AttachWal(wal.get());
    mgr = std::make_unique<GmrManager>(&om, &interp, &registry, &storage,
                                       options);
    mgr->AttachWal(wal.get());
    geo = *workload::CuboidSchema::Declare(&schema, &registry);

    Rng rng(11);
    iron = *geo.MakeMaterial(&om, "Iron", 7.86);
    for (size_t i = 0; i < kNumCuboids; ++i) {
      cuboids.push_back(*geo.MakeCuboid(&om, rng.UniformDouble(1, 20),
                                        rng.UniformDouble(1, 20),
                                        rng.UniformDouble(1, 20), iron));
    }
    GmrSpec spec;
    spec.name = "volume";
    spec.arg_types = {TypeRef::Object(geo.cuboid)};
    spec.functions = {geo.volume};
    specs.push_back(spec);
    gmr_id = *mgr->Materialize(spec);
    InstallNotifier();
    // Make the pre-mix state durable so crash points measure the mix only.
    EXPECT_TRUE(wal->Flush().ok());
    EXPECT_TRUE(pool.FlushAll().ok());
  }

  void InstallNotifier() {
    notifier = std::make_unique<workload::MaterializationNotifier>(
        mgr.get(), &om, workload::NotifyLevel::kObjDep);
    om.SetNotifier(notifier.get());
  }

  /// Machine restart: the object base (in-memory directory — the durable
  /// base in GOM's crash model) survives; GMR manager, notifier and log
  /// buffers are lost and rebuilt from the disk image.
  RecoveryManager::Stats CrashAndRecover() {
    om.SetNotifier(nullptr);
    notifier.reset();
    pool.AttachWal(nullptr);
    mgr.reset();
    wal.reset();
    fi.ClearCrash();
    fi.ClearSchedule();

    wal = std::make_unique<WriteAheadLog>(&disk);
    mgr = std::make_unique<GmrManager>(&om, &interp, &registry, &storage,
                                       options);
    RecoveryManager rec(mgr.get(), &om, wal.get());
    Status recovered = rec.Recover(specs);
    EXPECT_TRUE(recovered.ok()) << recovered.ToString();
    pool.AttachWal(wal.get());
    InstallNotifier();
    return rec.stats();
  }

  SimClock clock;
  SimDisk disk;
  FaultInjector fi;
  BufferPool pool;
  StorageManager storage;
  Schema schema;
  ObjectManager om;
  funclang::FunctionRegistry registry;
  funclang::Interpreter interp;
  GmrManagerOptions options;
  std::unique_ptr<WriteAheadLog> wal;
  std::unique_ptr<GmrManager> mgr;
  std::unique_ptr<workload::MaterializationNotifier> notifier;
  workload::CuboidSchema geo;
  Oid iron;
  std::vector<Oid> cuboids;
  std::vector<GmrSpec> specs;
  GmrId gmr_id = kInvalidGmrId;
};

/// Deterministic op mix. Returns true when the device halted mid-mix.
/// Identical seeds draw identically up to the crash point, so "fail after
/// N ops" reproduces the same workload prefix for every sampled N.
bool RunMix(CrashRig& rig, uint64_t seed, size_t batch_chunk) {
  static const char* kVertices[] = {"V1", "V2", "V4", "V5"};
  static const char* kCoords[] = {"X", "Y", "Z"};
  Rng rng(seed);
  std::set<Oid> deleted;
  size_t step = 0;
  while (step < kMixSteps) {
    if (rig.fi.crashed()) return true;
    size_t chunk = std::min(batch_chunk, kMixSteps - step);
    std::unique_ptr<GmrManager::UpdateBatch> batch;
    if (batch_chunk > 1) {
      batch = std::make_unique<GmrManager::UpdateBatch>(rig.mgr.get());
    }
    for (size_t i = 0; i < chunk; ++i, ++step) {
      double pick = rng.UniformDouble(0, 1);
      size_t idx = rng.UniformInt(0, rig.cuboids.size() - 1);
      Oid c = rig.cuboids[idx];
      bool alive = deleted.count(c) == 0 && rig.om.Exists(c);
      Status st;
      if (pick < 0.35) {
        // Relevant write: vertex coordinate ∈ RelAttr(volume).
        const char* vertex = kVertices[rng.UniformInt(0, 3)];
        const char* coord = kCoords[rng.UniformInt(0, 2)];
        double v = rng.UniformDouble(1, 10);
        if (!alive) continue;
        auto vo = rig.om.GetAttribute(c, vertex);
        if (!vo.ok()) {
          st = vo.status();
        } else {
          st = rig.om.SetAttribute(vo->as_ref(), coord, Value::Float(v));
        }
      } else if (pick < 0.50) {
        // Update storm on one vertex: the batch coalesces these.
        const char* vertex = kVertices[rng.UniformInt(0, 3)];
        double a = rng.UniformDouble(1, 10);
        double b = rng.UniformDouble(1, 10);
        double d = rng.UniformDouble(1, 10);
        if (!alive) continue;
        auto vo = rig.om.GetAttribute(c, vertex);
        if (!vo.ok()) {
          st = vo.status();
        } else {
          Oid v = vo->as_ref();
          st = rig.om.SetAttribute(v, "X", Value::Float(a));
          if (st.ok()) st = rig.om.SetAttribute(v, "Y", Value::Float(b));
          if (st.ok()) st = rig.om.SetAttribute(v, "Z", Value::Float(d));
        }
      } else if (pick < 0.72) {
        // Forward query — in the lazy config this is where remat happens.
        if (!alive) continue;
        auto v = rig.mgr->ForwardLookup(rig.geo.volume, {Value::Ref(c)});
        st = v.status();
      } else if (pick < 0.84) {
        // Insert a new cuboid and query it so it joins the extension.
        double a = rng.UniformDouble(1, 20);
        double b = rng.UniformDouble(1, 20);
        double d = rng.UniformDouble(1, 20);
        auto made = rig.geo.MakeCuboid(&rig.om, a, b, d, rig.iron);
        if (made.ok()) {
          rig.cuboids.push_back(*made);
          auto v = rig.mgr->ForwardLookup(rig.geo.volume, {Value::Ref(*made)});
          st = v.status();
        } else {
          st = made.status();
        }
      } else {
        // Delete (keep a few cuboids around).
        if (!alive || rig.cuboids.size() - deleted.size() <= 4) continue;
        st = rig.om.Delete(c);
        if (st.ok()) deleted.insert(c);
      }
      if (rig.fi.crashed()) return true;
      // The only scheduled fault is the halt; any error must trace to it.
      EXPECT_TRUE(st.ok()) << "non-crash failure: " << st.ToString();
    }
    if (batch != nullptr) {
      Status st = batch->Commit();
      if (rig.fi.crashed()) return true;
      EXPECT_TRUE(st.ok()) << "non-crash failure: " << st.ToString();
    }
  }
  return rig.fi.crashed();
}

/// Oracle comparison. Stale-but-valid rows are exactly the failure the
/// write-ahead rule exists to prevent: every valid result for a live
/// argument must equal a from-scratch interpreter evaluation, both read
/// directly from the extension (the backward-query path) and through
/// ForwardLookup (which recomputes invalid rows).
void VerifyAgainstOracle(CrashRig& rig) {
  Gmr* gmr = *rig.mgr->Get(rig.gmr_id);
  ASSERT_TRUE(gmr->CheckWellFormed().ok());
  gmr->ForEachRow([&](RowId, const Gmr::Row& row) {
    Oid c = row.args[0].as_ref();
    if (!rig.om.Exists(c) || !row.valid[0]) return true;
    auto expect = rig.interp.Invoke(rig.geo.volume, {Value::Ref(c)});
    EXPECT_TRUE(expect.ok());
    if (expect.ok()) {
      EXPECT_EQ(row.results[0].ToString(), expect->ToString())
          << "stale valid row for " << c.ToString();
    }
    return true;
  });
  for (Oid c : rig.cuboids) {
    if (!rig.om.Exists(c)) continue;
    auto expect = rig.interp.Invoke(rig.geo.volume, {Value::Ref(c)});
    auto got = rig.mgr->ForwardLookup(rig.geo.volume, {Value::Ref(c)});
    ASSERT_TRUE(expect.ok()) << expect.status().ToString();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->ToString(), expect->ToString())
        << "wrong recovered answer for " << c.ToString();
  }
}

struct SweepTotals {
  size_t crash_points = 0;
  size_t records_replayed = 0;
  size_t intents_seen = 0;
  size_t intents_discarded = 0;
  size_t remats_applied = 0;
  size_t remats_discarded = 0;
  size_t deltas_seen = 0;
  size_t batches_discarded = 0;
  size_t rows_replayed = 0;

  void Add(const RecoveryManager::Stats& s) {
    ++crash_points;
    records_replayed += s.records_replayed;
    intents_seen += s.intents_seen;
    intents_discarded += s.intents_discarded;
    remats_applied += s.remats_applied;
    remats_discarded += s.remats_discarded;
    deltas_seen += s.deltas_seen;
    batches_discarded += s.batches_discarded;
    rows_replayed += s.rows_replayed;
  }
};

/// Measures how many disk ops the mix performs when nothing crashes.
uint64_t DryRunOps(GmrManagerOptions opts, uint64_t seed, size_t batch_chunk) {
  CrashRig rig(opts);
  uint64_t before = rig.fi.ops_seen();
  bool crashed = RunMix(rig, seed, batch_chunk);
  uint64_t total = rig.fi.ops_seen() - before;  // mix only, not the checks
  EXPECT_FALSE(crashed);
  VerifyAgainstOracle(rig);  // the fault-free run is consistent too
  return total;
}

void SweepCrashPoints(GmrManagerOptions opts, uint64_t seed,
                      size_t batch_chunk, size_t points, SweepTotals* totals) {
  uint64_t total_ops = DryRunOps(opts, seed, batch_chunk);
  ASSERT_GT(total_ops, points) << "mix too small for the requested sweep";
  for (size_t p = 0; p < points; ++p) {
    uint64_t crash_at = p * total_ops / points;
    CrashRig rig(opts);
    rig.fi.CrashAfter(crash_at);
    bool crashed = RunMix(rig, seed, batch_chunk);
    ASSERT_TRUE(crashed) << "crash point " << crash_at << " never reached";
    totals->Add(rig.CrashAndRecover());
    VerifyAgainstOracle(rig);
    if (::testing::Test::HasFailure()) {
      FAIL() << "first failing crash point: op " << crash_at;
    }
  }
}

TEST(CrashRecoveryTest, ImmediateAndBatchedSweepMatchesOracle) {
  SweepTotals totals;
  GmrManagerOptions immediate;  // kImmediate, unbatched ops
  SweepCrashPoints(immediate, /*seed=*/101, /*batch_chunk=*/1, 60, &totals);
  // Batched: crash points land inside EndBatch's flush…commit region too.
  SweepCrashPoints(immediate, /*seed=*/202, /*batch_chunk=*/8, 60, &totals);

  EXPECT_EQ(totals.crash_points, 120u);
  EXPECT_GT(totals.records_replayed, 0u);
  EXPECT_GT(totals.intents_seen, 0u);
  EXPECT_GT(totals.rows_replayed, 0u);
  EXPECT_GT(totals.remats_applied, 0u);
  // Some crash points must land mid-update (intent durable, commit lost)
  // and mid-EndBatch (flush marker durable, commit marker lost).
  EXPECT_GT(totals.intents_discarded, 0u);
  EXPECT_GT(totals.batches_discarded, 0u);
}

TEST(CrashRecoveryTest, LazySweepMatchesOracle) {
  SweepTotals totals;
  GmrManagerOptions lazy;
  lazy.remat = RematStrategy::kLazy;
  SweepCrashPoints(lazy, /*seed=*/303, /*batch_chunk=*/1, 100, &totals);

  EXPECT_EQ(totals.crash_points, 100u);
  EXPECT_GT(totals.records_replayed, 0u);
  EXPECT_GT(totals.intents_seen, 0u);
  // Lazy remats happen inside queries; crashes around them must both lose
  // in-flight results (discard) and preserve durable ones (apply).
  EXPECT_GT(totals.remats_applied, 0u);
  EXPECT_GT(totals.intents_discarded, 0u);
}

TEST(CrashRecoveryTest, DeltaSweepMatchesOracle) {
  // Delta maintenance on: covered vertex writes log kDeltaApply records —
  // inside the write's intent region (unbatched) or inside EndBatch's
  // flush…commit region (batched). Crash points land before, between and
  // after them; replay must reconcile to the oracle either way.
  SweepTotals totals;
  GmrManagerOptions delta;
  delta.enable_delta = true;
  SweepCrashPoints(delta, /*seed=*/505, /*batch_chunk=*/1, 60, &totals);
  SweepCrashPoints(delta, /*seed=*/606, /*batch_chunk=*/8, 60, &totals);

  EXPECT_EQ(totals.crash_points, 120u);
  EXPECT_GT(totals.records_replayed, 0u);
  // The mixes must actually exercise delta-apply replay, and still hit the
  // conservative paths (intent durable / commit lost) around it.
  EXPECT_GT(totals.deltas_seen, 0u);
  EXPECT_GT(totals.intents_discarded, 0u);
  EXPECT_GT(totals.batches_discarded, 0u);
}

TEST(CrashRecoveryTest, RecoveryAfterCleanRunIsConsistent) {
  // Even without a crash, a restart that loses the unflushed log tail must
  // recover to a state consistent with the surviving object base.
  GmrManagerOptions opts;
  CrashRig rig(opts);
  EXPECT_FALSE(RunMix(rig, /*seed=*/404, /*batch_chunk=*/4));
  rig.CrashAndRecover();
  VerifyAgainstOracle(rig);
}

}  // namespace
}  // namespace gom
