// Delta maintenance (derived update functions): the analyzer must classify
// the geometric schema's functions correctly, covered updates must repair
// stored results in place (bit-identical to the rematerialization they
// replace), uncovered updates must fall back to invalidate + remat, and a
// randomized update-storm property test must leave a delta-enabled stack in
// exactly the state of a delta-disabled one — same extension, same query
// answers — while performing strictly fewer rematerializations.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "funclang/delta_analysis.h"
#include "test_env.h"

namespace gom {
namespace {

// --- Analyzer classification -------------------------------------------------

class DeltaAnalysisTest : public ::testing::Test {
 protected:
  TestEnv env;
  funclang::DeltaAnalyzer analyzer{&env.schema, &env.registry};

  AttrId Attr(TypeId type, const std::string& name) {
    auto r = env.schema.ResolveAttribute(type, name);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r->first;
  }
};

TEST_F(DeltaAnalysisTest, VolumeCompilesToScalarRecompute) {
  const funclang::DeltaRule& rule = analyzer.Analyze(env.geo.volume);
  ASSERT_EQ(rule.cls, funclang::DeltaClass::kScalarRecompute);
  EXPECT_FALSE(rule.program.empty());
  // Vertex coordinates are numeric leaves of the inlined dist chain.
  for (const char* coord : {"X", "Y", "Z"}) {
    EXPECT_TRUE(rule.Covers(env.schema, env.geo.vertex,
                            Attr(env.geo.vertex, coord)))
        << coord;
  }
  // The vertex references themselves change the accessed-object set, so
  // they are traversed but never covered.
  EXPECT_FALSE(
      rule.Covers(env.schema, env.geo.cuboid, Attr(env.geo.cuboid, "V1")));
  // An attribute outside the body is not covered either.
  EXPECT_FALSE(
      rule.Covers(env.schema, env.geo.cuboid, Attr(env.geo.cuboid, "Value")));
}

TEST_F(DeltaAnalysisTest, WeightInlinesThroughVolumeAndMaterial) {
  const funclang::DeltaRule& rule = analyzer.Analyze(env.geo.weight);
  ASSERT_EQ(rule.cls, funclang::DeltaClass::kScalarRecompute);
  EXPECT_TRUE(rule.Covers(env.schema, env.geo.vertex,
                          Attr(env.geo.vertex, "X")));
  EXPECT_TRUE(rule.Covers(env.schema, env.geo.material,
                          Attr(env.geo.material, "SpecWeight")));
}

TEST_F(DeltaAnalysisTest, TotalValueIsAggregateSum) {
  const funclang::DeltaRule& rule = analyzer.Analyze(env.geo.total_value);
  ASSERT_EQ(rule.cls, funclang::DeltaClass::kAggregateSum);
  EXPECT_EQ(rule.agg_attr, Attr(env.geo.cuboid, "Value"));
  EXPECT_TRUE(rule.Covers(env.schema, env.geo.cuboid,
                          Attr(env.geo.cuboid, "Value")));
}

TEST_F(DeltaAnalysisTest, SumOverFunctionCallIsOpaque) {
  // total_volume sums volume(c), not a plain element attribute: outside the
  // provable fragment, so it keeps the paper's invalidate-then-remat path.
  const funclang::DeltaRule& rule = analyzer.Analyze(env.geo.total_volume);
  EXPECT_EQ(rule.cls, funclang::DeltaClass::kOpaque);
  EXPECT_FALSE(rule.derivable());
}

// --- In-place repair on the volume GMR ---------------------------------------

constexpr size_t kNumCuboids = 30;

struct Fixture {
  explicit Fixture(bool enable_delta) {
    GmrManagerOptions options;
    options.enable_delta = enable_delta;
    env = std::make_unique<TestEnv>(150, options);
    Rng rng(5);
    iron = *env->geo.MakeMaterial(&env->om, "Iron", 7.86);
    for (size_t i = 0; i < kNumCuboids; ++i) {
      cuboids.push_back(*env->geo.MakeCuboid(&env->om,
                                             rng.UniformDouble(1, 20),
                                             rng.UniformDouble(1, 20),
                                             rng.UniformDouble(1, 20), iron));
    }
    GmrSpec spec;
    spec.name = "volume";
    spec.arg_types = {TypeRef::Object(env->geo.cuboid)};
    spec.functions = {env->geo.volume};
    gmr = *env->mgr.Materialize(spec);
    env->InstallNotifier(workload::NotifyLevel::kObjDep);
  }

  Value Oracle(Oid c) { return *env->interp.Invoke(env->geo.volume,
                                                   {Value::Ref(c)}); }
  Value Lookup(Oid c) {
    return *env->mgr.ForwardLookup(env->geo.volume, {Value::Ref(c)});
  }

  std::unique_ptr<TestEnv> env;
  Oid iron;
  std::vector<Oid> cuboids;
  GmrId gmr = kInvalidGmrId;
};

TEST(DeltaMaintenanceTest, CoveredWriteRepairsInPlaceWithoutRemat) {
  Fixture fx(/*enable_delta=*/true);
  Oid c = fx.cuboids[0];
  Oid v1 = fx.env->om.GetAttribute(c, "V1")->as_ref();
  uint64_t remats_before = fx.env->mgr.stats().rematerializations;

  // Two covered writes: the first evaluates the compiled program against
  // the base (and captures its leaves), the second replays from the capture.
  ASSERT_TRUE(fx.env->om.SetAttribute(v1, "X", Value::Float(3.25)).ok());
  ASSERT_TRUE(fx.env->om.SetAttribute(v1, "Y", Value::Float(1.5)).ok());

  EXPECT_EQ(fx.env->mgr.stats().rematerializations, remats_before);
  EXPECT_EQ(fx.env->mgr.stats().delta_applies, 2u);
  EXPECT_EQ(fx.env->mgr.stats().delta_fallbacks, 0u);
  // Bit-identical to what a remat would have stored.
  EXPECT_EQ(fx.Lookup(c).ToString(), fx.Oracle(c).ToString());

  Gmr* gmr = *fx.env->mgr.Get(fx.gmr);
  EXPECT_EQ(gmr->maint_counters().delta_applies.load(), 2u);
  EXPECT_EQ(gmr->maint_counters().fallbacks.load(), 0u);
}

TEST(DeltaMaintenanceTest, ReferenceRebindFallsBack) {
  Fixture fx(/*enable_delta=*/true);
  Oid c0 = fx.cuboids[0];
  Oid c1 = fx.cuboids[1];
  // Rebind c0's V1 to a vertex of another cuboid: the accessed-object set
  // changes, so the delta plane must hand this to the remat path.
  Oid other_v = fx.env->om.GetAttribute(c1, "V2")->as_ref();
  ASSERT_TRUE(
      fx.env->om.SetAttribute(c0, "V1", Value::Ref(other_v)).ok());

  EXPECT_GT(fx.env->mgr.stats().delta_fallbacks, 0u);
  EXPECT_EQ(fx.Lookup(c0).ToString(), fx.Oracle(c0).ToString());

  // And a covered write through the *new* geometry still applies in place.
  uint64_t applies = fx.env->mgr.stats().delta_applies;
  ASSERT_TRUE(fx.env->om.SetAttribute(other_v, "X", Value::Float(7.0)).ok());
  EXPECT_GT(fx.env->mgr.stats().delta_applies, applies);
  EXPECT_EQ(fx.Lookup(c0).ToString(), fx.Oracle(c0).ToString());
}

TEST(DeltaMaintenanceTest, FlagOffKeepsPaperBehavior) {
  Fixture fx(/*enable_delta=*/false);
  Oid v1 = fx.env->om.GetAttribute(fx.cuboids[0], "V1")->as_ref();
  uint64_t remats_before = fx.env->mgr.stats().rematerializations;
  ASSERT_TRUE(fx.env->om.SetAttribute(v1, "X", Value::Float(2.0)).ok());
  EXPECT_EQ(fx.env->mgr.stats().delta_applies, 0u);
  EXPECT_EQ(fx.env->mgr.stats().rematerializations, remats_before + 1);
}

TEST(DeltaMaintenanceTest, BatchedStormCoalescesToOneApply) {
  Fixture fx(/*enable_delta=*/true);
  Oid c = fx.cuboids[0];
  Oid v1 = fx.env->om.GetAttribute(c, "V1")->as_ref();
  uint64_t remats_before = fx.env->mgr.stats().rematerializations;
  {
    GmrManager::UpdateBatch batch(&fx.env->mgr);
    ASSERT_TRUE(fx.env->om.SetAttribute(v1, "X", Value::Float(1.0)).ok());
    ASSERT_TRUE(fx.env->om.SetAttribute(v1, "Y", Value::Float(2.0)).ok());
    ASSERT_TRUE(fx.env->om.SetAttribute(v1, "Z", Value::Float(3.0)).ok());
    // A mid-batch lookup must already see the post-write value (the row is
    // flagged invalid while the apply is pending, so this recomputes).
    EXPECT_EQ(fx.Lookup(c).ToString(), fx.Oracle(c).ToString());
    ASSERT_TRUE(batch.Commit().ok());
  }
  EXPECT_EQ(fx.env->mgr.stats().delta_applies, 3u);
  EXPECT_EQ(fx.env->mgr.stats().rematerializations, remats_before + 1);
  EXPECT_EQ(fx.Lookup(c).ToString(), fx.Oracle(c).ToString());
}

TEST(DeltaMaintenanceTest, UncoveredWriteInBatchSubsumesPendingDelta) {
  Fixture fx(/*enable_delta=*/true);
  Oid c0 = fx.cuboids[0];
  Oid c1 = fx.cuboids[1];
  Oid v1 = fx.env->om.GetAttribute(c0, "V1")->as_ref();
  Oid other_v = fx.env->om.GetAttribute(c1, "V6")->as_ref();
  {
    GmrManager::UpdateBatch batch(&fx.env->mgr);
    // Covered write parks a pending delta…
    ASSERT_TRUE(fx.env->om.SetAttribute(v1, "X", Value::Float(4.0)).ok());
    // …then an uncovered rebind of the same row must subsume it: only the
    // full recomputation reads the final geometry.
    ASSERT_TRUE(fx.env->om.SetAttribute(c0, "V1", Value::Ref(other_v)).ok());
    ASSERT_TRUE(batch.Commit().ok());
  }
  EXPECT_EQ(fx.Lookup(c0).ToString(), fx.Oracle(c0).ToString());
}

// --- Aggregate sums ----------------------------------------------------------

TEST(DeltaMaintenanceTest, AggregateSumAppliesRunningDelta) {
  GmrManagerOptions options;
  options.enable_delta = true;
  TestEnv env(150, options);
  Oid iron = *env.geo.MakeMaterial(&env.om, "Iron", 7.86);
  // Integer-valued doubles keep the running sum exact, so equality against
  // the from-scratch oracle is strict.
  std::vector<Oid> cuboids;
  Oid set = *env.om.CreateCollection(env.geo.valuables);
  for (int i = 0; i < 6; ++i) {
    Oid c = *env.geo.MakeCuboid(&env.om, 2, 3, 4, iron,
                                /*value=*/double(10 * (i + 1)));
    cuboids.push_back(c);
    ASSERT_TRUE(env.om.InsertElement(set, Value::Ref(c)).ok());
  }
  GmrSpec spec;
  spec.name = "total_value";
  spec.arg_types = {TypeRef::Object(env.geo.valuables)};
  spec.functions = {env.geo.total_value};
  ASSERT_TRUE(env.mgr.Materialize(spec).ok());
  env.InstallNotifier(workload::NotifyLevel::kObjDep);

  uint64_t remats_before = env.mgr.stats().rematerializations;
  Rng rng(17);
  for (int round = 0; round < 20; ++round) {
    Oid c = cuboids[rng.UniformInt(0, cuboids.size() - 1)];
    double v = double(rng.UniformInt(0, 500));
    ASSERT_TRUE(env.om.SetAttribute(c, "Value", Value::Float(v)).ok());
  }
  EXPECT_EQ(env.mgr.stats().rematerializations, remats_before);
  EXPECT_EQ(env.mgr.stats().delta_applies, 20u);

  auto got = env.mgr.ForwardLookup(env.geo.total_value, {Value::Ref(set)});
  auto want = env.interp.Invoke(env.geo.total_value, {Value::Ref(set)});
  ASSERT_TRUE(got.ok() && want.ok());
  EXPECT_EQ(got->ToString(), want->ToString());
}

// --- Randomized storm property test ------------------------------------------

/// Same mix as the batch-equivalence test, minus deletes: relevant writes,
/// irrelevant writes, update storms and interleaved queries, optionally
/// chunked into batches. Both runs of a comparison draw identically.
Status RunMix(Fixture* fx, uint64_t seed, size_t steps, size_t batch_chunk,
              std::vector<std::string>* query_log) {
  static const char* kVertices[] = {"V1", "V2", "V4", "V5"};
  static const char* kCoords[] = {"X", "Y", "Z"};
  Rng rng(seed);
  size_t step = 0;
  while (step < steps) {
    size_t chunk = std::min(batch_chunk, steps - step);
    std::unique_ptr<GmrManager::UpdateBatch> batch;
    if (batch_chunk > 1) {
      batch = std::make_unique<GmrManager::UpdateBatch>(&fx->env->mgr);
    }
    for (size_t i = 0; i < chunk; ++i, ++step) {
      double pick = rng.UniformDouble(0, 1);
      size_t idx = rng.UniformInt(0, fx->cuboids.size() - 1);
      Oid c = fx->cuboids[idx];
      if (pick < 0.45) {
        const char* vertex = kVertices[rng.UniformInt(0, 3)];
        const char* coord = kCoords[rng.UniformInt(0, 2)];
        double v = rng.UniformDouble(0, 10);
        Oid vo = fx->env->om.GetAttribute(c, vertex)->as_ref();
        GOMFM_RETURN_IF_ERROR(
            fx->env->om.SetAttribute(vo, coord, Value::Float(v)));
      } else if (pick < 0.55) {
        // Irrelevant write: set_Value is outside RelAttr(volume).
        GOMFM_RETURN_IF_ERROR(fx->env->om.SetAttribute(
            c, "Value", Value::Float(rng.UniformDouble(0, 100))));
      } else if (pick < 0.62) {
        // Uncovered relevant write: rebind a vertex reference.
        size_t other = rng.UniformInt(0, fx->cuboids.size() - 1);
        Oid ov = fx->env->om.GetAttribute(fx->cuboids[other], "V2")->as_ref();
        GOMFM_RETURN_IF_ERROR(
            fx->env->om.SetAttribute(c, "V2", Value::Ref(ov)));
      } else if (pick < 0.80) {
        auto v = fx->env->mgr.ForwardLookup(fx->env->geo.volume,
                                            {Value::Ref(c)});
        query_log->push_back(v.ok() ? v->ToString() : v.status().ToString());
      } else {
        // Update storm on one vertex.
        const char* vertex = kVertices[rng.UniformInt(0, 3)];
        Oid vo = fx->env->om.GetAttribute(c, vertex)->as_ref();
        for (const char* coord : kCoords) {
          GOMFM_RETURN_IF_ERROR(fx->env->om.SetAttribute(
              vo, coord, Value::Float(rng.UniformDouble(0, 10))));
        }
      }
    }
    if (batch != nullptr) GOMFM_RETURN_IF_ERROR(batch->Commit());
  }
  return Status::Ok();
}

/// Canonical sorted dump of the GMR extension: args, results and validity.
std::vector<std::string> ExtensionDump(Fixture* fx) {
  Gmr* gmr = *fx->env->mgr.Get(fx->gmr);
  std::vector<std::string> rows;
  gmr->ForEachRow([&](RowId, const Gmr::Row& row) {
    std::string line;
    for (const Value& a : row.args) line += a.ToString() + "|";
    line += "->";
    for (size_t i = 0; i < row.results.size(); ++i) {
      line += row.valid[i] ? row.results[i].ToString() : "<invalid>";
      line += "|";
    }
    rows.push_back(std::move(line));
    return true;
  });
  std::sort(rows.begin(), rows.end());
  return rows;
}

class DeltaEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t>> {};

TEST_P(DeltaEquivalenceTest, StormMixMatchesRematPath) {
  const uint64_t seed = std::get<0>(GetParam());
  const size_t batch_chunk = std::get<1>(GetParam());

  Fixture off(/*enable_delta=*/false);
  std::vector<std::string> off_queries;
  ASSERT_TRUE(RunMix(&off, seed, 300, batch_chunk, &off_queries).ok());

  Fixture on(/*enable_delta=*/true);
  std::vector<std::string> on_queries;
  ASSERT_TRUE(RunMix(&on, seed, 300, batch_chunk, &on_queries).ok());

  // Bit-identical state and answers: the compiled programs mirror the
  // interpreter's arithmetic exactly, so even floating-point results match.
  EXPECT_EQ(ExtensionDump(&off), ExtensionDump(&on));
  EXPECT_EQ(off_queries, on_queries);

  const auto& s_off = off.env->mgr.stats();
  const auto& s_on = on.env->mgr.stats();
  EXPECT_GT(s_on.delta_applies, 0u);
  EXPECT_LT(s_on.rematerializations, s_off.rematerializations);
  EXPECT_EQ(s_off.delta_applies, 0u);

  // Every valid row equals the oracle in both modes.
  for (Fixture* fx : {&off, &on}) {
    Gmr* gmr = *fx->env->mgr.Get(fx->gmr);
    ASSERT_TRUE(gmr->CheckWellFormed().ok());
    gmr->ForEachRow([&](RowId, const Gmr::Row& row) {
      if (!row.valid[0]) return true;
      EXPECT_EQ(row.results[0].ToString(),
                fx->Oracle(row.args[0].as_ref()).ToString());
      return true;
    });
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, DeltaEquivalenceTest,
    ::testing::Combine(::testing::Values(13, 131, 1313),
                       ::testing::Values(size_t{1}, size_t{16})));

}  // namespace
}  // namespace gom
