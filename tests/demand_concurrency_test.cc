// Demand-policy concurrency: Zipf-skewed reader sessions race density
// update storms while the hotness tracker decides, per row, between eager
// repair and flag-only invalidation. An eager twin environment replays the
// identical storm sequence as the oracle — every value a reader observes
// must be some storm-prefix state, cold rows must still converge, and the
// final extension must equal the oracle's bit for bit.
//
// Runs under the TSan job together with concurrency_test: readers bump the
// lock-free hotness slots under a shared latch while the writer holds the
// exclusive maintenance plane.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "geomwl/geom_stack.h"
#include "workload/session.h"

namespace gom {
namespace {

using geomwl::GeomStack;
using geomwl::GeomStackOptions;
using geomwl::MakeGeomStack;
using workload::Session;
using workload::SessionPool;

constexpr size_t kNumParts = 16;
constexpr size_t kStorms = 20;
constexpr size_t kWritesPerStorm = 5;
constexpr size_t kReaders = 4;
constexpr size_t kQueriesPerReader = 200;
constexpr size_t kWeightCol = 2;  // mesh_weight in MeshGmrSpec order

GeomStackOptions TestStack() {
  GeomStackOptions opts;
  opts.buffer_pages = 2048;
  opts.gmr.remat = RematStrategy::kImmediate;
  opts.num_parts = kNumParts;
  opts.seed = 97;
  opts.rings = 10;
  opts.segments = 10;
  opts.materialize = true;
  opts.notify = true;
  return opts;
}

DemandOptions TestPolicy() {
  DemandOptions d;
  d.enabled = true;
  d.hot_threshold = 4;
  d.epoch_accesses = 64;
  return d;
}

double ForwardWeight(GeomStack& s, size_t part) {
  auto v = s.env.mgr.ForwardLookup(nullptr, s.mesh.mesh_weight,
                                   {Value::Ref(s.parts[part])});
  EXPECT_TRUE(v.ok()) << v.status().ToString();
  return v.ok() ? v->as_float() : 0.0;
}

/// One density storm, identical for the live and oracle environments. The
/// caller's Rng carries the sequence, so replaying storms 0..k reproduces
/// the exact base (and, after repair, derived) state after storm k.
Status ApplyStorm(GeomStack& s, Rng& rng) {
  GmrManager::UpdateBatch batch(&s.env.mgr);
  for (size_t i = 0; i < kWritesPerStorm; ++i) {
    Oid part = s.parts[rng.UniformInt(0, static_cast<int64_t>(kNumParts) - 1)];
    GOMFM_RETURN_IF_ERROR(s.env.om.SetAttribute(
        part, "Density", Value::Float(rng.UniformDouble(1, 9))));
  }
  return batch.Commit();
}

/// Zipf-skewed part sequence (weight (i+1)^-s), deterministic per seed —
/// the head parts stay hot, the tail stays cold.
std::vector<size_t> ZipfSequence(size_t n, double zipf_s, uint64_t seed) {
  std::vector<double> cdf(kNumParts);
  double total = 0;
  for (size_t i = 0; i < kNumParts; ++i) {
    total += std::pow(static_cast<double>(i + 1), -zipf_s);
    cdf[i] = total;
  }
  Rng rng(seed);
  std::vector<size_t> seq(n);
  for (size_t i = 0; i < n; ++i) {
    double u = rng.UniformDouble(0, total);
    size_t lo = 0, hi = kNumParts - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    seq[i] = lo;
  }
  return seq;
}

TEST(DemandConcurrencyTest, SkewedReadersDuringStormsMatchEagerOracle) {
  // Oracle pass: eager, single-threaded. Every storm-prefix weight is a
  // legal observation (the session gate serializes readers against whole
  // storms).
  auto oracle = MakeGeomStack(TestStack());
  ASSERT_TRUE(oracle->setup.ok()) << oracle->setup.ToString();
  std::vector<std::set<double>> allowed(kNumParts);
  auto snapshot = [&](GeomStack& s) {
    for (size_t i = 0; i < kNumParts; ++i) {
      allowed[i].insert(ForwardWeight(s, i));
    }
  };
  {
    Rng storms(19);
    snapshot(*oracle);
    for (size_t k = 0; k < kStorms; ++k) {
      ASSERT_TRUE(ApplyStorm(*oracle, storms).ok());
      snapshot(*oracle);
    }
  }

  // Live pass: identical storms, demand policy on, skewed readers racing
  // the writer through the session gate.
  auto live = MakeGeomStack(TestStack());
  ASSERT_TRUE(live->setup.ok()) << live->setup.ToString();
  GeomStack& s = *live;
  // Populate every row before enabling the policy, so hotness reflects
  // only the racing reads below.
  for (size_t i = 0; i < kNumParts; ++i) ForwardWeight(s, i);
  s.env.mgr.set_demand_policy(TestPolicy());
  s.env.mgr.ResetStats();

  std::vector<Session*> sessions;
  std::vector<std::vector<size_t>> schedules;
  for (size_t t = 0; t < kReaders; ++t) {
    sessions.push_back(s.env.MakeSession());
    schedules.push_back(ZipfSequence(kQueriesPerReader, 1.5, 1000 + t));
  }

  struct Observation {
    size_t part;
    double weight;
  };
  std::vector<std::vector<Observation>> observed(kReaders);
  std::atomic<bool> go{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t]() {
      Session* session = sessions[t];
      observed[t].reserve(kQueriesPerReader);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (size_t part : schedules[t]) {
        auto v = session->ForwardQuery(s.mesh.mesh_weight,
                                       {Value::Ref(s.parts[part])});
        if (!v.ok() || !v->is_numeric()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        observed[t].push_back({part, *v->AsDouble()});
      }
    });
  }

  go.store(true, std::memory_order_release);
  {
    Rng storms(19);
    for (size_t k = 0; k < kStorms; ++k) {
      Status st;
      {
        SessionPool::WriterLock lock(s.env.session_pool.get());
        st = ApplyStorm(s, storms);
      }
      ASSERT_TRUE(st.ok()) << st.ToString();
      std::this_thread::yield();
    }
  }
  for (auto& r : readers) r.join();

  EXPECT_EQ(failures.load(), 0);
  size_t total = 0;
  for (size_t t = 0; t < kReaders; ++t) {
    for (const Observation& o : observed[t]) {
      ASSERT_TRUE(allowed[o.part].count(o.weight) != 0)
          << "reader " << t << " saw weight " << o.weight << " for part "
          << o.part << " — not any storm-prefix state";
      ++total;
    }
  }
  EXPECT_EQ(total, kReaders * kQueriesPerReader);

  // Cold rows that absorbed storms repair on this sweep; afterwards the
  // live extension must agree with the eager oracle exactly.
  for (size_t i = 0; i < kNumParts; ++i) {
    EXPECT_EQ(ForwardWeight(s, i), ForwardWeight(*oracle, i)) << "part " << i;
  }

  // The policy actually exercised both branches under skew, and the two
  // counters partition every invalidation.
  auto c = s.env.mgr.stats().Snapshot();
  EXPECT_GT(c.demand_cold_invalidations, 0u);
  EXPECT_EQ(c.demand_hot_remats + c.demand_cold_invalidations,
            c.invalidations);
}

TEST(DemandConcurrencyTest, HotTrackingRacesAreBenignOnQuiescentState) {
  auto stack = MakeGeomStack(TestStack());
  ASSERT_TRUE(stack->setup.ok()) << stack->setup.ToString();
  GeomStack& s = *stack;
  for (size_t i = 0; i < kNumParts; ++i) ForwardWeight(s, i);
  s.env.mgr.set_demand_policy(TestPolicy());

  std::vector<double> expected(kNumParts);
  for (size_t i = 0; i < kNumParts; ++i) expected[i] = ForwardWeight(s, i);

  // No writers: racing readers only exercise the lock-free hotness slots;
  // every answer must be the quiescent value.
  std::vector<Session*> sessions;
  for (size_t t = 0; t < kReaders; ++t) sessions.push_back(s.env.MakeSession());
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t]() {
      Session* session = sessions[t];
      std::vector<size_t> seq =
          ZipfSequence(kQueriesPerReader, 2.0, 500 + t);
      for (size_t part : seq) {
        auto v = session->ForwardQuery(s.mesh.mesh_weight,
                                       {Value::Ref(s.parts[part])});
        if (!v.ok() || *v->AsDouble() != expected[part]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& r : readers) r.join();
  EXPECT_EQ(mismatches.load(), 0);

  // Tracking observed the traffic (the policy was live), yet no repair or
  // invalidation happened without a write.
  auto g = s.env.mgr.Get(s.mesh_gmr);
  ASSERT_TRUE(g.ok());
  EXPECT_GE((*g)->demand_access_count(), kReaders * kQueriesPerReader);
  auto c = s.env.mgr.stats().Snapshot();
  EXPECT_EQ(c.demand_hot_remats, 0u);
  EXPECT_EQ(c.demand_cold_invalidations, 0u);
}

}  // namespace
}  // namespace gom
