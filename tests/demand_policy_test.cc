// Demand-driven materialization policy: hotness-tracked rows decide per
// update between eager repair (hot) and flag-only invalidation (cold).
// These tests pin the observable contract — classification, aging,
// propagation, inertness when disabled, and convergence to the same
// answers as the lazy strategy.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "geomwl/geom_stack.h"

namespace gom {
namespace {

using geomwl::GeomStack;
using geomwl::GeomStackOptions;
using geomwl::MakeGeomStack;

// Column order in MeshGmrSpec: surface_area, mesh_volume, mesh_weight,
// bbox_diag.
constexpr size_t kWeightCol = 2;

std::unique_ptr<GeomStack> MakeStack(RematStrategy remat) {
  GeomStackOptions opts;
  opts.buffer_pages = 1024;
  opts.gmr.remat = remat;
  opts.num_parts = 6;
  opts.rings = 8;
  opts.segments = 8;
  opts.materialize = true;
  opts.notify = true;
  auto stack = MakeGeomStack(opts);
  EXPECT_TRUE(stack->setup.ok()) << stack->setup.ToString();
  return stack;
}

FunctionId FnByColumn(const GeomStack& s, size_t col) {
  const FunctionId fns[] = {s.mesh.surface_area, s.mesh.mesh_volume,
                            s.mesh.mesh_weight, s.mesh.bbox_diag};
  return fns[col];
}

double Forward(GeomStack* s, size_t part, size_t col) {
  auto v = s->env.mgr.ForwardLookup(nullptr, FnByColumn(*s, col),
                                    {Value::Ref(s->parts[part])});
  EXPECT_TRUE(v.ok()) << v.status().ToString();
  return v.ok() ? v->as_float() : 0.0;
}

// All-valid starting point: lookups populate/repair every row of every
// column, exactly like the harness warmup.
void Warm(GeomStack* s) {
  for (size_t p = 0; p < s->parts.size(); ++p) {
    for (size_t c = 0; c < 4; ++c) Forward(s, p, c);
  }
}

Gmr* Ext(GeomStack* s) {
  auto g = s->env.mgr.Get(s->mesh_gmr);
  EXPECT_TRUE(g.ok());
  return *g;
}

RowId RowOf(GeomStack* s, size_t part) {
  RowId row = kInvalidRowId;
  auto r = Ext(s)->ReadResult({Value::Ref(s->parts[part])}, kWeightCol,
                              nullptr, &row);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return row;
}

bool WeightValid(GeomStack* s, size_t part) {
  auto valid = Ext(s)->ResultValid(RowOf(s, part), kWeightCol);
  EXPECT_TRUE(valid.ok());
  return valid.ok() && *valid;
}

TEST(DemandPolicyTest, HotRowRepairedEagerlyColdRowLeftInvalid) {
  auto s = MakeStack(RematStrategy::kImmediate);
  Warm(s.get());

  DemandOptions d;
  d.enabled = true;
  d.hot_threshold = 3;
  d.epoch_accesses = 100000;  // no aging within this test
  s->env.mgr.set_demand_policy(d);
  s->env.mgr.ResetStats();

  // Part 0 becomes hot (>= threshold accesses); part 1 stays cold.
  for (int i = 0; i < 4; ++i) Forward(s.get(), 0, kWeightCol);

  Status up = s->env.om.SetAttribute(s->parts[0], "Density",
                                     Value::Float(5.5));
  ASSERT_TRUE(up.ok()) << up.ToString();
  auto c = s->env.mgr.stats().Snapshot();
  EXPECT_GE(c.demand_hot_remats, 1u);
  EXPECT_EQ(c.demand_cold_invalidations, 0u);
  EXPECT_TRUE(WeightValid(s.get(), 0));  // repaired on the spot

  up = s->env.om.SetAttribute(s->parts[1], "Density", Value::Float(2.25));
  ASSERT_TRUE(up.ok()) << up.ToString();
  c = s->env.mgr.stats().Snapshot();
  EXPECT_GE(c.demand_cold_invalidations, 1u);
  EXPECT_FALSE(WeightValid(s.get(), 1));  // left invalid, lazy-style

  // With the policy on, every invalidation is classified one way or the
  // other — the two counters partition the total.
  EXPECT_EQ(c.demand_hot_remats + c.demand_cold_invalidations,
            c.invalidations);

  // The cold row still converges: the next forward query recomputes from
  // the new base state.
  auto mesh = s->mesh.MeshOf(&s->env.om, s->parts[1]);
  ASSERT_TRUE(mesh.ok());
  double expect = std::fabs(mesh->SignedVolume()) * 2.25;
  EXPECT_DOUBLE_EQ(Forward(s.get(), 1, kWeightCol), expect);
  EXPECT_TRUE(WeightValid(s.get(), 1));
  EXPECT_GT(s->env.mgr.stats().Snapshot().forward_invalid, 0u);
}

TEST(DemandPolicyTest, HotnessDecaysAfterTwoIdleEpochs) {
  auto s = MakeStack(RematStrategy::kImmediate);
  Warm(s.get());

  DemandOptions d;
  d.enabled = true;
  d.hot_threshold = 2;
  d.epoch_accesses = 4;
  s->env.mgr.set_demand_policy(d);
  s->env.mgr.ResetStats();

  for (int i = 0; i < 3; ++i) Forward(s.get(), 0, kWeightCol);
  Status up = s->env.om.SetAttribute(s->parts[0], "Density",
                                     Value::Float(3.0));
  ASSERT_TRUE(up.ok());
  EXPECT_GE(s->env.mgr.stats().Snapshot().demand_hot_remats, 1u);
  EXPECT_TRUE(WeightValid(s.get(), 0));

  // Two-plus epochs of traffic on other rows; part 0's history decays.
  for (int i = 0; i < 9; ++i) Forward(s.get(), 1, kWeightCol);
  up = s->env.om.SetAttribute(s->parts[0], "Density", Value::Float(4.0));
  ASSERT_TRUE(up.ok());
  EXPECT_GE(s->env.mgr.stats().Snapshot().demand_cold_invalidations, 1u);
  EXPECT_FALSE(WeightValid(s.get(), 0));

  // And the decayed row still answers correctly on demand.
  auto mesh = s->mesh.MeshOf(&s->env.om, s->parts[0]);
  ASSERT_TRUE(mesh.ok());
  EXPECT_DOUBLE_EQ(Forward(s.get(), 0, kWeightCol),
                   std::fabs(mesh->SignedVolume()) * 4.0);
}

TEST(DemandPolicyTest, DisabledPolicyIsInert) {
  auto s = MakeStack(RematStrategy::kImmediate);
  Warm(s.get());
  s->env.mgr.ResetStats();

  Gmr* g = Ext(s.get());
  // Off: every row reports hot (the pre-policy eager behavior) and access
  // tracking is a no-op, so runs without the policy cannot be perturbed.
  EXPECT_TRUE(g->IsHot(0));
  for (int i = 0; i < 8; ++i) Forward(s.get(), 0, kWeightCol);
  EXPECT_EQ(g->demand_access_count(), 0u);

  Status up = s->env.om.SetAttribute(s->parts[0], "Density",
                                     Value::Float(7.0));
  ASSERT_TRUE(up.ok());
  auto c = s->env.mgr.stats().Snapshot();
  EXPECT_GT(c.invalidations, 0u);
  EXPECT_EQ(c.demand_hot_remats, 0u);
  EXPECT_EQ(c.demand_cold_invalidations, 0u);
  EXPECT_TRUE(WeightValid(s.get(), 0));  // eager repair as before
}

TEST(DemandPolicyTest, SetDemandPolicyPropagatesToExistingExtensions) {
  auto s = MakeStack(RematStrategy::kImmediate);

  DemandOptions d;
  d.enabled = true;
  d.hot_threshold = 7;
  d.epoch_accesses = 31;
  s->env.mgr.set_demand_policy(d);

  EXPECT_TRUE(s->env.mgr.demand_policy().enabled);
  const DemandOptions& got = Ext(s.get())->demand();
  EXPECT_TRUE(got.enabled);
  EXPECT_EQ(got.hot_threshold, 7u);
  EXPECT_EQ(got.epoch_accesses, 31u);

  d.enabled = false;
  s->env.mgr.set_demand_policy(d);
  EXPECT_FALSE(Ext(s.get())->demand().enabled);
  EXPECT_TRUE(Ext(s.get())->IsHot(0));  // back to eager semantics
}

// End-to-end equivalence on one interleaved schedule: the demand policy
// must land on exactly the answers the plain lazy strategy produces.
TEST(DemandPolicyTest, ConvergesBitForBitWithLazyStrategy) {
  auto run = [](RematStrategy remat, bool demand) {
    auto s = MakeStack(remat);
    Warm(s.get());
    if (demand) {
      DemandOptions d;
      d.enabled = true;
      d.hot_threshold = 3;
      d.epoch_accesses = 16;
      s->env.mgr.set_demand_policy(d);
    }
    // Deterministic interleaving: skewed reads (part i%3) and density
    // writes sweeping all parts.
    for (int r = 0; r < 24; ++r) {
      Status up = s->env.om.SetAttribute(
          s->parts[static_cast<size_t>(r) % s->parts.size()], "Density",
          Value::Float(1.0 + (r * 7) % 11));
      EXPECT_TRUE(up.ok());
      for (int k = 0; k < 4; ++k) {
        Forward(s.get(), static_cast<size_t>(r + k) % 3,
                static_cast<size_t>(k) % 4);
      }
    }
    std::vector<double> final_values;
    for (size_t p = 0; p < s->parts.size(); ++p) {
      for (size_t c = 0; c < 4; ++c) {
        final_values.push_back(Forward(s.get(), p, c));
      }
    }
    return final_values;
  };

  std::vector<double> lazy = run(RematStrategy::kLazy, false);
  std::vector<double> demand = run(RematStrategy::kImmediate, true);
  ASSERT_EQ(lazy.size(), demand.size());
  for (size_t i = 0; i < lazy.size(); ++i) {
    EXPECT_EQ(lazy[i], demand[i]) << "value " << i;
  }
}

}  // namespace
}  // namespace gom
