#include <gtest/gtest.h>

#include "funclang/builder.h"
#include "funclang/printer.h"
#include "gmr/dependency_tables.h"
#include "query/executor.h"
#include "test_env.h"

namespace gom {
namespace {

using query::ColumnSpec;
using query::GmrRetrieval;
using query::QueryExecutor;

class ExecutorEdgeTest : public ::testing::Test {
 protected:
  ExecutorEdgeTest() {
    iron_ = *env_.geo.MakeMaterial(&env_.om, "Iron", 7.86);
    for (int i = 1; i <= 6; ++i) {
      cuboids_.push_back(*env_.geo.MakeCuboid(&env_.om, i, 1, 1, iron_));
    }
    GmrSpec spec;
    spec.name = "vw";
    spec.arg_types = {TypeRef::Object(env_.geo.cuboid)};
    spec.functions = {env_.geo.volume, env_.geo.weight};
    gmr_id_ = *env_.mgr.Materialize(spec);
  }

  TestEnv env_;
  Oid iron_;
  std::vector<Oid> cuboids_;
  GmrId gmr_id_ = kInvalidGmrId;
};

TEST_F(ExecutorEdgeTest, ConstResultColumnSelectsExactMatches) {
  QueryExecutor exec(&env_.om, &env_.interp, &env_.mgr, true);
  GmrRetrieval q;
  q.gmr = gmr_id_;
  q.arg_columns = {ColumnSpec::Any()};
  q.result_columns = {ColumnSpec::Const(Value::Float(4.0)),
                      ColumnSpec::DontCare()};
  auto rows = exec.RunRetrieval(q);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].as_ref(), cuboids_[3]);  // volume 4 = dims (4,1,1)
}

TEST_F(ExecutorEdgeTest, ArgConstantWithNonMatchingResultGivesNothing) {
  QueryExecutor exec(&env_.om, &env_.interp, &env_.mgr, true);
  GmrRetrieval q;
  q.gmr = gmr_id_;
  q.arg_columns = {ColumnSpec::Const(Value::Ref(cuboids_[0]))};
  q.result_columns = {ColumnSpec::Range(100, 200), ColumnSpec::DontCare()};
  auto rows = exec.RunRetrieval(q);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST_F(ExecutorEdgeTest, UnknownGmrIdFails) {
  QueryExecutor exec(&env_.om, &env_.interp, &env_.mgr, true);
  GmrRetrieval q;
  q.gmr = 999;
  EXPECT_EQ(exec.RunRetrieval(q).status().code(), StatusCode::kNotFound);
}

TEST_F(ExecutorEdgeTest, BackwardOnNonMaterializedFunctionFallsBackToScan) {
  QueryExecutor exec(&env_.om, &env_.interp, &env_.mgr, true);
  query::BackwardQuery q;
  q.range_type = env_.geo.cuboid;
  q.function = env_.geo.length;  // not materialized
  q.lo = 2.5;
  q.hi = 4.5;
  auto rows = exec.RunBackward(q);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);  // lengths 3 and 4
  EXPECT_EQ(exec.scans(), 1u);
}

TEST_F(ExecutorEdgeTest, EmptyRangeYieldsEmptyAnswer) {
  QueryExecutor exec(&env_.om, &env_.interp, &env_.mgr, true);
  query::BackwardQuery q;
  q.range_type = env_.geo.cuboid;
  q.function = env_.geo.volume;
  q.lo = 1000;
  q.hi = 2000;
  auto rows = exec.RunBackward(q);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

// ------------------------------------------------------ dependency tables

TEST(DependencyTablesTest, RemoveFunctionScrubsEverywhere) {
  DependencyTables deps;
  deps.AddSchemaDep({1, 2}, 10);
  deps.AddSchemaDep({1, 2}, 11);
  deps.AddInvalidated(1, 5, 10);
  ASSERT_TRUE(deps.AddCompensatingAction(1, 5, 10, 99).ok());
  EXPECT_EQ(deps.SchemaDepFct(1, 2).size(), 2u);
  EXPECT_TRUE(deps.CompensatingAction(1, 5, 10).ok());

  deps.RemoveFunction(10);
  EXPECT_EQ(deps.SchemaDepFct(1, 2), (FidSet{11}));
  EXPECT_TRUE(deps.InvalidatedFct(1, 5).empty());
  EXPECT_TRUE(deps.CompensatedFct(1, 5).empty());
  EXPECT_FALSE(deps.CompensatingAction(1, 5, 10).ok());
}

TEST(DependencyTablesTest, DuplicateCompensatingActionRejected) {
  DependencyTables deps;
  ASSERT_TRUE(deps.AddCompensatingAction(1, 5, 10, 99).ok());
  EXPECT_EQ(deps.AddCompensatingAction(1, 5, 10, 98).code(),
            StatusCode::kAlreadyExists);
  // A different function for the same operation is fine.
  EXPECT_TRUE(deps.AddCompensatingAction(1, 5, 11, 98).ok());
}

TEST(DependencyTablesTest, ElementsOfPseudoAttribute) {
  DependencyTables deps;
  deps.AddSchemaDep({7, kElementsOfAttr}, 3);
  EXPECT_EQ(deps.SchemaDepFct(7, kElementsOfAttr), (FidSet{3}));
  EXPECT_TRUE(deps.SchemaDepFct(7, 0).empty());
  EXPECT_TRUE(deps.TypeIsRewritten(7));
  EXPECT_FALSE(deps.TypeIsRewritten(8));
}

// ------------------------------------------------------------ printer misc

TEST(PrinterEdgeTest, NativeFunctionsRenderAsOpaque) {
  TestEnv env;
  auto def = env.registry.Get(env.geo.op_scale);
  ASSERT_TRUE(def.ok());
  std::string s = funclang::FunctionToString(**def);
  EXPECT_NE(s.find("<native>"), std::string::npos);
  EXPECT_NE(s.find("scale"), std::string::npos);
}

TEST(PrinterEdgeTest, AllExpressionFormsPrint) {
  namespace fl = funclang;
  EXPECT_EQ(fl::ExprToString(*fl::IfE(fl::B(true), fl::I(1), fl::I(2))),
            "(if true then 1 else 2)");
  EXPECT_EQ(fl::ExprToString(*fl::CountOf(fl::Var("s"))), "count(s)");
  EXPECT_EQ(fl::ExprToString(*fl::Flatten(fl::Var("x"))), "flatten(x)");
  EXPECT_EQ(fl::ExprToString(*fl::At(fl::Var("x"), 2)), "x[2]");
  EXPECT_EQ(fl::ExprToString(*fl::Contains(fl::Var("s"), fl::Var("e"))),
            "(e in s)");
  EXPECT_EQ(fl::ExprToString(*fl::Not(fl::B(false))), "not false");
  EXPECT_EQ(fl::ExprToString(*fl::Sqrt(fl::F(4))), "sqrt(4.000000)");
  EXPECT_EQ(
      fl::ExprToString(*fl::SelectFrom(fl::Var("s"), "x",
                                       fl::Gt(fl::Var("x"), fl::I(0)))),
      "{x in s | (x > 0)}");
  EXPECT_EQ(fl::ExprToString(
                *fl::SumOver(fl::Var("s"), "x", fl::Var("x"))),
            "sum(s; x: x)");
}

}  // namespace
}  // namespace gom
