// TCP-level replication and client failover: a real ShipServer streaming
// to a real socket-fed ReplicaCore (kill-and-reconnect included), the
// replica-mode query server answering staleness-bounded reads, and the
// FailoverClient walking dead endpoints, retrying kStale and following a
// promotion.

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "repl/replica.h"
#include "repl/ship_server.h"
#include "repl/snapshot.h"
#include "server/client.h"
#include "server/server.h"
#include "workload/stack.h"

namespace gom::repl {
namespace {

std::unique_ptr<workload::CompanyStack> MakePrimaryStack(size_t cuboids) {
  workload::StackOptions opts;
  opts.buffer_pages = 256;
  opts.num_cuboids = cuboids;
  opts.materialize_volume = true;
  opts.notify = true;
  opts.storage.enable_wal = true;
  auto stack = workload::MakeCompanyStack(opts);
  if (stack->setup.ok()) {
    EXPECT_TRUE(stack->env.wal->Flush().ok());
    stack->env.om.AttachReplicationLog(stack->env.wal.get());
  }
  return stack;
}

std::unique_ptr<workload::CompanyStack> MakeReplicaStack() {
  workload::StackOptions opts;
  opts.buffer_pages = 256;
  opts.num_cuboids = 0;
  opts.materialize_volume = true;
  opts.notify = false;
  auto stack = workload::MakeCompanyStack(opts);
  return stack;
}

Status ApplyStorm(workload::CompanyStack& s, Rng& rng) {
  static const char* kCoords[] = {"X", "Y", "Z"};
  GmrManager::UpdateBatch batch(&s.env.mgr);
  for (size_t i = 0; i < 8; ++i) {
    Oid c = s.cuboids[rng.UniformInt(0, s.cuboids.size() - 1)];
    GOMFM_ASSIGN_OR_RETURN(std::vector<Oid> vertices,
                           s.geo.VerticesOf(&s.env.om, c));
    GOMFM_RETURN_IF_ERROR(s.env.om.SetAttribute(
        vertices[rng.UniformInt(1, 3)], kCoords[rng.UniformInt(0, 2)],
        Value::Float(rng.UniformDouble(1, 15))));
  }
  return batch.Commit();
}

int ConnectLoopback(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendFrame(int fd, const server::ReplMsg& msg) {
  std::vector<uint8_t> frame;
  server::EncodeReplMsg(msg, &frame);
  size_t sent = 0;
  while (sent < frame.size()) {
    ssize_t n =
        ::send(fd, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Socket-fed replica pump: connect, Hello(applied), apply frames until
/// `target` is reached or `budget_ms` expires. Returns true on catch-up.
bool PumpReplicaOnce(uint16_t ship_port, uint32_t id, ReplicaCore* core,
                     Lsn target, int budget_ms) {
  int fd = ConnectLoopback(ship_port);
  if (fd < 0) return false;
  server::ReplMsg hello = core->Hello();
  hello.seq = id;
  if (!SendFrame(fd, hello)) {
    ::close(fd);
    return false;
  }
  std::vector<uint8_t> rx;
  std::vector<uint8_t> chunk(64 * 1024);
  bool ok = false;
  for (int waited = 0; waited < budget_ms;) {
    if (core->applied_lsn() != kNullLsn && core->applied_lsn() >= target) {
      ok = true;
      break;
    }
    pollfd p{fd, POLLIN, 0};
    int r = ::poll(&p, 1, 50);
    if (r < 0 && errno == EINTR) continue;
    if (r == 0) {
      waited += 50;
      continue;
    }
    if (r < 0) break;
    ssize_t n = ::recv(fd, chunk.data(), chunk.size(), 0);
    if (n <= 0) break;
    rx.insert(rx.end(), chunk.begin(), chunk.begin() + n);
    bool broken = false;
    while (!broken) {
      std::vector<uint8_t> payload;
      auto consumed = server::TryDecodeFrame(rx.data(), rx.size(), &payload);
      if (!consumed.ok()) {
        broken = true;
        break;
      }
      if (*consumed == 0) break;
      rx.erase(rx.begin(), rx.begin() + *consumed);
      auto msg = server::DecodeReplMsg(payload);
      if (!msg.ok()) {
        broken = true;
        break;
      }
      auto ack = core->Handle(*msg);
      if (!ack.ok()) {
        broken = true;
        break;
      }
      if (ack->has_value() && !SendFrame(fd, **ack)) broken = true;
    }
    if (broken) break;
  }
  ::close(fd);
  return ok;
}

TEST(FailoverTest, TcpShipCatchUpSurvivesKilledConnection) {
  auto primary = MakePrimaryStack(10);
  ASSERT_TRUE(primary->setup.ok()) << primary->setup.ToString();
  ShipServer ship(&primary->env);
  ASSERT_TRUE(ship.Start().ok());

  auto replica = MakeReplicaStack();
  ASSERT_TRUE(replica->setup.ok()) << replica->setup.ToString();
  ReplicaCore core(&replica->env);

  // Bootstrap + first storm burst.
  Rng rng(424242);
  for (int i = 0; i < 3; ++i) {
    workload::SessionPool::WriterLock lock(primary->env.session_pool.get());
    ASSERT_TRUE(ApplyStorm(*primary, rng).ok());
  }
  ASSERT_TRUE(primary->env.wal->Flush().ok());
  Lsn target1 = primary->env.wal->flushed_lsn();
  ASSERT_TRUE(PumpReplicaOnce(ship.port(), 1, &core, target1, 10000));

  // Kill the connection (PumpReplicaOnce closed it), storm more, then
  // reconnect: the replica resumes from its applied LSN, no snapshot.
  uint64_t snapshots_before = core.stats().snapshots_installed;
  for (int i = 0; i < 3; ++i) {
    workload::SessionPool::WriterLock lock(primary->env.session_pool.get());
    ASSERT_TRUE(ApplyStorm(*primary, rng).ok());
  }
  ASSERT_TRUE(primary->env.wal->Flush().ok());
  Lsn target2 = primary->env.wal->flushed_lsn();
  ASSERT_GT(target2, target1);
  ASSERT_TRUE(PumpReplicaOnce(ship.port(), 1, &core, target2, 10000));
  EXPECT_EQ(core.stats().snapshots_installed, snapshots_before);

  // Zero divergence, over real sockets.
  auto want = StateDigest(&primary->env);
  auto got = StateDigest(&replica->env);
  ASSERT_TRUE(want.ok() && got.ok());
  EXPECT_EQ(*got, *want);

  ship.Stop();
}

TEST(FailoverTest, ReplicaQueryServerHonorsStalenessBound) {
  auto primary = MakePrimaryStack(8);
  ASSERT_TRUE(primary->setup.ok()) << primary->setup.ToString();
  ShipServer ship(&primary->env);
  ASSERT_TRUE(ship.Start().ok());

  auto replica = MakeReplicaStack();
  ASSERT_TRUE(replica->setup.ok()) << replica->setup.ToString();
  ReplicaCore core(&replica->env);
  replica->env.ReleaseSession(replica->env.MakeSession());

  auto hooks = std::make_shared<server::ReadHooks>();
  workload::Environment* renv = &replica->env;
  ReplicaCore* core_ptr = &core;
  hooks->forward = [renv, core_ptr](FunctionId f, std::vector<Value> args,
                                    Lsn min_lsn) -> Result<Value> {
    std::shared_lock<std::shared_mutex> gate(renv->session_pool->gate());
    return core_ptr->ForwardRead(f, std::move(args), min_lsn);
  };
  hooks->backward = [renv, core_ptr](
                        FunctionId f, double lo, double hi, bool lo_inc,
                        bool hi_inc, Lsn min_lsn) -> Result<server::RowSet> {
    std::shared_lock<std::shared_mutex> gate(renv->session_pool->gate());
    return core_ptr->BackwardRead(f, lo, hi, lo_inc, hi_inc, min_lsn);
  };
  server::ServerOptions sopts;
  sopts.read_hooks = hooks;
  server::Server qserver(&replica->env, sopts);
  ASSERT_TRUE(qserver.Start().ok());

  ASSERT_TRUE(primary->env.wal->Flush().ok());
  Lsn target = primary->env.wal->flushed_lsn();
  ASSERT_TRUE(PumpReplicaOnce(ship.port(), 1, &core, target, 10000));

  server::Client client;
  ASSERT_TRUE(client.Connect(qserver.port()).ok());
  Oid c = primary->cuboids.front();
  auto want = primary->env.mgr.ForwardLookup(primary->geo.volume,
                                             {Value::Ref(c)});
  ASSERT_TRUE(want.ok());
  // That lookup may have materialized a row: ship it before comparing.
  ASSERT_TRUE(primary->env.wal->Flush().ok());
  ASSERT_TRUE(PumpReplicaOnce(ship.port(), 1, &core,
                              primary->env.wal->flushed_lsn(), 10000));

  auto got = client.Forward(primary->geo.volume, {Value::Ref(c)},
                            /*min_lsn=*/core.applied_lsn());
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_DOUBLE_EQ(got->as_float(), want->as_float());

  // Demanding an LSN the replica has not applied is a typed kStale on the
  // wire, not a wrong answer and not a hang.
  auto stale = client.Forward(primary->geo.volume, {Value::Ref(c)},
                              core.applied_lsn() + 1000);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kStale);

  qserver.Stop();
  ship.Stop();
}

TEST(FailoverTest, FailoverClientWalksDeadEndpoints) {
  auto primary = MakePrimaryStack(6);
  ASSERT_TRUE(primary->setup.ok()) << primary->setup.ToString();
  server::Server live(&primary->env, server::ServerOptions{});
  ASSERT_TRUE(live.Start().ok());

  // Find a port nothing listens on by binding-and-closing one.
  int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  uint16_t dead_port = ntohs(addr.sin_port);
  ::close(probe);

  server::ClientOptions copts;
  copts.connect_deadline_ms = 2000;
  server::RetryOptions ropts;
  ropts.max_retries = 4;
  server::FailoverClient client({dead_port, live.port()}, copts, ropts);
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_GE(client.stats().failovers, 1u);
  EXPECT_EQ(client.active_endpoint(), 1u);

  // Kill the live server: the next call fails over back around the list
  // and ultimately reports the failure instead of hanging.
  live.Stop();
  Status st = client.Ping();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
}

TEST(FailoverTest, FailoverClientRetriesStaleBoundedly) {
  // Replica-mode server over an empty, never-fed replica: every bounded
  // read is kStale. With min_lsn=0 reads pass through immediately.
  auto replica = MakeReplicaStack();
  ASSERT_TRUE(replica->setup.ok()) << replica->setup.ToString();
  ReplicaCore core(&replica->env);
  replica->env.ReleaseSession(replica->env.MakeSession());
  auto hooks = std::make_shared<server::ReadHooks>();
  workload::Environment* renv = &replica->env;
  ReplicaCore* core_ptr = &core;
  hooks->forward = [renv, core_ptr](FunctionId f, std::vector<Value> args,
                                    Lsn min_lsn) -> Result<Value> {
    std::shared_lock<std::shared_mutex> gate(renv->session_pool->gate());
    return core_ptr->ForwardRead(f, std::move(args), min_lsn);
  };
  server::ServerOptions sopts;
  sopts.read_hooks = hooks;
  server::Server qserver(&replica->env, sopts);
  ASSERT_TRUE(qserver.Start().ok());

  server::RetryOptions ropts;
  ropts.max_retries = 2;
  ropts.initial_backoff_ms = 1;
  ropts.max_backoff_ms = 4;
  server::FailoverClient client({qserver.port()}, server::ClientOptions{},
                                ropts);
  auto stale = client.Forward(replica->geo.volume, {Value::Ref(kNilOid)},
                              /*min_lsn=*/100);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kStale);
  // It did not give up on the first kStale.
  EXPECT_GE(client.stats().retries, 2u);
  EXPECT_EQ(client.stats().attempts, 3u);

  qserver.Stop();
}

TEST(FailoverTest, PromotedReplicaAnswersThroughFailover) {
  auto primary = MakePrimaryStack(8);
  ASSERT_TRUE(primary->setup.ok()) << primary->setup.ToString();
  server::Server pserver(&primary->env, server::ServerOptions{});
  ASSERT_TRUE(pserver.Start().ok());
  ShipServer ship(&primary->env);
  ASSERT_TRUE(ship.Start().ok());

  auto replica = MakeReplicaStack();
  ASSERT_TRUE(replica->setup.ok()) << replica->setup.ToString();
  ReplicaCore core(&replica->env);
  replica->env.ReleaseSession(replica->env.MakeSession());

  ASSERT_TRUE(primary->env.wal->Flush().ok());
  ASSERT_TRUE(PumpReplicaOnce(ship.port(), 1, &core,
                              primary->env.wal->flushed_lsn(), 10000));

  // Promote, then serve the *normal* (primary) read path: after promotion
  // the node runs without read hooks, exactly like gomfm_serve.
  {
    workload::SessionPool::WriterLock lock(replica->env.session_pool.get());
    ASSERT_TRUE(core.Promote().ok());
  }
  server::Server rserver(&replica->env, server::ServerOptions{});
  ASSERT_TRUE(rserver.Start().ok());

  Oid c = primary->cuboids.front();
  auto want = primary->env.mgr.ForwardLookup(primary->geo.volume,
                                             {Value::Ref(c)});
  ASSERT_TRUE(want.ok());

  // Old primary dies; the client's endpoint list carries it over to the
  // promoted node, which answers from replicated (now writable) state.
  ship.Stop();
  pserver.Stop();
  server::ClientOptions copts;
  copts.connect_deadline_ms = 2000;
  server::FailoverClient client({pserver.port(), rserver.port()}, copts,
                                server::RetryOptions{});
  auto got = client.Forward(primary->geo.volume, {Value::Ref(c)});
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_DOUBLE_EQ(got->as_float(), want->as_float());
  EXPECT_GE(client.stats().failovers, 1u);

  rserver.Stop();
}

}  // namespace
}  // namespace gom::repl
