// End-to-end fault propagation: injected I/O errors must surface as clean
// Status codes through SimDisk → BufferPool → StorageManager →
// ObjectManager → GmrManager, leave the in-memory object directory
// uncorrupted, and let the system resume normally once the fault passes.

#include <gtest/gtest.h>

#include <vector>

#include "common/sim_clock.h"
#include "storage/buffer_pool.h"
#include "storage/fault_injector.h"
#include "storage/sim_disk.h"
#include "test_env.h"

namespace gom {
namespace {

/// Fails every I/O in the next `n` ops that is of the scheduled kind.
void ArmWindow(FaultInjector* fi, uint64_t n, FaultInjector::Kind kind) {
  for (uint64_t i = 0; i < n; ++i) fi->FailAfter(i, kind);
}

struct Fixture {
  explicit Fixture(size_t buffer_pages) : env(buffer_pages) {
    iron = *env.geo.MakeMaterial(&env.om, "Iron", 7.86);
    for (int i = 0; i < 6; ++i) {
      cuboids.push_back(
          *env.geo.MakeCuboid(&env.om, 2.0 + i, 3.0, 4.0, iron));
    }
    env.disk.SetFaultInjector(&fi);
  }

  Oid Vertex(Oid c, const char* name) {
    return env.om.GetAttribute(c, name)->as_ref();
  }

  double Volume(Oid c) {
    return env.interp.Invoke(env.geo.volume, {Value::Ref(c)})->as_float();
  }

  GmrId MaterializeVolume() {
    GmrSpec spec;
    spec.name = "volume";
    spec.arg_types = {TypeRef::Object(env.geo.cuboid)};
    spec.functions = {env.geo.volume};
    GmrId id = *env.mgr.Materialize(spec);
    env.InstallNotifier(workload::NotifyLevel::kObjDep);
    return id;
  }

  TestEnv env;
  FaultInjector fi;
  Oid iron;
  std::vector<Oid> cuboids;
};

TEST(BufferPoolExhaustionTest, AllPagesPinnedIsAGracefulError) {
  SimClock clock;
  SimDisk disk(&clock, CostModel::Default());
  BufferPool pool(&disk, 2);

  PageId a = kInvalidPageId, b = kInvalidPageId;
  ASSERT_TRUE(pool.NewPage(&a).ok());
  ASSERT_TRUE(pool.Pin(a).ok());
  ASSERT_TRUE(pool.NewPage(&b).ok());
  ASSERT_TRUE(pool.Pin(b).ok());

  // Every frame pinned: both allocation and fetch of a third page must
  // fail with a clean status, not crash or evict a pinned frame.
  PageId c = kInvalidPageId;
  auto grown = pool.NewPage(&c);
  ASSERT_FALSE(grown.ok());
  EXPECT_EQ(grown.status().code(), StatusCode::kFailedPrecondition);

  PageId on_disk = disk.AllocatePage();
  auto fetched = pool.Fetch(on_disk);
  ASSERT_FALSE(fetched.ok());
  EXPECT_EQ(fetched.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(pool.IsResident(a));
  EXPECT_TRUE(pool.IsResident(b));

  // Releasing one pin unblocks the pool.
  ASSERT_TRUE(pool.Unpin(a).ok());
  ASSERT_TRUE(pool.Fetch(on_disk).ok());
}

TEST(FaultPropagationTest, ReadFaultSurfacesThroughObjectManager) {
  Fixture fx(/*buffer_pages=*/2);
  ASSERT_TRUE(fx.env.pool.EvictAll().ok());

  ArmWindow(&fx.fi, 50, FaultInjector::Kind::kReadError);
  auto v = fx.env.om.GetAttribute(fx.cuboids[0], "Value");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kIoError);

  // Transient: once the window passes the same read succeeds.
  fx.fi.ClearSchedule();
  EXPECT_TRUE(fx.env.om.GetAttribute(fx.cuboids[0], "Value").ok());
}

TEST(FaultPropagationTest, WriteFaultRollsBackSetAttribute) {
  // One frame, occupied by a fresh dirty page: the write-back inside
  // SetAttribute must fault the object's page in, which evicts the dirty
  // frame and hits the injected write fault.
  Fixture fx(/*buffer_pages=*/1);
  Oid vo = fx.Vertex(fx.cuboids[0], "V1");
  const double old_x = fx.env.om.GetAttribute(vo, "X")->as_float();
  PageId scratch = kInvalidPageId;
  ASSERT_TRUE(fx.env.pool.NewPage(&scratch).ok());

  ArmWindow(&fx.fi, 400, FaultInjector::Kind::kWriteError);
  Status st = fx.env.om.SetAttribute(vo, "X", Value::Float(old_x + 1.0));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  fx.fi.ClearSchedule();

  // The failed update rolled back: the in-memory directory still serves
  // the old value and stays fully usable.
  EXPECT_EQ(fx.env.om.GetAttribute(vo, "X")->as_float(), old_x);
  ASSERT_TRUE(fx.env.om.SetAttribute(vo, "X", Value::Float(old_x + 1.0)).ok());
  EXPECT_EQ(fx.env.om.GetAttribute(vo, "X")->as_float(), old_x + 1.0);
}

TEST(FaultPropagationTest, GmrMaintenancePathStaysConsistentAcrossFault) {
  Fixture fx(/*buffer_pages=*/2);
  GmrId gmr = fx.MaterializeVolume();

  Oid c0 = fx.cuboids[0];
  auto baseline = fx.env.mgr.ForwardLookup(fx.env.geo.volume, {Value::Ref(c0)});
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(baseline->as_float(), fx.Volume(c0));

  // Fill both frames with fresh dirty pages so the update's write-back
  // must evict one of them into the armed fault window.
  Oid vo = fx.Vertex(c0, "V1");
  PageId scratch = kInvalidPageId;
  ASSERT_TRUE(fx.env.pool.NewPage(&scratch).ok());
  ASSERT_TRUE(fx.env.pool.NewPage(&scratch).ok());
  ArmWindow(&fx.fi, 400, FaultInjector::Kind::kWriteError);
  Status st = fx.env.om.SetAttribute(vo, "X", Value::Float(9.5));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  fx.fi.ClearSchedule();

  // After the fault passes, every materialized answer must agree with a
  // from-scratch interpreter evaluation — no stale value, no lost row, no
  // corrupt reverse references.
  for (Oid c : fx.cuboids) {
    auto got = fx.env.mgr.ForwardLookup(fx.env.geo.volume, {Value::Ref(c)});
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->as_float(), fx.Volume(c)) << "cuboid " << c.ToString();
  }
  ASSERT_TRUE((*fx.env.mgr.Get(gmr))->CheckWellFormed().ok());
}

TEST(FaultPropagationTest, FailedDeleteLeavesTheObjectAlive) {
  Fixture fx(/*buffer_pages=*/2);
  fx.MaterializeVolume();
  Oid victim = fx.cuboids[0];

  ArmWindow(&fx.fi, 400, FaultInjector::Kind::kWriteError);
  Status st = fx.env.om.Delete(victim);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  fx.fi.ClearSchedule();

  // The object survives the failed delete and is still fully queryable
  // (its GMR row may have been conservatively dropped — it recomputes).
  ASSERT_TRUE(fx.env.om.Exists(victim));
  auto v = fx.env.mgr.ForwardLookup(fx.env.geo.volume, {Value::Ref(victim)});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_float(), fx.Volume(victim));

  // A retried delete succeeds and the rest of the base is untouched.
  ASSERT_TRUE(fx.env.om.Delete(victim).ok());
  EXPECT_FALSE(fx.env.om.Exists(victim));
  for (size_t i = 1; i < fx.cuboids.size(); ++i) {
    Oid c = fx.cuboids[i];
    auto got = fx.env.mgr.ForwardLookup(fx.env.geo.volume, {Value::Ref(c)});
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->as_float(), fx.Volume(c));
  }
}

TEST(FaultPropagationTest, TransientWriteFaultKeepsBufferPoolUsable) {
  SimClock clock;
  SimDisk disk(&clock, CostModel::Default());
  FaultInjector fi;
  disk.SetFaultInjector(&fi);
  BufferPool pool(&disk, 1);

  PageId a = kInvalidPageId;
  ASSERT_TRUE(pool.NewPage(&a).ok());
  fi.FailAfter(0, FaultInjector::Kind::kWriteError);
  // Evicting the dirty page fails on the injected write error...
  PageId b = kInvalidPageId;
  auto grown = pool.NewPage(&b);
  ASSERT_FALSE(grown.ok());
  EXPECT_EQ(grown.status().code(), StatusCode::kIoError);
  // ...but the frame is still intact and the next attempt succeeds.
  EXPECT_TRUE(pool.IsResident(a));
  ASSERT_TRUE(pool.NewPage(&b).ok());
  EXPECT_TRUE(pool.IsResident(b));
}

}  // namespace
}  // namespace gom
