#include <gtest/gtest.h>

#include "funclang/builder.h"
#include "funclang/function_registry.h"
#include "funclang/interpreter.h"
#include "funclang/printer.h"
#include "gom/object_manager.h"

namespace gom::funclang {
namespace {

/// Fixture with a miniature version of the paper's geometric schema: Vertex,
/// Material, Cuboid (4 of the 8 vertices suffice for volume), and the
/// functions dist, length, width, height, volume and weight of Figure 1.
class FunclangTest : public ::testing::Test {
 protected:
  FunclangTest()
      : disk_(&clock_, CostModel::Default()),
        pool_(&disk_, 150),
        storage_(&pool_),
        om_(&schema_, &storage_, &clock_),
        interp_(&om_, &registry_) {
    vertex_ = *schema_.DeclareTupleType(
        {"Vertex",
         kInvalidTypeId,
         {{"X", TypeRef::Float()}, {"Y", TypeRef::Float()},
          {"Z", TypeRef::Float()}},
         {},
         false});
    material_ = *schema_.DeclareTupleType(
        {"Material",
         kInvalidTypeId,
         {{"Name", TypeRef::String()}, {"SpecWeight", TypeRef::Float()}},
         {},
         false});
    cuboid_ = *schema_.DeclareTupleType(
        {"Cuboid",
         kInvalidTypeId,
         {{"V1", TypeRef::Object(vertex_)},
          {"V2", TypeRef::Object(vertex_)},
          {"V4", TypeRef::Object(vertex_)},
          {"V5", TypeRef::Object(vertex_)},
          {"Mat", TypeRef::Object(material_)},
          {"Value", TypeRef::Float()}},
         {},
         false});
    workpieces_ = *schema_.DeclareSetType("Workpieces",
                                          TypeRef::Object(cuboid_));

    // dist(self, other) = sqrt((X-X')² + (Y-Y')² + (Z-Z')²)
    auto d = [](ExprPtr a, ExprPtr b) { return Mul(Sub(a, b), Sub(a, b)); };
    dist_ = *registry_.Register(FunctionDef{
        kInvalidFunctionId,
        "dist",
        {{"self", TypeRef::Object(vertex_)},
         {"other", TypeRef::Object(vertex_)}},
        TypeRef::Float(),
        Body(Sqrt(Add(Add(d(Attr(Self(), "X"), Attr(Var("other"), "X")),
                          d(Attr(Self(), "Y"), Attr(Var("other"), "Y"))),
                      d(Attr(Self(), "Z"), Attr(Var("other"), "Z"))))),
        nullptr,
        true});

    auto edge = [this](const char* name, const char* v) {
      return *registry_.Register(FunctionDef{
          kInvalidFunctionId,
          name,
          {{"self", TypeRef::Object(cuboid_)}},
          TypeRef::Float(),
          Body(CallF("dist", {Attr(Self(), "V1"), Attr(Self(), v)})),
          nullptr,
          true});
    };
    length_ = edge("length", "V2");
    width_ = edge("width", "V4");
    height_ = edge("height", "V5");

    volume_ = *registry_.Register(FunctionDef{
        kInvalidFunctionId,
        "volume",
        {{"self", TypeRef::Object(cuboid_)}},
        TypeRef::Float(),
        Body(Mul(Mul(CallF("length", {Self()}), CallF("width", {Self()})),
                 CallF("height", {Self()}))),
        nullptr,
        true});

    weight_ = *registry_.Register(FunctionDef{
        kInvalidFunctionId,
        "weight",
        {{"self", TypeRef::Object(cuboid_)}},
        TypeRef::Float(),
        Body(Mul(CallF("volume", {Self()}),
                 Path(Self(), {"Mat", "SpecWeight"}))),
        nullptr,
        true});

    total_volume_ = *registry_.Register(FunctionDef{
        kInvalidFunctionId,
        "total_volume",
        {{"self", TypeRef::Object(workpieces_)}},
        TypeRef::Float(),
        Body(SumOver(Self(), "c", CallF("volume", {Var("c")}))),
        nullptr,
        true});
  }

  /// Creates an axis-aligned cuboid of dimensions l × w × h at the origin.
  Oid MakeCuboid(double l, double w, double h, Oid mat, double value = 0.0) {
    auto vtx = [this](double x, double y, double z) {
      return *om_.CreateTuple(
          vertex_, {Value::Float(x), Value::Float(y), Value::Float(z)});
    };
    Oid v1 = vtx(0, 0, 0), v2 = vtx(l, 0, 0), v4 = vtx(0, w, 0),
        v5 = vtx(0, 0, h);
    return *om_.CreateTuple(
        cuboid_, {Value::Ref(v1), Value::Ref(v2), Value::Ref(v4),
                  Value::Ref(v5), Value::Ref(mat), Value::Float(value)});
  }

  Oid MakeMaterial(const std::string& name, double spec_weight) {
    return *om_.CreateTuple(
        material_, {Value::String(name), Value::Float(spec_weight)});
  }

  SimClock clock_;
  SimDisk disk_;
  BufferPool pool_;
  StorageManager storage_;
  Schema schema_;
  ObjectManager om_;
  FunctionRegistry registry_;
  Interpreter interp_;
  TypeId vertex_, material_, cuboid_, workpieces_;
  FunctionId dist_, length_, width_, height_, volume_, weight_,
      total_volume_;
};

TEST_F(FunclangTest, RegistryRejectsDuplicatesAndBadBodies) {
  EXPECT_EQ(registry_
                .Register(FunctionDef{kInvalidFunctionId, "volume", {},
                                      TypeRef::Float(), Body(F(1)), nullptr,
                                      true})
                .status()
                .code(),
            StatusCode::kAlreadyExists);
  // Body without return.
  EXPECT_EQ(registry_
                .Register(FunctionDef{kInvalidFunctionId,
                                      "no_return",
                                      {},
                                      TypeRef::Float(),
                                      Block{{Let("x", F(1))}},
                                      nullptr,
                                      true})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Return not last.
  EXPECT_EQ(registry_
                .Register(FunctionDef{kInvalidFunctionId,
                                      "early_return",
                                      {},
                                      TypeRef::Float(),
                                      Block{{Ret(F(1)), Let("x", F(2)),
                                             Ret(F(3))}},
                                      nullptr,
                                      true})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(FunclangTest, DistComputesEuclideanDistance) {
  Oid a = *om_.CreateTuple(
      vertex_, {Value::Float(0), Value::Float(0), Value::Float(0)});
  Oid b = *om_.CreateTuple(
      vertex_, {Value::Float(3), Value::Float(4), Value::Float(0)});
  auto r = interp_.Invoke(dist_, {Value::Ref(a), Value::Ref(b)});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ(r->as_float(), 5.0);
}

TEST_F(FunclangTest, VolumeAndWeightMatchPaperExample) {
  // The §3 GMR extension: volume 300 with iron (7.86) gives weight 2358.
  Oid iron = MakeMaterial("Iron", 7.86);
  Oid c = MakeCuboid(10, 6, 5, iron);
  auto vol = interp_.Invoke(volume_, {Value::Ref(c)});
  ASSERT_TRUE(vol.ok()) << vol.status().ToString();
  EXPECT_DOUBLE_EQ(vol->as_float(), 300.0);
  auto w = interp_.Invoke(weight_, {Value::Ref(c)});
  ASSERT_TRUE(w.ok());
  EXPECT_DOUBLE_EQ(w->as_float(), 2358.0);
}

TEST_F(FunclangTest, TraceRecordsAllAccessedObjects) {
  Oid iron = MakeMaterial("Iron", 7.86);
  Oid c = MakeCuboid(2, 3, 4, iron);
  Trace trace;
  ASSERT_TRUE(interp_.Invoke(volume_, {Value::Ref(c)}, &trace).ok());
  // volume touches the cuboid and its four referenced vertices, not the
  // material.
  EXPECT_EQ(trace.accessed_objects.size(), 5u);
  EXPECT_EQ(trace.accessed_objects.front(), c);
  auto mat_accessed = std::count(trace.accessed_objects.begin(),
                                 trace.accessed_objects.end(), iron);
  EXPECT_EQ(mat_accessed, 0);

  Trace wtrace;
  ASSERT_TRUE(interp_.Invoke(weight_, {Value::Ref(c)}, &wtrace).ok());
  EXPECT_EQ(wtrace.accessed_objects.size(), 6u);  // + material
}

TEST_F(FunclangTest, TraceRecordsRelevantProperties) {
  Oid iron = MakeMaterial("Iron", 7.86);
  Oid c = MakeCuboid(2, 3, 4, iron);
  Trace trace;
  ASSERT_TRUE(interp_.Invoke(volume_, {Value::Ref(c)}, &trace).ok());
  // Cuboid.V1/V2/V4/V5 and Vertex.X/Y/Z = 7 distinct properties.
  EXPECT_EQ(trace.accessed_properties.size(), 7u);
  auto has = [&](TypeId t, const char* name) {
    AttrId idx = (*schema_.Get(t))->AttrIndex(name);
    return trace.accessed_properties.count({t, idx}) > 0;
  };
  EXPECT_TRUE(has(cuboid_, "V1"));
  EXPECT_TRUE(has(cuboid_, "V5"));
  EXPECT_TRUE(has(vertex_, "Z"));
  EXPECT_FALSE(has(cuboid_, "Mat"));
  EXPECT_FALSE(has(cuboid_, "Value"));
}

TEST_F(FunclangTest, AggregateOverSetObject) {
  Oid iron = MakeMaterial("Iron", 7.86);
  Oid set = *om_.CreateCollection(workpieces_);
  ASSERT_TRUE(
      om_.InsertElement(set, Value::Ref(MakeCuboid(1, 2, 3, iron))).ok());
  ASSERT_TRUE(
      om_.InsertElement(set, Value::Ref(MakeCuboid(2, 2, 2, iron))).ok());
  Trace trace;
  auto r = interp_.Invoke(total_volume_, {Value::Ref(set)}, &trace);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ(r->as_float(), 14.0);
  // The set object itself is recorded, with an elements-of property.
  EXPECT_EQ(trace.accessed_objects.front(), set);
  EXPECT_TRUE(
      trace.accessed_properties.count({workpieces_, kElementsOfAttr}) > 0);
}

TEST_F(FunclangTest, LetBindingsAndIfExpression) {
  FunctionId clamp = *registry_.Register(FunctionDef{
      kInvalidFunctionId,
      "clamp01",
      {{"x", TypeRef::Float()}},
      TypeRef::Float(),
      Body({Let("lo", F(0.0)), Let("hi", F(1.0)),
            Ret(IfE(Lt(Var("x"), Var("lo")), Var("lo"),
                    IfE(Gt(Var("x"), Var("hi")), Var("hi"), Var("x"))))}),
      nullptr,
      true});
  EXPECT_DOUBLE_EQ(interp_.Invoke(clamp, {Value::Float(-3)})->as_float(), 0.0);
  EXPECT_DOUBLE_EQ(interp_.Invoke(clamp, {Value::Float(0.5)})->as_float(), 0.5);
  EXPECT_DOUBLE_EQ(interp_.Invoke(clamp, {Value::Float(9)})->as_float(), 1.0);
}

TEST_F(FunclangTest, SelectMapFlattenContainsAt) {
  Oid iron = MakeMaterial("Iron", 7.86);
  Oid gold = MakeMaterial("Gold", 19.0);
  Oid set = *om_.CreateCollection(workpieces_);
  Oid c1 = MakeCuboid(1, 1, 1, iron, 10.0);
  Oid c2 = MakeCuboid(2, 2, 2, gold, 99.0);
  ASSERT_TRUE(om_.InsertElement(set, Value::Ref(c1)).ok());
  ASSERT_TRUE(om_.InsertElement(set, Value::Ref(c2)).ok());

  // expensive(self: Workpieces) = { c in self | c.Value > 50 }
  FunctionId expensive = *registry_.Register(FunctionDef{
      kInvalidFunctionId,
      "expensive",
      {{"self", TypeRef::Object(workpieces_)}},
      TypeRef::Any(),
      Body(SelectFrom(Self(), "c", Gt(Attr(Var("c"), "Value"), F(50.0)))),
      nullptr,
      true});
  auto sel = interp_.Invoke(expensive, {Value::Ref(set)});
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(sel->elements().size(), 1u);
  EXPECT_EQ(sel->elements()[0].as_ref(), c2);

  // values(self) = map(self; c: [c, c.Value])
  FunctionId values = *registry_.Register(FunctionDef{
      kInvalidFunctionId,
      "values",
      {{"self", TypeRef::Object(workpieces_)}},
      TypeRef::Any(),
      Body(MapOver(Self(), "c",
                   MakeComposite({Var("c"), Attr(Var("c"), "Value")}))),
      nullptr,
      true});
  auto mapped = interp_.Invoke(values, {Value::Ref(set)});
  ASSERT_TRUE(mapped.ok());
  ASSERT_EQ(mapped->elements().size(), 2u);
  EXPECT_DOUBLE_EQ(mapped->elements()[0].elements()[1].as_float(), 10.0);

  // first_values(self) = map(...)[0][1] via At
  FunctionId first_value = *registry_.Register(FunctionDef{
      kInvalidFunctionId,
      "first_value",
      {{"self", TypeRef::Object(workpieces_)}},
      TypeRef::Float(),
      Body(At(At(CallF("values", {Self()}), 0), 1)),
      nullptr,
      true});
  EXPECT_DOUBLE_EQ(interp_.Invoke(first_value, {Value::Ref(set)})->as_float(),
                   10.0);

  // has(self, c) = c in self
  FunctionId has = *registry_.Register(FunctionDef{
      kInvalidFunctionId,
      "has",
      {{"self", TypeRef::Object(workpieces_)},
       {"c", TypeRef::Object(cuboid_)}},
      TypeRef::Bool(),
      Body(Contains(Self(), Var("c"))),
      nullptr,
      true});
  EXPECT_TRUE(interp_.Invoke(has, {Value::Ref(set), Value::Ref(c1)})->as_bool());
  Oid c3 = MakeCuboid(9, 9, 9, iron);
  EXPECT_FALSE(
      interp_.Invoke(has, {Value::Ref(set), Value::Ref(c3)})->as_bool());

  // flatten of map of composites
  FunctionId flat = *registry_.Register(FunctionDef{
      kInvalidFunctionId,
      "flat_values",
      {{"self", TypeRef::Object(workpieces_)}},
      TypeRef::Any(),
      Body(Flatten(CallF("values", {Self()}))),
      nullptr,
      true});
  auto flattened = interp_.Invoke(flat, {Value::Ref(set)});
  ASSERT_TRUE(flattened.ok());
  EXPECT_EQ(flattened->elements().size(), 4u);
}

TEST_F(FunclangTest, AggregateKinds) {
  Oid iron = MakeMaterial("Iron", 7.86);
  Oid set = *om_.CreateCollection(workpieces_);
  for (double v : {5.0, 1.0, 3.0}) {
    ASSERT_TRUE(
        om_.InsertElement(set, Value::Ref(MakeCuboid(1, 1, 1, iron, v)))
            .ok());
  }
  auto run = [&](AggregateOp op) {
    FunctionDef def;
    def.name = std::string("agg_") + std::to_string(static_cast<int>(op));
    def.params = {{"self", TypeRef::Object(workpieces_)}};
    def.result_type = TypeRef::Float();
    def.body = Body(Aggregate(op, Self(), "c",
                              op == AggregateOp::kCount
                                  ? nullptr
                                  : Attr(Var("c"), "Value")));
    FunctionId f = *registry_.Register(std::move(def));
    return *interp_.Invoke(f, {Value::Ref(set)});
  };
  EXPECT_DOUBLE_EQ(run(AggregateOp::kSum).as_float(), 9.0);
  EXPECT_DOUBLE_EQ(run(AggregateOp::kAvg).as_float(), 3.0);
  EXPECT_DOUBLE_EQ(run(AggregateOp::kMin).as_float(), 1.0);
  EXPECT_DOUBLE_EQ(run(AggregateOp::kMax).as_float(), 5.0);
  EXPECT_EQ(run(AggregateOp::kCount).as_int(), 3);
}

TEST_F(FunclangTest, IterationVariableShadowsAndRestoresOuterBinding) {
  // let c := 7; sum(self; c: c.Value); return c  — the outer c survives.
  Oid iron = MakeMaterial("Iron", 7.86);
  Oid set = *om_.CreateCollection(workpieces_);
  ASSERT_TRUE(
      om_.InsertElement(set, Value::Ref(MakeCuboid(1, 1, 1, iron, 2.0)))
          .ok());
  FunctionId f = *registry_.Register(FunctionDef{
      kInvalidFunctionId,
      "shadowing",
      {{"self", TypeRef::Object(workpieces_)}},
      TypeRef::Float(),
      Body({Let("c", F(7.0)), Let("s", SumOver(Self(), "c",
                                               Attr(Var("c"), "Value"))),
            Ret(Add(Var("c"), Var("s")))}),
      nullptr,
      true});
  auto r = interp_.Invoke(f, {Value::Ref(set)});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ(r->as_float(), 9.0);
}

TEST_F(FunclangTest, ErrorsSurfaceAsStatuses) {
  // Unbound variable.
  FunctionId f1 = *registry_.Register(
      FunctionDef{kInvalidFunctionId, "bad_var", {}, TypeRef::Float(),
                  Body(Var("nope")), nullptr, true});
  EXPECT_EQ(interp_.Invoke(f1, {}).status().code(),
            StatusCode::kInvalidArgument);
  // Division by zero.
  FunctionId f2 = *registry_.Register(
      FunctionDef{kInvalidFunctionId, "div0", {}, TypeRef::Float(),
                  Body(Div(F(1), F(0))), nullptr, true});
  EXPECT_EQ(interp_.Invoke(f2, {}).status().code(),
            StatusCode::kInvalidArgument);
  // Wrong arity.
  EXPECT_EQ(interp_.Invoke(dist_, {Value::Ref(Oid(1))}).status().code(),
            StatusCode::kInvalidArgument);
  // Attribute access on a non-ref.
  FunctionId f3 = *registry_.Register(
      FunctionDef{kInvalidFunctionId, "attr_on_float", {}, TypeRef::Float(),
                  Body(Attr(F(1.0), "X")), nullptr, true});
  EXPECT_EQ(interp_.Invoke(f3, {}).status().code(),
            StatusCode::kTypeMismatch);
}

TEST_F(FunclangTest, NativeFunctionsRunWithTrackedContext) {
  FunctionId f = *registry_.Register(FunctionDef{
      kInvalidFunctionId,
      "native_x",
      {{"self", TypeRef::Object(vertex_)}},
      TypeRef::Float(),
      {},
      [](EvalContext& ctx, const std::vector<Value>& args) -> Result<Value> {
        GOMFM_ASSIGN_OR_RETURN(Oid self, args[0].AsRef());
        return ctx.GetAttr(self, "X");
      },
      true});
  Oid v = *om_.CreateTuple(
      vertex_, {Value::Float(8), Value::Float(0), Value::Float(0)});
  Trace trace;
  auto r = interp_.Invoke(f, {Value::Ref(v)}, &trace);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->as_float(), 8.0);
  EXPECT_EQ(trace.accessed_objects.size(), 1u);
  EXPECT_EQ(trace.accessed_objects[0], v);
}

TEST_F(FunclangTest, EvaluationChargesSimulatedTime) {
  Oid iron = MakeMaterial("Iron", 7.86);
  Oid c = MakeCuboid(2, 3, 4, iron);
  double before = clock_.seconds();
  ASSERT_TRUE(interp_.Invoke(volume_, {Value::Ref(c)}).ok());
  EXPECT_GT(clock_.seconds(), before);
  EXPECT_GT(interp_.nodes_evaluated(), 10u);
}

TEST_F(FunclangTest, PrinterRendersReadableSyntax) {
  auto def = registry_.Get(volume_);
  ASSERT_TRUE(def.ok());
  std::string s = FunctionToString(**def);
  EXPECT_NE(s.find("define volume(self"), std::string::npos);
  EXPECT_NE(s.find("length(self)"), std::string::npos);
  EXPECT_EQ(ExprToString(*Path(Self(), {"V1", "X"})), "self.V1.X");
  EXPECT_EQ(ExprToString(*Gt(Attr(Self(), "Value"), F(50))),
            "(self.Value > 50.000000)");
}

}  // namespace
}  // namespace gom::funclang
