// Multi-kilobyte mesh payloads through every byte boundary they cross:
// Value serialization inside wire frames (request and response, including
// the kUpdate type), the CRC/length guards of the frame codec, the
// part-chunked kObjPut WAL records (records never span pages), and the
// chunked record store. A mesh either survives each hop bit-exactly or the
// hop refuses it — never a silent mangle.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "geomwl/mesh.h"
#include "gom/obj_wal_records.h"
#include "server/wire.h"
#include "storage/buffer_pool.h"
#include "storage/chunked_record.h"
#include "storage/sim_disk.h"
#include "storage/storage_manager.h"
#include "storage/wal.h"

namespace gom {
namespace {

using geomwl::MakeRock;
using geomwl::TriangleMesh;

std::vector<uint8_t> BigMeshBytes() {
  // 20 x 20 rock: ~9 KB of vertices plus ~9 KB of indices — several WAL
  // parts, several record chunks, one mid-size wire frame.
  return MakeRock(4242, 20, 20, 4.0, 0.2).EncodeBytes();
}

/// Frames `payload`-producing encode output and decodes it back, asserting
/// the frame layer accepts it whole.
std::vector<uint8_t> MustFrame(const std::vector<uint8_t>& frame) {
  std::vector<uint8_t> payload;
  auto used = server::TryDecodeFrame(frame.data(), frame.size(), &payload);
  EXPECT_TRUE(used.ok()) << used.status().ToString();
  EXPECT_EQ(*used, frame.size());
  return payload;
}

TEST(GeomWireTest, UpdateRequestCarriesMeshBytesExactly) {
  std::vector<uint8_t> mesh_bytes = BigMeshBytes();
  ASSERT_GT(mesh_bytes.size(), 8192u);

  server::Request rq;
  rq.type = server::RequestType::kUpdate;
  rq.id = 77;
  rq.function = FunctionId{13};
  rq.args = {Value::Ref(Oid(5)), Value::Bytes(mesh_bytes), Value::Int(9),
             Value::Float(0.25)};

  std::vector<uint8_t> frame;
  server::EncodeRequest(rq, &frame);
  auto back = server::DecodeRequest(MustFrame(frame));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->type, server::RequestType::kUpdate);
  EXPECT_EQ(back->id, 77u);
  EXPECT_EQ(back->function, rq.function);
  ASSERT_EQ(back->args.size(), rq.args.size());
  for (size_t i = 0; i < rq.args.size(); ++i) {
    EXPECT_TRUE(back->args[i] == rq.args[i]) << "arg " << i;
  }

  // The carried bytes are still a decodable mesh, identical to the source.
  auto bytes = back->args[1].AsBytes();
  ASSERT_TRUE(bytes.ok());
  auto decoded = TriangleMesh::DecodeBytes(**bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->EncodeBytes(), mesh_bytes);
}

TEST(GeomWireTest, ResponseRowsCarryMeshBytesExactly) {
  std::vector<uint8_t> mesh_bytes = BigMeshBytes();
  server::Response rs;
  rs.id = 3;
  rs.rows = {{Value::Bytes(mesh_bytes), Value::Float(12.5)},
             {Value::Bytes({0xde, 0xad}), Value::Null()}};

  std::vector<uint8_t> frame;
  server::EncodeResponse(rs, &frame);
  auto back = server::DecodeResponse(MustFrame(frame));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->rows.size(), 2u);
  EXPECT_TRUE(back->rows[0][0] == rs.rows[0][0]);
  EXPECT_TRUE(back->rows[0][1] == rs.rows[0][1]);
  EXPECT_TRUE(back->rows[1][0] == rs.rows[1][0]);
  EXPECT_TRUE(back->rows[1][1] == rs.rows[1][1]);
}

TEST(GeomWireTest, CorruptedMeshFrameIsRefusedNotMisdecoded) {
  server::Request rq;
  rq.type = server::RequestType::kUpdate;
  rq.id = 1;
  rq.function = FunctionId{2};
  rq.args = {Value::Bytes(BigMeshBytes())};
  std::vector<uint8_t> frame;
  server::EncodeRequest(rq, &frame);

  // Flip one byte in the middle of the mesh payload: the CRC must refuse
  // the frame (the mesh's own magic/counts sit far away and would not
  // catch an interior flip).
  std::vector<uint8_t> bad = frame;
  bad[bad.size() / 2] ^= 0x40;
  std::vector<uint8_t> payload;
  auto used = server::TryDecodeFrame(bad.data(), bad.size(), &payload);
  EXPECT_FALSE(used.ok());
}

TEST(GeomWireTest, OversizedMeshPayloadRejectedAtFrameBound) {
  // A payload past kMaxFrameBytes must be refused by the receiving frame
  // layer before any allocation of the declared size.
  server::Request rq;
  rq.type = server::RequestType::kUpdate;
  rq.id = 1;
  rq.function = FunctionId{2};
  rq.args = {Value::Bytes(std::vector<uint8_t>(server::kMaxFrameBytes + 1,
                                               0x5a))};
  std::vector<uint8_t> frame;
  server::EncodeRequest(rq, &frame);
  ASSERT_GT(frame.size(), static_cast<size_t>(server::kMaxFrameBytes));

  std::vector<uint8_t> payload;
  auto used = server::TryDecodeFrame(frame.data(), frame.size(), &payload);
  EXPECT_FALSE(used.ok());
}

TEST(GeomWireTest, MeshObjectImageChunksThroughWalAndReassembles) {
  // A part object with its mesh inline is far larger than one WAL page;
  // the image must split into multiple kObjPut records (records never span
  // pages) and reassemble bit-exactly after a flush.
  Object obj;
  obj.oid = Oid(42);
  obj.type = TypeId{7};
  obj.kind = StructKind::kTuple;
  obj.fields = {Value::String("part42"), Value::Bytes(BigMeshBytes()),
                Value::Float(3.5)};

  std::vector<std::vector<uint8_t>> parts = EncodeObjImageParts(obj);
  ASSERT_GT(parts.size(), 2u);

  SimClock clock;
  SimDisk disk(&clock, CostModel::Default());
  WriteAheadLog wal(&disk);
  for (const auto& p : parts) {
    ASSERT_LT(p.size(), kPageSize - 64) << "part too large for one record";
    auto lsn = wal.Append(WalRecordType::kObjPut, p);
    ASSERT_TRUE(lsn.ok()) << lsn.status().ToString();
  }
  ASSERT_TRUE(wal.Flush().ok());

  auto records = wal.ReadFlushedSince(0, 0);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), parts.size());

  ObjImageAssembler assembler;
  std::optional<ObjImage> image;
  for (const WalRecord& rec : *records) {
    EXPECT_EQ(rec.type, WalRecordType::kObjPut);
    auto fed = assembler.Feed(rec.payload);
    ASSERT_TRUE(fed.ok()) << fed.status().ToString();
    if (fed->has_value()) {
      EXPECT_FALSE(image.has_value()) << "image completed twice";
      image = std::move(**fed);
    }
  }
  ASSERT_TRUE(image.has_value());
  EXPECT_EQ(image->oid.raw, obj.oid.raw);
  EXPECT_EQ(image->type, obj.type);
  EXPECT_EQ(image->kind, obj.kind);
  ASSERT_EQ(image->values.size(), obj.fields.size());
  for (size_t i = 0; i < obj.fields.size(); ++i) {
    EXPECT_TRUE(image->values[i] == obj.fields[i]) << "field " << i;
  }
}

TEST(GeomWireTest, AssemblerResetsOnOutOfSequenceParts) {
  Object obj;
  obj.oid = Oid(9);
  obj.type = TypeId{7};
  obj.kind = StructKind::kTuple;
  obj.fields = {Value::Bytes(BigMeshBytes())};
  std::vector<std::vector<uint8_t>> parts = EncodeObjImageParts(obj);
  ASSERT_GT(parts.size(), 2u);

  ObjImageAssembler assembler;
  // A mid-stream part with no preceding part 0 must not complete anything.
  auto fed = assembler.Feed(parts[1]);
  ASSERT_TRUE(fed.ok());
  EXPECT_FALSE(fed->has_value());

  // The re-shipped full sequence still assembles cleanly afterwards.
  std::optional<ObjImage> image;
  for (const auto& p : parts) {
    auto f = assembler.Feed(p);
    ASSERT_TRUE(f.ok());
    if (f->has_value()) image = std::move(**f);
  }
  ASSERT_TRUE(image.has_value());
  EXPECT_TRUE(image->values[0] == obj.fields[0]);
}

TEST(GeomWireTest, ChunkedRecordStoreRoundTripsMeshBytes) {
  SimClock clock;
  SimDisk disk(&clock, CostModel::Default());
  BufferPool pool(&disk, 64);
  StorageManager storage(&pool);
  SegmentId segment = storage.CreateSegment("mesh_blobs");
  ChunkedRecordStore store(&storage, segment);

  std::vector<uint8_t> mesh_bytes = BigMeshBytes();
  auto handle = store.Insert(mesh_bytes);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  EXPECT_GT(handle->size(), 1u) << "multi-KB payload should span pages";

  auto back = store.Read(*handle);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, mesh_bytes);

  // Re-chunking on update: replace with a larger mesh, read it back.
  std::vector<uint8_t> bigger =
      MakeRock(7, 28, 28, 5.0, 0.2).EncodeBytes();
  ASSERT_GT(bigger.size(), mesh_bytes.size());
  ASSERT_TRUE(store.Update(&*handle, bigger).ok());
  back = store.Read(*handle);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, bigger);

  ASSERT_TRUE(store.Delete(*handle).ok());
}

}  // namespace
}  // namespace gom
