#include <gtest/gtest.h>

#include "common/rng.h"
#include "funclang/builder.h"
#include "gmr/gmr.h"
#include "gmr/gmr_manager.h"
#include "test_env.h"

namespace gom {
namespace {

using workload::NotifyLevel;

/// Builds the §3 example extension: three cuboids whose volumes/weights
/// match the paper's GMR table (300/2358 iron, 200/1572 iron, 100/1900
/// gold).
struct PaperDb {
  Oid iron, gold;
  Oid c1, c2, c3;
};

PaperDb MakePaperDb(TestEnv& env) {
  PaperDb db;
  db.iron = *env.geo.MakeMaterial(&env.om, "Iron", 7.86);
  db.gold = *env.geo.MakeMaterial(&env.om, "Gold", 19.0);
  db.c1 = *env.geo.MakeCuboid(&env.om, 10, 6, 5, db.iron, 39.99);
  db.c2 = *env.geo.MakeCuboid(&env.om, 10, 5, 4, db.iron, 19.95);
  db.c3 = *env.geo.MakeCuboid(&env.om, 5, 5, 4, db.gold, 89.90);
  return db;
}

GmrSpec VolumeWeightSpec(TestEnv& env) {
  GmrSpec spec;
  spec.name = "volume_weight";
  spec.arg_types = {TypeRef::Object(env.geo.cuboid)};
  spec.functions = {env.geo.volume, env.geo.weight};
  return spec;
}

// ------------------------------------------------------ §3 static aspects

TEST(GmrTest, PaperExampleExtension) {
  TestEnv env;
  PaperDb db = MakePaperDb(env);
  auto id = env.mgr.Materialize(VolumeWeightSpec(env));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  Gmr* gmr = *env.mgr.Get(*id);
  EXPECT_EQ(gmr->live_rows(), 3u);
  ASSERT_TRUE(gmr->CheckWellFormed().ok());

  struct Expected {
    Oid arg;
    double volume, weight;
  };
  for (const Expected& e : {Expected{db.c1, 300.0, 2358.0},
                            Expected{db.c2, 200.0, 1572.0},
                            Expected{db.c3, 100.0, 1900.0}}) {
    auto row = gmr->FindRow({Value::Ref(e.arg)});
    ASSERT_TRUE(row.ok());
    auto r = gmr->Get(*row);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE((*r)->valid[0]);
    EXPECT_TRUE((*r)->valid[1]);
    EXPECT_DOUBLE_EQ((*r)->results[0].as_float(), e.volume);
    EXPECT_DOUBLE_EQ((*r)->results[1].as_float(), e.weight);
  }
}

TEST(GmrTest, MaterializeRejectsBadSpecs) {
  TestEnv env;
  // No functions.
  GmrSpec empty;
  empty.name = "empty";
  EXPECT_FALSE(env.mgr.Materialize(empty).ok());
  // Update operations are not side-effect free.
  GmrSpec op_spec;
  op_spec.name = "op";
  op_spec.arg_types = {TypeRef::Object(env.geo.cuboid)};
  op_spec.functions = {env.geo.op_scale};
  EXPECT_EQ(env.mgr.Materialize(op_spec).status().code(),
            StatusCode::kFailedPrecondition);
  // Double materialization of the same function.
  ASSERT_TRUE(env.mgr.Materialize(VolumeWeightSpec(env)).ok());
  GmrSpec again;
  again.name = "volume_again";
  again.arg_types = {TypeRef::Object(env.geo.cuboid)};
  again.functions = {env.geo.volume};
  EXPECT_EQ(env.mgr.Materialize(again).status().code(),
            StatusCode::kAlreadyExists);
  // Unrestricted atomic argument.
  GmrSpec atomic;
  atomic.name = "atomic";
  atomic.arg_types = {TypeRef::Object(env.geo.cuboid), TypeRef::Float()};
  atomic.functions = {env.geo.distance};  // signature mismatch is irrelevant
  EXPECT_EQ(env.mgr.Materialize(atomic).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(GmrTest, SchemaDepFctDerivedFromAnalysis) {
  TestEnv env;
  MakePaperDb(env);
  ASSERT_TRUE(env.mgr.Materialize(VolumeWeightSpec(env)).ok());
  const auto& deps = env.mgr.deps();
  auto attr = [&](TypeId t, const char* name) {
    return (*env.schema.Get(t))->AttrIndex(name);
  };
  // §5.1 example: volume invalidated only by set_V1/2/4/5 and set_X/Y/Z.
  EXPECT_TRUE(deps.SchemaDepFct(env.geo.cuboid, attr(env.geo.cuboid, "V1"))
                  .count(env.geo.volume));
  EXPECT_TRUE(deps.SchemaDepFct(env.geo.vertex, attr(env.geo.vertex, "X"))
                  .count(env.geo.volume));
  EXPECT_FALSE(deps.SchemaDepFct(env.geo.cuboid, attr(env.geo.cuboid, "V3"))
                   .count(env.geo.volume));
  EXPECT_FALSE(deps.SchemaDepFct(env.geo.cuboid, attr(env.geo.cuboid, "Value"))
                   .count(env.geo.volume));
  // weight additionally depends on Mat and SpecWeight.
  EXPECT_TRUE(deps.SchemaDepFct(env.geo.cuboid, attr(env.geo.cuboid, "Mat"))
                  .count(env.geo.weight));
  EXPECT_TRUE(
      deps.SchemaDepFct(env.geo.material, attr(env.geo.material, "SpecWeight"))
          .count(env.geo.weight));
  EXPECT_FALSE(deps.SchemaDepFct(env.geo.material, attr(env.geo.material, "Name"))
                   .count(env.geo.weight));
}

TEST(GmrTest, ObjDepFctMarksInvolvedObjectsOnly) {
  TestEnv env;
  PaperDb db = MakePaperDb(env);
  Oid stray = *env.om.CreateTuple(
      env.geo.vertex, {Value::Float(1), Value::Float(2), Value::Float(3)});
  ASSERT_TRUE(env.mgr.Materialize(VolumeWeightSpec(env)).ok());
  // The cuboid and its volume-relevant vertices are marked.
  EXPECT_TRUE(*env.om.IsUsedBy(db.c1, env.geo.volume));
  auto vertices = *env.geo.VerticesOf(&env.om, db.c1);
  EXPECT_TRUE(*env.om.IsUsedBy(vertices[0], env.geo.volume));   // V1
  EXPECT_FALSE(*env.om.IsUsedBy(vertices[2], env.geo.volume));  // V3
  EXPECT_TRUE(*env.om.IsUsedBy(db.iron, env.geo.weight));
  EXPECT_FALSE(*env.om.IsUsedBy(db.iron, env.geo.volume));
  // An uninvolved vertex stays unmarked.
  EXPECT_FALSE(*env.om.IsUsedBy(stray, env.geo.volume));
}

// --------------------------------------------------- §4 dynamic aspects

TEST(GmrTest, LazyInvalidationFlagsWithoutRecompute) {
  TestEnv env(150, GmrManagerOptions{RematStrategy::kLazy, false});
  PaperDb db = MakePaperDb(env);
  auto id = env.mgr.Materialize(VolumeWeightSpec(env));
  ASSERT_TRUE(id.ok());
  env.InstallNotifier(NotifyLevel::kObjDep);
  env.mgr.ResetStats();

  auto vertices = *env.geo.VerticesOf(&env.om, db.c1);
  ASSERT_TRUE(env.om.SetAttribute(vertices[1], "X", Value::Float(20)).ok());

  Gmr* gmr = *env.mgr.Get(*id);
  auto row = gmr->FindRow({Value::Ref(db.c1)});
  ASSERT_TRUE(row.ok());
  auto r = gmr->Get(*row);
  EXPECT_FALSE((*r)->valid[0]);  // volume invalid
  EXPECT_FALSE((*r)->valid[1]);  // weight invalid (V2.X is relevant to both)
  EXPECT_EQ(env.mgr.stats().rematerializations, 0u);

  // The next forward lookup recomputes ("at the latest when needed").
  auto v = env.mgr.ForwardLookup(env.geo.volume, {Value::Ref(db.c1)});
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->as_float(), 20.0 * 6 * 5);
  EXPECT_EQ(env.mgr.stats().forward_invalid, 1u);
  EXPECT_GE(env.mgr.stats().rematerializations, 1u);
  r = gmr->Get(*row);
  EXPECT_TRUE((*r)->valid[0]);
  EXPECT_FALSE((*r)->valid[1]);  // weight still lazy-invalid
}

TEST(GmrTest, ImmediateRematerializationKeepsExtensionValid) {
  TestEnv env;  // immediate by default
  PaperDb db = MakePaperDb(env);
  auto id = env.mgr.Materialize(VolumeWeightSpec(env));
  ASSERT_TRUE(id.ok());
  env.InstallNotifier(NotifyLevel::kObjDep);

  auto vertices = *env.geo.VerticesOf(&env.om, db.c1);
  ASSERT_TRUE(env.om.SetAttribute(vertices[1], "X", Value::Float(20)).ok());

  Gmr* gmr = *env.mgr.Get(*id);
  auto r = gmr->Get(*gmr->FindRow({Value::Ref(db.c1)}));
  EXPECT_TRUE((*r)->valid[0]);
  EXPECT_DOUBLE_EQ((*r)->results[0].as_float(), 600.0);
  EXPECT_TRUE((*r)->valid[1]);
  EXPECT_DOUBLE_EQ((*r)->results[1].as_float(), 600.0 * 7.86);
}

TEST(GmrTest, IrrelevantAttributesDoNotInvalidate) {
  TestEnv env;
  PaperDb db = MakePaperDb(env);
  ASSERT_TRUE(env.mgr.Materialize(VolumeWeightSpec(env)).ok());
  auto* notifier = env.InstallNotifier(NotifyLevel::kObjDep);
  env.mgr.ResetStats();

  // §5.1: set_Value invalidates neither volume nor weight.
  ASSERT_TRUE(env.om.SetAttribute(db.c1, "Value", Value::Float(123.50)).ok());
  EXPECT_EQ(env.mgr.stats().invalidations, 0u);
  EXPECT_EQ(notifier->manager_calls(), 0u);

  // set_Mat invalidates weight but not volume.
  ASSERT_TRUE(env.om.SetAttribute(db.c1, "Mat", Value::Ref(db.gold)).ok());
  Gmr* gmr = *env.mgr.Get(env.mgr.Locate(env.geo.volume)->first);
  auto r = gmr->Get(*gmr->FindRow({Value::Ref(db.c1)}));
  EXPECT_TRUE((*r)->valid[0]);
  EXPECT_DOUBLE_EQ((*r)->results[0].as_float(), 300.0);  // untouched
  EXPECT_TRUE((*r)->valid[1]);                           // recomputed
  EXPECT_DOUBLE_EQ((*r)->results[1].as_float(), 300.0 * 19.0);
}

TEST(GmrTest, UninvolvedObjectUpdatesSkipTheManager) {
  TestEnv env;
  MakePaperDb(env);
  Oid stray = *env.om.CreateTuple(
      env.geo.vertex, {Value::Float(0), Value::Float(0), Value::Float(0)});
  ASSERT_TRUE(env.mgr.Materialize(VolumeWeightSpec(env)).ok());
  auto* notifier = env.InstallNotifier(NotifyLevel::kObjDep);
  uint64_t probes_before = env.mgr.rrr().probe_count();
  // §5.2: the stray vertex has an empty ObjDepFct → in-object check only,
  // no RRR probe.
  ASSERT_TRUE(env.om.SetAttribute(stray, "X", Value::Float(2.5)).ok());
  EXPECT_EQ(env.mgr.rrr().probe_count(), probes_before);
  EXPECT_GE(notifier->objdep_checks(), 1u);
  EXPECT_EQ(notifier->manager_calls(), 0u);
}

TEST(GmrTest, ScaleTriggersTwelveInvalidationsWithoutInfoHiding) {
  TestEnv env;
  PaperDb db = MakePaperDb(env);
  GmrSpec spec;
  spec.name = "volume";
  spec.arg_types = {TypeRef::Object(env.geo.cuboid)};
  spec.functions = {env.geo.volume};
  ASSERT_TRUE(env.mgr.Materialize(spec).ok());
  env.InstallNotifier(NotifyLevel::kObjDep);
  env.mgr.ResetStats();
  // §5.3: one scale = set_X/Y/Z on V1, V2, V4, V5 = 12 invalidations (each
  // immediately rematerialized, re-marking the vertex for the next one).
  ASSERT_TRUE(env.interp
                  .Invoke(env.geo.op_scale,
                          {Value::Ref(db.c1), Value::Float(2),
                           Value::Float(1), Value::Float(1)})
                  .ok());
  EXPECT_EQ(env.mgr.stats().invalidations, 12u);
  EXPECT_EQ(env.mgr.stats().rematerializations, 12u);
  auto v = env.mgr.ForwardLookup(env.geo.volume, {Value::Ref(db.c1)});
  EXPECT_DOUBLE_EQ(v->as_float(), 600.0);
}

TEST(GmrTest, InfoHidingSuppressesIrrelevantOperations) {
  TestEnv env;
  PaperDb db = MakePaperDb(env);
  GmrSpec spec;
  spec.name = "volume";
  spec.arg_types = {TypeRef::Object(env.geo.cuboid)};
  spec.functions = {env.geo.volume};
  ASSERT_TRUE(env.mgr.Materialize(spec).ok());
  ASSERT_TRUE(env.schema.SetStrictlyEncapsulated(env.geo.cuboid, true).ok());
  // The database programmer declares InvalidatedFct (§5.3): only scale
  // affects a materialized volume.
  env.mgr.deps().AddInvalidated(env.geo.cuboid, env.geo.op_scale,
                                env.geo.volume);
  env.InstallNotifier(NotifyLevel::kInfoHiding);
  env.mgr.ResetStats();

  // rotate: no invalidation at all.
  ASSERT_TRUE(env.interp
                  .Invoke(env.geo.op_rotate,
                          {Value::Ref(db.c1), Value::Int(2),
                           Value::Float(0.7)})
                  .ok());
  EXPECT_EQ(env.mgr.stats().invalidations, 0u);
  EXPECT_EQ(env.mgr.stats().rematerializations, 0u);

  // scale: exactly one invalidation for the single affected result.
  ASSERT_TRUE(env.interp
                  .Invoke(env.geo.op_scale,
                          {Value::Ref(db.c1), Value::Float(3),
                           Value::Float(1), Value::Float(1)})
                  .ok());
  EXPECT_EQ(env.mgr.stats().invalidations, 1u);
  EXPECT_EQ(env.mgr.stats().rematerializations, 1u);
  auto v = env.mgr.ForwardLookup(env.geo.volume, {Value::Ref(db.c1)});
  // The cuboid was rotated first, so compare against a fresh evaluation
  // (rotation preserves the edge lengths; scaling a rotated box is not a
  // plain factor-3 on the original volume).
  auto fresh = env.interp.Invoke(env.geo.volume, {Value::Ref(db.c1)});
  EXPECT_NEAR(v->as_float(), fresh->as_float(), 1e-6);
}

TEST(GmrTest, NewObjectExtendsCompleteGmr) {
  TestEnv env;
  PaperDb db = MakePaperDb(env);
  auto id = env.mgr.Materialize(VolumeWeightSpec(env));
  ASSERT_TRUE(id.ok());
  env.InstallNotifier(NotifyLevel::kObjDep);
  Oid c4 = *env.geo.MakeCuboid(&env.om, 2, 2, 2, db.iron);
  Gmr* gmr = *env.mgr.Get(*id);
  EXPECT_EQ(gmr->live_rows(), 4u);
  auto r = gmr->Get(*gmr->FindRow({Value::Ref(c4)}));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE((*r)->valid[0]);
  EXPECT_DOUBLE_EQ((*r)->results[0].as_float(), 8.0);
}

TEST(GmrTest, ForgetObjectRemovesRows) {
  TestEnv env;
  PaperDb db = MakePaperDb(env);
  auto id = env.mgr.Materialize(VolumeWeightSpec(env));
  ASSERT_TRUE(id.ok());
  env.InstallNotifier(NotifyLevel::kObjDep);
  ASSERT_TRUE(env.geo.DeleteCuboid(&env.om, db.c2).ok());
  Gmr* gmr = *env.mgr.Get(*id);
  EXPECT_EQ(gmr->live_rows(), 2u);
  EXPECT_FALSE(gmr->FindRow({Value::Ref(db.c2)}).ok());
}

TEST(GmrTest, BlindReferencesDetectedLazily) {
  TestEnv env;
  PaperDb db = MakePaperDb(env);
  Oid r1 = *env.geo.MakeRobot(&env.om, 50, 0, 0);
  GmrSpec spec;
  spec.name = "distance";
  spec.arg_types = {TypeRef::Object(env.geo.cuboid),
                    TypeRef::Object(env.geo.robot)};
  spec.functions = {env.geo.distance};
  auto id = env.mgr.Materialize(spec);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  Gmr* gmr = *env.mgr.Get(*id);
  EXPECT_EQ(gmr->live_rows(), 3u);  // 3 cuboids × 1 robot
  env.InstallNotifier(NotifyLevel::kObjDep);

  // Delete the robot: its rows disappear, but the cuboid-side RRR entries
  // survive as blind references.
  ASSERT_TRUE(env.om.Delete(r1).ok());
  EXPECT_EQ(gmr->live_rows(), 0u);
  env.mgr.ResetStats();
  // Updating a cuboid vertex hits the stale entry and drops it.
  auto vertices = *env.geo.VerticesOf(&env.om, db.c1);
  ASSERT_TRUE(env.om.SetAttribute(vertices[0], "X", Value::Float(1)).ok());
  EXPECT_GE(env.mgr.stats().blind_references, 1u);
  // A second identical update no longer finds any entry.
  env.mgr.ResetStats();
  ASSERT_TRUE(env.om.SetAttribute(vertices[0], "X", Value::Float(2)).ok());
  EXPECT_EQ(env.mgr.stats().blind_references, 0u);
}

TEST(GmrTest, BackwardRangeQueryMatchesScan) {
  TestEnv env;
  PaperDb db = MakePaperDb(env);
  (void)db;
  ASSERT_TRUE(env.mgr.Materialize(VolumeWeightSpec(env)).ok());
  env.InstallNotifier(NotifyLevel::kObjDep);

  auto result = env.mgr.BackwardRange(env.geo.volume, 150.0, 400.0, false,
                                      false);
  ASSERT_TRUE(result.ok());
  // Reference: evaluate volume for every cuboid.
  std::vector<Oid> expect;
  for (Oid c : env.om.Extent(env.geo.cuboid)) {
    double v = env.interp.Invoke(env.geo.volume, {Value::Ref(c)})->as_float();
    if (v > 150.0 && v < 400.0) expect.push_back(c);
  }
  ASSERT_EQ(result->size(), expect.size());
  std::set<uint64_t> got;
  for (const auto& args : *result) got.insert(args[0].as_ref().raw);
  for (Oid c : expect) EXPECT_TRUE(got.count(c.raw));
}

TEST(GmrTest, BackwardQueryRevalidatesLazilyInvalidatedColumn) {
  TestEnv env(150, GmrManagerOptions{RematStrategy::kLazy, false});
  PaperDb db = MakePaperDb(env);
  ASSERT_TRUE(env.mgr.Materialize(VolumeWeightSpec(env)).ok());
  env.InstallNotifier(NotifyLevel::kObjDep);
  // Invalidate c1's volume (currently 300) by growing it to 600.
  auto vertices = *env.geo.VerticesOf(&env.om, db.c1);
  ASSERT_TRUE(env.om.SetAttribute(vertices[1], "X", Value::Float(20)).ok());
  // A backward query over the stale range must NOT return c1 …
  auto r = env.mgr.BackwardRange(env.geo.volume, 250, 350, true, true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 0u);
  // … and one over the new value must.
  r = env.mgr.BackwardRange(env.geo.volume, 550, 650, true, true);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0][0].as_ref(), db.c1);
}

// --------------------------------------------------- §5.4 compensation

TEST(GmrTest, CompensatingActionAvoidsFullRecomputation) {
  TestEnv env;
  PaperDb db = MakePaperDb(env);
  Oid set = *env.om.CreateCollection(env.geo.workpieces);
  ASSERT_TRUE(env.om.InsertElement(set, Value::Ref(db.c1)).ok());
  ASSERT_TRUE(env.om.InsertElement(set, Value::Ref(db.c2)).ok());

  GmrSpec spec;
  spec.name = "total_volume";
  spec.arg_types = {TypeRef::Object(env.geo.workpieces)};
  spec.functions = {env.geo.total_volume};
  ASSERT_TRUE(env.mgr.Materialize(spec).ok());
  ASSERT_TRUE(env.mgr.deps()
                  .AddCompensatingAction(env.geo.workpieces, kElementInsertOp,
                                         env.geo.total_volume,
                                         env.geo.increase_total)
                  .ok());
  env.InstallNotifier(NotifyLevel::kObjDep);
  env.mgr.ResetStats();

  ASSERT_TRUE(env.om.InsertElement(set, Value::Ref(db.c3)).ok());
  EXPECT_EQ(env.mgr.stats().compensations, 1u);
  // The compensating action computes one volume; a full rematerialization
  // of total_volume would have been counted in `rematerializations`.
  EXPECT_EQ(env.mgr.stats().rematerializations, 0u);
  auto total = env.mgr.ForwardLookup(env.geo.total_volume, {Value::Ref(set)});
  ASSERT_TRUE(total.ok());
  EXPECT_DOUBLE_EQ(total->as_float(), 600.0);
  EXPECT_EQ(env.mgr.stats().forward_hits, 1u);  // still valid, no recompute
}

TEST(GmrTest, RemoveWithoutCompensationInvalidates) {
  TestEnv env;
  PaperDb db = MakePaperDb(env);
  Oid set = *env.om.CreateCollection(env.geo.workpieces);
  ASSERT_TRUE(env.om.InsertElement(set, Value::Ref(db.c1)).ok());
  ASSERT_TRUE(env.om.InsertElement(set, Value::Ref(db.c2)).ok());
  GmrSpec spec;
  spec.name = "total_volume";
  spec.arg_types = {TypeRef::Object(env.geo.workpieces)};
  spec.functions = {env.geo.total_volume};
  ASSERT_TRUE(env.mgr.Materialize(spec).ok());
  env.InstallNotifier(NotifyLevel::kObjDep);
  ASSERT_TRUE(env.om.RemoveElement(set, Value::Ref(db.c2)).ok());
  auto total = env.mgr.ForwardLookup(env.geo.total_volume, {Value::Ref(set)});
  ASSERT_TRUE(total.ok());
  EXPECT_DOUBLE_EQ(total->as_float(), 300.0);
}

// ------------------------------------------------------ §6 restricted GMRs

TEST(GmrTest, RestrictedGmrMaterializesOnlyQualifyingRows) {
  TestEnv env;
  PaperDb db = MakePaperDb(env);
  // p ≡ c.Mat.Name = "Iron"
  using namespace funclang;
  FunctionId pred = *env.registry.Register(FunctionDef{
      kInvalidFunctionId,
      "is_iron",
      {{"self", TypeRef::Object(env.geo.cuboid)}},
      TypeRef::Bool(),
      Body(Eq(Path(Self(), {"Mat", "Name"}), S("Iron"))),
      nullptr,
      true});
  GmrSpec spec = VolumeWeightSpec(env);
  spec.name = "vw_iron";
  spec.predicate = pred;
  auto id = env.mgr.Materialize(spec);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  Gmr* gmr = *env.mgr.Get(*id);
  EXPECT_EQ(gmr->live_rows(), 2u);  // c1, c2 are iron; c3 is gold
  EXPECT_FALSE(gmr->FindRow({Value::Ref(db.c3)}).ok());

  env.InstallNotifier(NotifyLevel::kObjDep);
  // §6.1: flipping c3's material to iron admits it …
  ASSERT_TRUE(env.om.SetAttribute(db.c3, "Mat", Value::Ref(db.iron)).ok());
  EXPECT_EQ(gmr->live_rows(), 3u);
  auto r = gmr->Get(*gmr->FindRow({Value::Ref(db.c3)}));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE((*r)->valid[0]);
  EXPECT_DOUBLE_EQ((*r)->results[1].as_float(), 100.0 * 7.86);
  // … and flipping c1 to gold evicts it.
  ASSERT_TRUE(env.om.SetAttribute(db.c1, "Mat", Value::Ref(db.gold)).ok());
  EXPECT_EQ(gmr->live_rows(), 2u);
  EXPECT_FALSE(gmr->FindRow({Value::Ref(db.c1)}).ok());
  // Forward lookups outside the restriction fall back to evaluation.
  auto w = env.mgr.ForwardLookup(env.geo.weight, {Value::Ref(db.c1)});
  ASSERT_TRUE(w.ok());
  EXPECT_DOUBLE_EQ(w->as_float(), 300.0 * 19.0);
}

TEST(GmrTest, ValueRestrictedAtomicArgument) {
  TestEnv env;
  PaperDb db = MakePaperDb(env);
  // weight_g(self, gravitation) — §6.2's example.
  using namespace funclang;
  FunctionId weight_g = *env.registry.Register(FunctionDef{
      kInvalidFunctionId,
      "weight_g",
      {{"self", TypeRef::Object(env.geo.cuboid)},
       {"gravitation", TypeRef::Float()}},
      TypeRef::Float(),
      Body(Div(Mul(CallF("weight", {Self()}), Var("gravitation")), F(9.81))),
      nullptr,
      true});
  GmrSpec spec;
  spec.name = "weight_g";
  spec.arg_types = {TypeRef::Object(env.geo.cuboid), TypeRef::Float()};
  spec.arg_restrictions = {
      ArgRestriction::None(),
      ArgRestriction::Values({Value::Float(9.81), Value::Float(3.7)})};
  spec.functions = {weight_g};
  auto id = env.mgr.Materialize(spec);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  Gmr* gmr = *env.mgr.Get(*id);
  EXPECT_EQ(gmr->live_rows(), 6u);  // 3 cuboids × 2 gravities
  env.mgr.ResetStats();
  // In-domain lookup: a hit.
  auto hit = env.mgr.ForwardLookup(weight_g,
                                   {Value::Ref(db.c1), Value::Float(3.7)});
  ASSERT_TRUE(hit.ok());
  EXPECT_NEAR(hit->as_float(), 2358.0 * 3.7 / 9.81, 1e-9);
  EXPECT_EQ(env.mgr.stats().forward_hits, 1u);
  // Out-of-domain: computed normally, not cached.
  auto miss = env.mgr.ForwardLookup(weight_g,
                                    {Value::Ref(db.c1), Value::Float(22.01)});
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(env.mgr.stats().forward_misses, 1u);
  EXPECT_EQ(gmr->live_rows(), 6u);
}

TEST(GmrTest, RangeRestrictedIntArgument) {
  TestEnv env;
  MakePaperDb(env);
  using namespace funclang;
  FunctionId scaled = *env.registry.Register(FunctionDef{
      kInvalidFunctionId,
      "scaled_volume",
      {{"self", TypeRef::Object(env.geo.cuboid)}, {"k", TypeRef::Int()}},
      TypeRef::Float(),
      Body(Mul(CallF("volume", {Self()}), Var("k"))),
      nullptr,
      true});
  GmrSpec spec;
  spec.name = "scaled_volume";
  spec.arg_types = {TypeRef::Object(env.geo.cuboid), TypeRef::Int()};
  spec.arg_restrictions = {ArgRestriction::None(),
                           ArgRestriction::IntRange(1, 4)};
  spec.functions = {scaled};
  auto id = env.mgr.Materialize(spec);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ((*env.mgr.Get(*id))->live_rows(), 12u);  // 3 cuboids × k∈1..4
}

TEST(GmrTest, FloatArgumentMustBeValueRestricted) {
  TestEnv env;
  GmrSpec spec;
  spec.name = "bad";
  spec.arg_types = {TypeRef::Object(env.geo.cuboid), TypeRef::Float()};
  spec.arg_restrictions = {ArgRestriction::None(),
                           ArgRestriction::IntRange(0, 5)};
  spec.functions = {env.geo.distance};
  EXPECT_EQ(env.mgr.Materialize(spec).status().code(),
            StatusCode::kFailedPrecondition);
}

// --------------------------------------------- incomplete (cache) GMRs

TEST(GmrTest, IncompleteGmrFillsOnDemandAndEvicts) {
  TestEnv env;
  PaperDb db = MakePaperDb(env);
  GmrSpec spec = VolumeWeightSpec(env);
  spec.name = "vw_cache";
  spec.complete = false;
  spec.max_rows = 2;
  auto id = env.mgr.Materialize(spec);
  ASSERT_TRUE(id.ok());
  Gmr* gmr = *env.mgr.Get(*id);
  EXPECT_EQ(gmr->live_rows(), 0u);  // starts empty

  ASSERT_TRUE(env.mgr.ForwardLookup(env.geo.volume, {Value::Ref(db.c1)}).ok());
  ASSERT_TRUE(env.mgr.ForwardLookup(env.geo.volume, {Value::Ref(db.c2)}).ok());
  EXPECT_EQ(gmr->live_rows(), 2u);
  // Third entry evicts the LRU row (c1).
  ASSERT_TRUE(env.mgr.ForwardLookup(env.geo.volume, {Value::Ref(db.c3)}).ok());
  EXPECT_EQ(gmr->live_rows(), 2u);
  EXPECT_FALSE(gmr->FindRow({Value::Ref(db.c1)}).ok());
  EXPECT_TRUE(gmr->FindRow({Value::Ref(db.c3)}).ok());
  // Backward queries on incomplete extensions are refused.
  EXPECT_EQ(env.mgr.BackwardRange(env.geo.volume, 0, 1e9, true, true)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

// --------------------------------------------------------- dematerialize

TEST(GmrTest, DematerializeRestoresCleanState) {
  TestEnv env;
  PaperDb db = MakePaperDb(env);
  auto id = env.mgr.Materialize(VolumeWeightSpec(env));
  ASSERT_TRUE(id.ok());
  auto* notifier = env.InstallNotifier(NotifyLevel::kObjDep);
  ASSERT_TRUE(env.mgr.Dematerialize(*id).ok());
  EXPECT_FALSE(env.mgr.IsMaterialized(env.geo.volume));
  EXPECT_EQ(env.mgr.rrr().size(), 0u);
  EXPECT_FALSE(*env.om.IsUsedBy(db.c1, env.geo.volume));
  // Updates no longer reach the manager.
  env.mgr.ResetStats();
  auto vertices = *env.geo.VerticesOf(&env.om, db.c1);
  ASSERT_TRUE(env.om.SetAttribute(vertices[0], "X", Value::Float(9)).ok());
  EXPECT_EQ(env.mgr.stats().invalidations, 0u);
  EXPECT_EQ(notifier->first_error().ToString(), "Ok");
}

// ------------------------------------------------- RRR second chance

TEST(GmrTest, SecondChanceResurrectsEntries) {
  TestEnv env(150, GmrManagerOptions{RematStrategy::kImmediate, true});
  PaperDb db = MakePaperDb(env);
  GmrSpec spec;
  spec.name = "volume";
  spec.arg_types = {TypeRef::Object(env.geo.cuboid)};
  spec.functions = {env.geo.volume};
  ASSERT_TRUE(env.mgr.Materialize(spec).ok());
  env.InstallNotifier(NotifyLevel::kObjDep);
  size_t entries_before = env.mgr.rrr().size();
  // A scale invalidates/rematerializes 12 times; with second chance the
  // physical entry set does not churn.
  ASSERT_TRUE(env.interp
                  .Invoke(env.geo.op_scale,
                          {Value::Ref(db.c1), Value::Float(2),
                           Value::Float(2), Value::Float(2)})
                  .ok());
  EXPECT_EQ(env.mgr.rrr().size(), entries_before);
  ASSERT_TRUE(env.mgr.rrr().Sweep().ok());
  EXPECT_EQ(env.mgr.rrr().size(), entries_before);
  auto v = env.mgr.ForwardLookup(env.geo.volume, {Value::Ref(db.c1)});
  EXPECT_NEAR(v->as_float(), 2400.0, 1e-6);
}

// ------------------------------------- consistency property (Def. 3.2)

class ConsistencyPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ConsistencyPropertyTest, RandomUpdatesPreserveConsistency) {
  auto [strategy_int, seed] = GetParam();
  GmrManagerOptions options;
  options.remat = static_cast<RematStrategy>(strategy_int);
  TestEnv env(150, options);
  Rng rng(seed);
  Oid iron = *env.geo.MakeMaterial(&env.om, "Iron", 7.86);
  Oid gold = *env.geo.MakeMaterial(&env.om, "Gold", 19.0);
  std::vector<Oid> cuboids;
  for (int i = 0; i < 10; ++i) {
    cuboids.push_back(*env.geo.MakeCuboid(
        &env.om, rng.UniformDouble(1, 10), rng.UniformDouble(1, 10),
        rng.UniformDouble(1, 10), rng.Bernoulli(0.5) ? iron : gold,
        rng.UniformDouble(0, 100)));
  }
  auto id = env.mgr.Materialize([&] {
    GmrSpec spec;
    spec.name = "vw";
    spec.arg_types = {TypeRef::Object(env.geo.cuboid)};
    spec.functions = {env.geo.volume, env.geo.weight};
    return spec;
  }());
  ASSERT_TRUE(id.ok());
  env.InstallNotifier(workload::NotifyLevel::kObjDep);

  for (int step = 0; step < 120; ++step) {
    double pick = rng.UniformDouble(0, 1);
    Oid c = cuboids[rng.UniformInt(0, cuboids.size() - 1)];
    if (pick < 0.3) {
      ASSERT_TRUE(env.interp
                      .Invoke(env.geo.op_scale,
                              {Value::Ref(c),
                               Value::Float(rng.UniformDouble(0.5, 2)),
                               Value::Float(rng.UniformDouble(0.5, 2)),
                               Value::Float(1.0)})
                      .ok());
    } else if (pick < 0.5) {
      ASSERT_TRUE(env.interp
                      .Invoke(env.geo.op_rotate,
                              {Value::Ref(c), Value::Int(rng.UniformInt(0, 2)),
                               Value::Float(rng.UniformDouble(0, 3))})
                      .ok());
    } else if (pick < 0.6) {
      ASSERT_TRUE(
          env.om
              .SetAttribute(c, "Mat",
                            Value::Ref(rng.Bernoulli(0.5) ? iron : gold))
              .ok());
    } else if (pick < 0.7) {
      cuboids.push_back(*env.geo.MakeCuboid(
          &env.om, rng.UniformDouble(1, 10), rng.UniformDouble(1, 10),
          rng.UniformDouble(1, 10), iron));
    } else if (pick < 0.78 && cuboids.size() > 3) {
      size_t idx = rng.UniformInt(0, cuboids.size() - 1);
      ASSERT_TRUE(env.geo.DeleteCuboid(&env.om, cuboids[idx]).ok());
      cuboids.erase(cuboids.begin() + idx);
    } else {
      // Forward lookup interleaved with updates.
      ASSERT_TRUE(
          env.mgr.ForwardLookup(env.geo.volume, {Value::Ref(c)}).ok());
    }

    // Invariant (Definition 3.2): every valid result equals the current
    // function value.
    Gmr* gmr = *env.mgr.Get(*id);
    ASSERT_TRUE(gmr->CheckWellFormed().ok());
    std::vector<std::pair<std::vector<Value>, Gmr::Row>> rows;
    gmr->ForEachRow([&](RowId, const Gmr::Row& row) {
      rows.emplace_back(row.args, row);
      return true;
    });
    // Under lazy rematerialization a deleted cuboid can leave a garbage
    // row behind (its reverse references were consumed by earlier
    // invalidations); such rows must be fully invalid and are dropped at
    // the next recomputation attempt. Rows with live arguments must match
    // the extension exactly.
    size_t live_arg_rows = 0;
    for (const auto& [args, row] : rows) {
      if (!env.om.Exists(args[0].as_ref())) {
        EXPECT_FALSE(row.valid[0]);
        EXPECT_FALSE(row.valid[1]);
        continue;
      }
      ++live_arg_rows;
      for (size_t col = 0; col < 2; ++col) {
        if (!row.valid[col]) continue;
        FunctionId f = col == 0 ? env.geo.volume : env.geo.weight;
        auto fresh = env.interp.Invoke(f, args);
        ASSERT_TRUE(fresh.ok());
        ASSERT_NEAR(row.results[col].as_float(), fresh->as_float(), 1e-6)
            << "step " << step << " col " << col;
      }
    }
    ASSERT_EQ(live_arg_rows, cuboids.size());
  }
  EXPECT_EQ(env.notifier->first_error().ToString(), "Ok");
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndSeeds, ConsistencyPropertyTest,
    ::testing::Combine(
        ::testing::Values(static_cast<int>(RematStrategy::kImmediate),
                          static_cast<int>(RematStrategy::kLazy)),
        ::testing::Values(101, 202, 303)));

}  // namespace
}  // namespace gom

namespace gom {
namespace {

TEST(GmrStatsTest, ValueRangeTracksValidResults) {
  TestEnv env;
  Oid iron = *env.geo.MakeMaterial(&env.om, "Iron", 7.86);
  std::vector<Oid> cuboids;
  for (int i = 1; i <= 5; ++i) {
    cuboids.push_back(*env.geo.MakeCuboid(&env.om, i, 1, 1, iron));
  }
  GmrSpec spec;
  spec.name = "volume";
  spec.arg_types = {TypeRef::Object(env.geo.cuboid)};
  spec.functions = {env.geo.volume};
  auto id = env.mgr.Materialize(spec);
  ASSERT_TRUE(id.ok());
  Gmr* gmr = *env.mgr.Get(*id);
  auto range = gmr->ValueRange(0);
  ASSERT_TRUE(range.ok());
  EXPECT_DOUBLE_EQ(range->first, 1.0);
  EXPECT_DOUBLE_EQ(range->second, 5.0);
  // Invalidated results leave the index (and thus the statistics).
  auto row = gmr->FindRow({Value::Ref(cuboids[4])});
  ASSERT_TRUE(row.ok());
  ASSERT_TRUE(gmr->InvalidateResult(*row, 0).ok());
  range = gmr->ValueRange(0);
  ASSERT_TRUE(range.ok());
  EXPECT_DOUBLE_EQ(range->second, 4.0);
}

}  // namespace
}  // namespace gom
