// GOMql hardening against untrusted bytes: truncated, garbled and
// oversized statements driven through the full lexer → parser → planner
// pipeline. Every malformed input must come back as a Status — never a
// throw, an abort, or a stack overflow. (The library bans exceptions on
// API paths; an escape here would tear down the whole test binary, so
// merely *finishing* these tests is the assertion.)

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "gomql/parser.h"
#include "workload/session.h"
#include "workload/stack.h"

namespace gom {
namespace {

class GomqlFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::StackOptions opts;
    opts.num_cuboids = 8;
    opts.materialize_volume = true;
    stack_ = workload::MakeCompanyStack(opts);
    ASSERT_TRUE(stack_->setup.ok()) << stack_->setup.ToString();
    session_ = stack_->env.MakeSession();
  }

  /// Runs the statement through the complete pipeline; the planner is
  /// reached whenever the parser accepts. Returns whether it succeeded so
  /// tests can also assert specific rejections.
  bool Run(const std::string& text) {
    auto rows = session_->RunGomql(text);
    return rows.ok();
  }

  std::unique_ptr<workload::CompanyStack> stack_;
  workload::Session* session_ = nullptr;
};

constexpr char kValid[] =
    "range c: Cuboid retrieve c.volume where c.volume > 20.0 and "
    "c.Mat.Name = \"Iron\"";

TEST_F(GomqlFuzzTest, ValidStatementStillWorks) {
  EXPECT_TRUE(Run(kValid));
}

TEST_F(GomqlFuzzTest, EveryPrefixFailsCleanly) {
  std::string valid(kValid);
  for (size_t n = 0; n < valid.size(); ++n) {
    std::string prefix = valid.substr(0, n);
    // Some prefixes happen to be complete statements; the rest must fail
    // with a Status. Either way: no escape.
    (void)Run(prefix);
  }
}

TEST_F(GomqlFuzzTest, SingleByteGarblingFailsCleanly) {
  std::string valid(kValid);
  for (size_t i = 0; i < valid.size(); ++i) {
    for (char replacement : {'\0', '\x01', '(', ')', '"', '.', '9', '\xff'}) {
      std::string garbled = valid;
      garbled[i] = replacement;
      (void)Run(garbled);
    }
  }
}

TEST_F(GomqlFuzzTest, RandomBytesFailCleanly) {
  Rng rng(137);
  for (int iter = 0; iter < 300; ++iter) {
    std::string junk;
    int64_t len = rng.UniformInt(0, 120);
    for (int64_t i = 0; i < len; ++i) {
      junk.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    (void)Run(junk);
  }
}

TEST_F(GomqlFuzzTest, DeepParenNestingIsBoundedNotStackOverflow) {
  // 100k nested parens would overflow the C++ stack if the parser
  // recursed freely; the depth guard must turn this into a Status.
  std::string deep = "range c: Cuboid retrieve c where ";
  deep += std::string(100'000, '(');
  deep += "c.volume > 1";
  deep += std::string(100'000, ')');
  EXPECT_FALSE(Run(deep));
}

TEST_F(GomqlFuzzTest, DeepNotAndUnaryMinusChainsAreBounded) {
  std::string nots = "range c: Cuboid retrieve c where ";
  for (int i = 0; i < 100'000; ++i) nots += "not ";
  nots += "c.volume > 1";
  EXPECT_FALSE(Run(nots));

  std::string minuses = "range c: Cuboid retrieve c where c.volume > ";
  minuses += std::string(100'000, '-');
  minuses += "1";
  EXPECT_FALSE(Run(minuses));
}

TEST_F(GomqlFuzzTest, ModeratelyDeepExpressionsStillParse) {
  // The depth bound must not reject reasonable queries.
  std::string q = "range c: Cuboid retrieve c where ";
  q += std::string(50, '(');
  q += "c.volume > 1";
  q += std::string(50, ')');
  EXPECT_TRUE(Run(q));
}

TEST_F(GomqlFuzzTest, HugeNumberLiteralIsRejectedNotThrown) {
  // 1e999... overflows double; std::stod would throw std::out_of_range.
  std::string q = "range c: Cuboid retrieve c where c.volume > 1";
  q += std::string(400, '0');
  EXPECT_FALSE(Run(q));

  std::string e = "range c: Cuboid retrieve c where c.volume > 1e99999";
  EXPECT_FALSE(Run(e));
}

TEST_F(GomqlFuzzTest, OversizedTokensFailCleanly) {
  std::string ident = "range c: Cuboid retrieve ";
  ident += std::string(1 << 20, 'x');
  EXPECT_FALSE(Run(ident));

  std::string str = "range c: Cuboid retrieve c where c.Mat.Name = \"";
  str += std::string(1 << 20, 's');
  str += "\"";
  (void)Run(str);  // lexes, parses and plans to an empty result — fine

  std::string unterminated = "range c: Cuboid retrieve c where c.Mat.Name = \"";
  unterminated += std::string(1 << 20, 's');
  EXPECT_FALSE(Run(unterminated));
}

TEST_F(GomqlFuzzTest, ManyRangeVarsParseWithoutEscape) {
  // Parser-level only: executing a 5000-way cross product would be a
  // denial-of-service all by itself, and admission control (not the
  // parser) is the layer that bounds execution cost.
  std::string q = "range ";
  for (int i = 0; i < 5'000; ++i) {
    if (i > 0) q += ", ";
    q += "v" + std::to_string(i) + ": Cuboid";
  }
  q += " retrieve v0";
  gomql::Parser parser(&stack_->env.schema, &stack_->env.registry);
  (void)parser.Parse(q);  // accepted or rejected — must not escape
}

}  // namespace
}  // namespace gom
