#include <gtest/gtest.h>

#include "funclang/printer.h"
#include "gomql/lexer.h"
#include "gomql/parser.h"
#include "gomql/planner.h"
#include "test_env.h"

namespace gom::gomql {
namespace {

// ------------------------------------------------------------------ lexer

TEST(LexerTest, TokenizesThePaperQuery) {
  auto tokens = Tokenize(
      "range c: Cuboid retrieve c where c.volume > 20.0 and "
      "c.weight > 100.0");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 16u);
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kRange);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kIdent);
  EXPECT_EQ((*tokens)[1].text, "c");
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kColon);
  EXPECT_EQ((*tokens)[3].text, "Cuboid");
  EXPECT_EQ(tokens->back().kind, TokenKind::kEnd);
}

TEST(LexerTest, NumbersStringsOperators) {
  auto tokens = Tokenize("3.25 \"Iron\" <= >= != < > = ( ) + - * /");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kNumber);
  EXPECT_DOUBLE_EQ((*tokens)[0].number, 3.25);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[1].text, "Iron");
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kLe);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kGe);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kNe);
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = Tokenize("RANGE Retrieve WHERE AND or NOT");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kRange);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kRetrieve);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kWhere);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kAnd);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kOr);
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kNot);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
  EXPECT_FALSE(Tokenize("a ? b").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
}

// ----------------------------------------------------------------- parser

class GomqlTest : public ::testing::Test {
 protected:
  GomqlTest() : parser_(&env_.schema, &env_.registry) {
    iron_ = *env_.geo.MakeMaterial(&env_.om, "Iron", 7.86);
    gold_ = *env_.geo.MakeMaterial(&env_.om, "Gold", 19.0);
    for (int i = 1; i <= 12; ++i) {
      cuboids_.push_back(*env_.geo.MakeCuboid(
          &env_.om, i, 2, 3, i % 3 == 0 ? gold_ : iron_, i * 10.0));
    }
  }

  TestEnv env_;
  Parser parser_;
  Oid iron_, gold_;
  std::vector<Oid> cuboids_;
};

TEST_F(GomqlTest, ParsesTheIntroQuery) {
  auto q = parser_.Parse(
      "range c: Cuboid retrieve c where c.volume > 20.0 and "
      "c.weight > 100.0");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->kind, ParsedQuery::Kind::kRetrieve);
  ASSERT_EQ(q->ranges.size(), 1u);
  EXPECT_EQ(q->ranges[0].name, "c");
  EXPECT_EQ(q->ranges[0].type, env_.geo.cuboid);
  ASSERT_EQ(q->targets.size(), 1u);
  EXPECT_EQ(funclang::ExprToString(*q->targets[0]), "c");
  // c.volume resolves to the type-associated operation, not an attribute.
  EXPECT_EQ(funclang::ExprToString(*q->where),
            "((volume(c) > 20.000000) and (weight(c) > 100.000000))");
}

TEST_F(GomqlTest, ResolvesAttributePathsBySchema) {
  auto q = parser_.Parse(
      "range c: Cuboid retrieve c.Value where c.Mat.Name = \"Iron\"");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(funclang::ExprToString(*q->targets[0]), "c.Value");
  EXPECT_EQ(funclang::ExprToString(*q->where),
            "(c.Mat.Name = \"Iron\")");
}

TEST_F(GomqlTest, ResolvesOperationWithArguments) {
  auto q = parser_.Parse(
      "range c: Cuboid, d: Cuboid retrieve c.V1.dist(d.V1)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(funclang::ExprToString(*q->targets[0]), "dist(c.V1, d.V1)");
}

TEST_F(GomqlTest, ParsesMaterializeStatement) {
  auto q = parser_.Parse("range c: Cuboid materialize c.volume, c.weight");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->kind, ParsedQuery::Kind::kMaterialize);
  ASSERT_EQ(q->targets.size(), 2u);
  EXPECT_EQ(funclang::ExprToString(*q->targets[0]), "volume(c)");
}

TEST_F(GomqlTest, ParseErrors) {
  EXPECT_FALSE(parser_.Parse("retrieve c").ok());             // no range
  EXPECT_FALSE(parser_.Parse("range c Cuboid retrieve c").ok());
  EXPECT_FALSE(parser_.Parse("range c: NoSuchType retrieve c").ok());
  EXPECT_FALSE(parser_.Parse("range c: Cuboid retrieve x").ok());  // unbound
  EXPECT_FALSE(
      parser_.Parse("range c: Cuboid retrieve c.NoSuchAttr").ok());
  EXPECT_FALSE(
      parser_.Parse("range c: Cuboid retrieve c where c.volume >").ok());
  EXPECT_FALSE(
      parser_.Parse("range c: Cuboid retrieve c trailing garbage").ok());
}

TEST_F(GomqlTest, OperatorPrecedence) {
  auto q = parser_.Parse(
      "range c: Cuboid retrieve c where c.Value > 1 + 2 * 3 or "
      "not c.Value < 0 and c.Value = 5");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  // or is outermost; * binds tighter than +; not applies to the comparison.
  EXPECT_EQ(funclang::ExprToString(*q->where),
            "((c.Value > (1.000000 + (2.000000 * 3.000000))) or "
            "(not (c.Value < 0.000000) and (c.Value = 5.000000)))");
}

// ----------------------------------------------------------------- planner

TEST_F(GomqlTest, MaterializeStatementCreatesGmr) {
  Planner planner(&env_.om, &env_.interp, &env_.mgr, &env_.registry);
  auto q = parser_.Parse("range c: Cuboid materialize c.volume, c.weight");
  ASSERT_TRUE(q.ok());
  auto gmr_id = planner.ExecuteMaterialize(*q);
  ASSERT_TRUE(gmr_id.ok()) << gmr_id.status().ToString();
  EXPECT_TRUE(env_.mgr.IsMaterialized(env_.geo.volume));
  EXPECT_TRUE(env_.mgr.IsMaterialized(env_.geo.weight));
  EXPECT_EQ((*env_.mgr.Get(*gmr_id))->live_rows(), cuboids_.size());
}

TEST_F(GomqlTest, RestrictedMaterializeFromWhereClause) {
  Planner planner(&env_.om, &env_.interp, &env_.mgr, &env_.registry);
  auto q = parser_.Parse(
      "range c: Cuboid materialize c.volume "
      "where c.Mat.Name = \"Iron\"");
  ASSERT_TRUE(q.ok());
  auto gmr_id = planner.ExecuteMaterialize(*q);
  ASSERT_TRUE(gmr_id.ok()) << gmr_id.status().ToString();
  // 12 cuboids, every third gold → 8 iron rows.
  EXPECT_EQ((*env_.mgr.Get(*gmr_id))->live_rows(), 8u);
}

TEST_F(GomqlTest, PlannerPrefersGmrBackwardWhenAvailable) {
  Planner planner(&env_.om, &env_.interp, &env_.mgr, &env_.registry);
  ASSERT_TRUE(planner
                  .Run(*parser_.Parse(
                      "range c: Cuboid materialize c.volume"))
                  .ok());
  auto q = parser_.Parse(
      "range c: Cuboid retrieve c where c.volume > 20 and c.volume < 50");
  ASSERT_TRUE(q.ok());
  auto plan = planner.PlanRetrieve(*q);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->alternatives.size(), 2u);
  EXPECT_EQ(plan->chosen_alternative().kind,
            PlanAlternative::Kind::kGmrBackward);
  EXPECT_LT(plan->chosen_alternative().estimated_cost,
            plan->alternatives[0].estimated_cost);
  std::string explain = plan->Explain(&env_.registry);
  EXPECT_NE(explain.find("GmrBackward"), std::string::npos);
  EXPECT_NE(explain.find("ExtensionScan"), std::string::npos);
}

TEST_F(GomqlTest, PlanExecutionMatchesScanExecution) {
  Planner planner(&env_.om, &env_.interp, &env_.mgr, &env_.registry);
  std::string text =
      "range c: Cuboid retrieve c.Value where c.volume > 20 and "
      "c.volume < 50 and c.Mat.Name = \"Iron\"";
  auto q = parser_.Parse(text);
  ASSERT_TRUE(q.ok());
  // Without materialization: extension scan.
  auto scan_rows = planner.Run(*q);
  ASSERT_TRUE(scan_rows.ok()) << scan_rows.status().ToString();
  // With materialization: index plan with a residual material filter.
  ASSERT_TRUE(planner
                  .Run(*parser_.Parse(
                      "range c: Cuboid materialize c.volume"))
                  .ok());
  auto plan = planner.PlanRetrieve(*q);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->chosen_alternative().kind,
            PlanAlternative::Kind::kGmrBackward);
  EXPECT_NE(plan->chosen_alternative().residual, nullptr);
  auto gmr_rows = planner.Execute(*plan);
  ASSERT_TRUE(gmr_rows.ok()) << gmr_rows.status().ToString();
  // Same multiset of Value targets.
  auto key = [](const std::vector<Value>& row) {
    return row[0].as_float();
  };
  std::multiset<double> a, b;
  for (const auto& row : *scan_rows) a.insert(key(row));
  for (const auto& row : *gmr_rows) b.insert(key(row));
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST_F(GomqlTest, RestrictedGmrUsedOnlyWhenSigmaImpliesP) {
  Planner planner(&env_.om, &env_.interp, &env_.mgr, &env_.registry);
  // Materialize volume restricted to Value >= 50.
  ASSERT_TRUE(planner
                  .Run(*parser_.Parse(
                      "range c: Cuboid materialize c.volume "
                      "where c.Value >= 50"))
                  .ok());
  // σ' implies p → the restricted GMR is applicable.
  auto strong = parser_.Parse(
      "range c: Cuboid retrieve c where c.volume > 10 and c.Value > 60");
  ASSERT_TRUE(strong.ok());
  auto plan = planner.PlanRetrieve(*strong);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->chosen_alternative().kind,
            PlanAlternative::Kind::kGmrBackward);
  // σ' does not imply p → scan (the GMR would miss cheap cuboids).
  auto weak = parser_.Parse(
      "range c: Cuboid retrieve c where c.volume > 10 and c.Value > 20");
  ASSERT_TRUE(weak.ok());
  plan = planner.PlanRetrieve(*weak);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->alternatives.size(), 1u);
  EXPECT_EQ(plan->chosen_alternative().kind,
            PlanAlternative::Kind::kExtensionScan);
  // And both plans return correct answers.
  auto strong_rows = planner.Run(*strong);
  ASSERT_TRUE(strong_rows.ok());
  size_t expected = 0;
  for (Oid c : cuboids_) {
    double vol =
        env_.interp.Invoke(env_.geo.volume, {Value::Ref(c)})->as_float();
    double val = env_.om.GetAttribute(c, "Value")->as_float();
    if (vol > 10 && val > 60) ++expected;
  }
  EXPECT_EQ(strong_rows->size(), expected);
}

TEST_F(GomqlTest, EqualityBoundUsesIndexPoint) {
  Planner planner(&env_.om, &env_.interp, &env_.mgr, &env_.registry);
  ASSERT_TRUE(planner
                  .Run(*parser_.Parse(
                      "range c: Cuboid materialize c.volume"))
                  .ok());
  // volume(c) = 6·i for dims (i, 2, 3): pick i = 7 → 42.
  auto q = parser_.Parse("range c: Cuboid retrieve c where c.volume = 42");
  ASSERT_TRUE(q.ok());
  auto rows = planner.Run(*q);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].as_ref(), cuboids_[6]);
}

TEST_F(GomqlTest, MultiRangeQueryUsesTwoColumnGmr) {
  // The §6 shape: a two-argument materialized function queried backward.
  Oid r1 = *env_.geo.MakeRobot(&env_.om, 0, 0, 0);
  Oid r2 = *env_.geo.MakeRobot(&env_.om, 100, 0, 0);
  (void)r1, (void)r2;
  Planner planner(&env_.om, &env_.interp, &env_.mgr, &env_.registry);
  ASSERT_TRUE(planner
                  .Run(*parser_.Parse(
                      "range c: Cuboid, r: Robot materialize c.distance(r)"))
                  .ok());
  auto q = parser_.Parse(
      "range c: Cuboid, r: Robot retrieve c, r "
      "where c.distance(r) < 30 and c.Value > 50");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto plan = planner.PlanRetrieve(*q);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->chosen_alternative().kind,
            PlanAlternative::Kind::kGmrBackward);
  auto rows = planner.Execute(*plan);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  // Oracle: nested-loop evaluation.
  size_t expected = 0;
  for (Oid c : cuboids_) {
    for (Oid r : env_.om.Extent(env_.geo.robot)) {
      double d = env_.interp
                     .Invoke(env_.geo.distance,
                             {Value::Ref(c), Value::Ref(r)})
                     ->as_float();
      double val = env_.om.GetAttribute(c, "Value")->as_float();
      if (d < 30 && val > 50) ++expected;
    }
  }
  EXPECT_EQ(rows->size(), expected);
  EXPECT_GT(expected, 0u);
}

TEST_F(GomqlTest, MultiRangeScanWithoutGmr) {
  Oid r1 = *env_.geo.MakeRobot(&env_.om, 5, 5, 5);
  (void)r1;
  Planner planner(&env_.om, &env_.interp, &env_.mgr, &env_.registry);
  auto q = parser_.Parse(
      "range c: Cuboid, r: Robot retrieve c where c.distance(r) < 1000");
  ASSERT_TRUE(q.ok());
  auto plan = planner.PlanRetrieve(*q);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->chosen_alternative().kind,
            PlanAlternative::Kind::kExtensionScan);
  auto rows = planner.Execute(*plan);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), cuboids_.size());  // 12 cuboids x 1 robot
}

TEST_F(GomqlTest, AggregateRetrieveSumAvgCountMinMax) {
  // The paper's forward query shape: retrieve sum(c.weight).
  Planner planner(&env_.om, &env_.interp, &env_.mgr, &env_.registry);
  auto sum_q = parser_.Parse(
      "range c: Cuboid retrieve sum(c.weight) where c.Mat.Name = \"Iron\"");
  ASSERT_TRUE(sum_q.ok()) << sum_q.status().ToString();
  EXPECT_EQ(sum_q->aggregate, QueryAggregate::kSum);
  auto rows = planner.Run(*sum_q);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1u);
  double expected = 0;
  for (Oid c : cuboids_) {
    if (env_.om.GetAttribute(c, "Mat")->as_ref() != iron_) continue;
    expected +=
        env_.interp.Invoke(env_.geo.weight, {Value::Ref(c)})->as_float();
  }
  EXPECT_NEAR((*rows)[0][0].as_float(), expected, 1e-6);

  auto count_q = parser_.Parse("range c: Cuboid retrieve count(c)");
  ASSERT_TRUE(count_q.ok());
  rows = planner.Run(*count_q);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0][0].as_int(),
            static_cast<int64_t>(cuboids_.size()));

  auto max_q = parser_.Parse("range c: Cuboid retrieve max(c.volume)");
  ASSERT_TRUE(max_q.ok());
  rows = planner.Run(*max_q);
  ASSERT_TRUE(rows.ok());
  EXPECT_DOUBLE_EQ((*rows)[0][0].as_float(), 12.0 * 6);  // dims (12,2,3)

  auto min_empty = parser_.Parse(
      "range c: Cuboid retrieve min(c.volume) where c.Value > 100000");
  ASSERT_TRUE(min_empty.ok());
  EXPECT_EQ(planner.Run(*min_empty).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(GomqlTest, AggregateOverMaterializedColumnUsesIndexPlan) {
  Planner planner(&env_.om, &env_.interp, &env_.mgr, &env_.registry);
  ASSERT_TRUE(planner
                  .Run(*parser_.Parse("range c: Cuboid materialize c.volume"))
                  .ok());
  auto q = parser_.Parse(
      "range c: Cuboid retrieve avg(c.Value) where c.volume > 30");
  ASSERT_TRUE(q.ok());
  auto plan = planner.PlanRetrieve(*q);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->chosen_alternative().kind,
            PlanAlternative::Kind::kGmrBackward);
  auto rows = planner.Execute(*plan);
  ASSERT_TRUE(rows.ok());
  double expected_sum = 0;
  size_t n = 0;
  for (Oid c : cuboids_) {
    double vol =
        env_.interp.Invoke(env_.geo.volume, {Value::Ref(c)})->as_float();
    if (vol > 30) {
      expected_sum += env_.om.GetAttribute(c, "Value")->as_float();
      ++n;
    }
  }
  ASSERT_GT(n, 0u);
  EXPECT_NEAR((*rows)[0][0].as_float(), expected_sum / n, 1e-9);
}

}  // namespace
}  // namespace gom::gomql
