// Unit tests for the group-commit layer: leader election and batching,
// the already-durable short circuit, error attribution on failed flushes,
// and the relaxed/strict intent-fsync modes on the WAL surface.

#include "storage/group_commit.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/sim_clock.h"
#include "storage/fault_injector.h"
#include "storage/sim_disk.h"
#include "storage/wal.h"

namespace gom {
namespace {

struct GcRig {
  GcRig() : disk(&clock, CostModel::Default()), wal(&disk) {}
  SimClock clock;
  SimDisk disk;
  WriteAheadLog wal;
};

std::vector<uint8_t> Tag(uint8_t b) { return std::vector<uint8_t>(8, b); }

TEST(GroupCommitTest, ConcurrentCommittersBatchIntoFewerFlushes) {
  GcRig rig;
  // A device flush that takes real time: while the leader is inside it,
  // other committers append and queue up, which is the window batching
  // exploits. Instantaneous writes would retire every commit solo.
  rig.disk.set_write_stall_us(200);
  GroupCommitOptions gopts;
  gopts.max_group_delay_us = 100;
  rig.wal.EnableGroupCommit(gopts);
  GroupCommitter* gc = rig.wal.group_committer();
  ASSERT_NE(gc, nullptr);

  constexpr size_t kThreads = 4;
  constexpr size_t kCommitsPerThread = 50;
  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kCommitsPerThread; ++i) {
        auto lsn = rig.wal.Append(WalRecordType::kUpdateCommit,
                                  Tag(static_cast<uint8_t>(t)));
        if (!lsn.ok() || !gc->CommitUpTo(*lsn).ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(failures.load(), 0u);

  auto snap = gc->snapshot();
  EXPECT_EQ(snap.commits, kThreads * kCommitsPerThread);
  // Every commit was durable when CommitUpTo returned, yet leaders
  // performed strictly fewer device flushes than there were commits.
  EXPECT_LT(snap.fsyncs, snap.commits);
  EXPECT_GT(snap.piggybacked, 0u);
  EXPECT_GE(snap.mean_group, 1.0);
  EXPECT_GE(snap.max_group, 2u);
  EXPECT_EQ(rig.wal.flushed_lsn(), rig.wal.last_lsn());
}

TEST(GroupCommitTest, AlreadyDurableCommitsSkipTheDevice) {
  GcRig rig;
  rig.wal.EnableGroupCommit(GroupCommitOptions{});
  GroupCommitter* gc = rig.wal.group_committer();

  auto lsn = rig.wal.Append(WalRecordType::kUpdateCommit, Tag(1));
  ASSERT_TRUE(lsn.ok());
  ASSERT_TRUE(gc->CommitUpTo(*lsn).ok());
  uint64_t fsyncs_after_first = gc->snapshot().fsyncs;

  // Same LSN again: satisfied from durable_lsn_ without touching the disk.
  ASSERT_TRUE(gc->CommitUpTo(*lsn).ok());
  auto snap = gc->snapshot();
  EXPECT_EQ(snap.fsyncs, fsyncs_after_first);
  EXPECT_GE(snap.already_durable, 1u);

  // kNullLsn asks for nothing and is free.
  ASSERT_TRUE(gc->CommitUpTo(kNullLsn).ok());
  EXPECT_EQ(gc->snapshot().fsyncs, fsyncs_after_first);
}

TEST(GroupCommitTest, FailedFlushFailsTheCommitButNotTheStream) {
  GcRig rig;
  FaultInjector faults;
  rig.disk.SetFaultInjector(&faults);
  rig.wal.EnableGroupCommit(GroupCommitOptions{});
  GroupCommitter* gc = rig.wal.group_committer();

  auto l1 = rig.wal.Append(WalRecordType::kUpdateCommit, Tag(1));
  ASSERT_TRUE(l1.ok());
  faults.FailAfter(0, FaultInjector::Kind::kWriteError);
  Status st = gc->CommitUpTo(*l1);
  EXPECT_FALSE(st.ok()) << "a failed device flush must fail the commit";

  // The device recovers; the stream must not be wedged: a later commit
  // elects a fresh leader, retries the flush, and succeeds — covering the
  // earlier record too (log flushes are prefix flushes).
  auto l2 = rig.wal.Append(WalRecordType::kUpdateCommit, Tag(2));
  ASSERT_TRUE(l2.ok());
  ASSERT_TRUE(gc->CommitUpTo(*l2).ok());
  EXPECT_EQ(rig.wal.flushed_lsn(), *l2);
}

TEST(GroupCommitTest, RelaxedIntentFsyncDefersTheDeviceWrite) {
  GcRig rig;
  rig.wal.EnableGroupCommit(GroupCommitOptions{});  // relaxed default
  ASSERT_FALSE(rig.wal.group_committer()->strict_intent_fsync());

  auto lsn = rig.wal.Append(WalRecordType::kUpdateIntent, Tag(1));
  ASSERT_TRUE(lsn.ok());
  ASSERT_TRUE(rig.wal.CommitIntent(*lsn).ok());
  // The intent was acknowledged without a device write: durability rides
  // a later group flush (or the buffer pool's flush-log-before-dirty-page
  // rule when a mutated base page is written back).
  EXPECT_EQ(rig.wal.flushed_lsn(), kNullLsn);
  EXPECT_GT(rig.wal.unflushed_bytes(), 0u);

  // A dependent record commits later; one flush covers the whole prefix,
  // so the intent can never be lost while anything after it survives.
  auto remat = rig.wal.Append(WalRecordType::kRematResult, Tag(2));
  ASSERT_TRUE(remat.ok());
  ASSERT_TRUE(rig.wal.group_committer()->CommitUpTo(*remat).ok());
  EXPECT_EQ(rig.wal.flushed_lsn(), *remat);

  WriteAheadLog reopened(&rig.disk);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.recovered_records(), 2u);
}

TEST(GroupCommitTest, StrictIntentFsyncRestoresEagerDurability) {
  GcRig rig;
  GroupCommitOptions gopts;
  gopts.strict_intent_fsync = true;
  rig.wal.EnableGroupCommit(gopts);
  ASSERT_TRUE(rig.wal.group_committer()->strict_intent_fsync());

  auto lsn = rig.wal.Append(WalRecordType::kUpdateIntent, Tag(1));
  ASSERT_TRUE(lsn.ok());
  ASSERT_TRUE(rig.wal.CommitIntent(*lsn).ok());
  EXPECT_EQ(rig.wal.flushed_lsn(), *lsn);  // durable before the mutation
}

TEST(GroupCommitTest, CommitIntentWithoutGroupCommitFlushesDirect) {
  GcRig rig;  // no EnableGroupCommit: the pre-group-commit configuration
  auto lsn = rig.wal.Append(WalRecordType::kUpdateIntent, Tag(1));
  ASSERT_TRUE(lsn.ok());
  ASSERT_TRUE(rig.wal.CommitIntent(*lsn).ok());
  EXPECT_EQ(rig.wal.flushed_lsn(), *lsn);
}

}  // namespace
}  // namespace gom
