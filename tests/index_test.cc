#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "index/bplus_tree.h"
#include "index/grid_file.h"
#include "index/hash_index.h"

namespace gom {
namespace {

// -------------------------------------------------------------- HashIndex

TEST(HashIndexTest, InsertLookupErase) {
  HashIndex idx;
  std::vector<Value> key = {Value::Ref(Oid(1)), Value::Ref(Oid(2))};
  ASSERT_TRUE(idx.Insert(key, 42).ok());
  auto row = idx.Lookup(key);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(*row, 42u);
  EXPECT_EQ(idx.Insert(key, 43).code(), StatusCode::kAlreadyExists);
  ASSERT_TRUE(idx.Erase(key).ok());
  EXPECT_EQ(idx.Lookup(key).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(idx.Erase(key).code(), StatusCode::kNotFound);
}

TEST(HashIndexTest, DistinguishesKeyKindsAndArity) {
  HashIndex idx;
  ASSERT_TRUE(idx.Insert({Value::Int(1)}, 1).ok());
  ASSERT_TRUE(idx.Insert({Value::Float(1.0)}, 2).ok());
  ASSERT_TRUE(idx.Insert({Value::Ref(Oid(1))}, 3).ok());
  ASSERT_TRUE(idx.Insert({Value::Int(1), Value::Int(1)}, 4).ok());
  EXPECT_EQ(*idx.Lookup({Value::Int(1)}), 1u);
  EXPECT_EQ(*idx.Lookup({Value::Float(1.0)}), 2u);
  EXPECT_EQ(*idx.Lookup({Value::Ref(Oid(1))}), 3u);
  EXPECT_EQ(*idx.Lookup({Value::Int(1), Value::Int(1)}), 4u);
}

TEST(HashIndexTest, ManyKeys) {
  HashIndex idx;
  for (uint64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(idx.Insert({Value::Ref(Oid(i)), Value::Int(i % 7)}, i).ok());
  }
  EXPECT_EQ(idx.size(), 5000u);
  for (uint64_t i = 0; i < 5000; i += 131) {
    EXPECT_EQ(*idx.Lookup({Value::Ref(Oid(i)), Value::Int(i % 7)}), i);
  }
}

// -------------------------------------------------------------- BPlusTree

TEST(BPlusTreeTest, InsertAndRangeScanOrdered) {
  BPlusTree tree;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.Insert(i * 1.0, i).ok());
  }
  std::vector<uint64_t> out;
  tree.RangeScan(10.0, 20.0, true, true, [&](double, uint64_t v) {
    out.push_back(v);
    return true;
  });
  ASSERT_EQ(out.size(), 11u);
  EXPECT_EQ(out.front(), 10u);
  EXPECT_EQ(out.back(), 20u);
}

TEST(BPlusTreeTest, ExclusiveBounds) {
  BPlusTree tree;
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(tree.Insert(i, i).ok());
  int count = 0;
  tree.RangeScan(2.0, 5.0, false, false, [&](double, uint64_t) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 2);  // 3, 4
}

TEST(BPlusTreeTest, DuplicateKeysDistinctValues) {
  BPlusTree tree;
  for (uint64_t v = 0; v < 200; ++v) {
    ASSERT_TRUE(tree.Insert(7.0, v).ok());
  }
  EXPECT_EQ(tree.Insert(7.0, 5).code(), StatusCode::kAlreadyExists);
  int count = 0;
  tree.RangeScan(7.0, 7.0, true, true, [&](double, uint64_t) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 200);
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST(BPlusTreeTest, EraseMissingFails) {
  BPlusTree tree;
  ASSERT_TRUE(tree.Insert(1.0, 1).ok());
  EXPECT_EQ(tree.Erase(1.0, 2).code(), StatusCode::kNotFound);
  EXPECT_EQ(tree.Erase(2.0, 1).code(), StatusCode::kNotFound);
  EXPECT_TRUE(tree.Erase(1.0, 1).ok());
  EXPECT_EQ(tree.size(), 0u);
}

TEST(BPlusTreeTest, GrowsAndShrinksThroughManyLevels) {
  BPlusTree tree;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(tree.Insert(i * 0.5, i).ok());
  }
  EXPECT_GE(tree.height(), 3u);
  ASSERT_TRUE(tree.CheckInvariants().ok());
  for (int i = 0; i < n; i += 2) {
    ASSERT_TRUE(tree.Erase(i * 0.5, i).ok());
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.size(), static_cast<size_t>(n / 2));
  int count = 0;
  tree.RangeScan(-1e9, 1e9, true, true, [&](double, uint64_t v) {
    EXPECT_EQ(v % 2, 1u);
    ++count;
    return true;
  });
  EXPECT_EQ(count, n / 2);
}

TEST(BPlusTreeTest, EarlyTerminationOfScan) {
  BPlusTree tree;
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(tree.Insert(i, i).ok());
  int count = 0;
  tree.RangeScan(0, 1e9, true, true, [&](double, uint64_t) {
    return ++count < 5;
  });
  EXPECT_EQ(count, 5);
}

/// Property test: random interleaved inserts/erases, validated against a
/// std::multimap reference after every batch.
class BPlusTreeRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BPlusTreeRandomTest, MatchesReferenceModel) {
  Rng rng(GetParam());
  BPlusTree tree;
  std::set<std::pair<double, uint64_t>> model;
  for (int step = 0; step < 4000; ++step) {
    double key = rng.UniformInt(0, 300) * 0.25;
    uint64_t value = rng.UniformInt(0, 50);
    if (rng.Bernoulli(0.6)) {
      bool expect_ok = model.insert({key, value}).second;
      EXPECT_EQ(tree.Insert(key, value).ok(), expect_ok);
    } else {
      bool expect_ok = model.erase({key, value}) > 0;
      EXPECT_EQ(tree.Erase(key, value).ok(), expect_ok);
    }
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.size(), model.size());
  // Compare a handful of ranges.
  for (int i = 0; i < 20; ++i) {
    double lo = rng.UniformInt(0, 300) * 0.25;
    double hi = lo + rng.UniformInt(0, 80) * 0.25;
    std::vector<std::pair<double, uint64_t>> got;
    tree.RangeScan(lo, hi, true, true, [&](double k, uint64_t v) {
      got.emplace_back(k, v);
      return true;
    });
    std::vector<std::pair<double, uint64_t>> want;
    for (auto it = model.lower_bound({lo, 0}); it != model.end() &&
                                               it->first <= hi;
         ++it) {
      want.push_back(*it);
    }
    EXPECT_EQ(got, want) << "range [" << lo << ", " << hi << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BPlusTreeRandomTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --------------------------------------------------------------- GridFile

TEST(GridFileTest, InsertAndBoxQuery) {
  GridFile grid(2);
  ASSERT_TRUE(grid.Insert({1.0, 1.0}, 1).ok());
  ASSERT_TRUE(grid.Insert({2.0, 2.0}, 2).ok());
  ASSERT_TRUE(grid.Insert({5.0, 5.0}, 3).ok());
  std::vector<uint64_t> out;
  grid.RangeQuery({0, 0}, {3, 3}, [&](const std::vector<double>&, uint64_t v) {
    out.push_back(v);
    return true;
  });
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<uint64_t>{1, 2}));
}

TEST(GridFileTest, DuplicateRejectedEraseWorks) {
  GridFile grid(2);
  ASSERT_TRUE(grid.Insert({1, 2}, 9).ok());
  EXPECT_EQ(grid.Insert({1, 2}, 9).code(), StatusCode::kAlreadyExists);
  ASSERT_TRUE(grid.Insert({1, 2}, 10).ok());  // same point, other value
  ASSERT_TRUE(grid.Erase({1, 2}, 9).ok());
  EXPECT_EQ(grid.Erase({1, 2}, 9).code(), StatusCode::kNotFound);
  EXPECT_EQ(grid.size(), 1u);
}

TEST(GridFileTest, SplitsUnderLoad) {
  GridFile grid(2, /*bucket_capacity=*/8);
  Rng rng(7);
  for (uint64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(grid.Insert({rng.UniformDouble(0, 100),
                             rng.UniformDouble(0, 100)},
                            i)
                    .ok());
  }
  EXPECT_GT(grid.bucket_count(), 10u);
  ASSERT_TRUE(grid.CheckInvariants().ok());
}

TEST(GridFileTest, IdenticalPointsOverflowGracefully) {
  GridFile grid(2, 4);
  for (uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(grid.Insert({3.0, 3.0}, i).ok());
  }
  ASSERT_TRUE(grid.CheckInvariants().ok());
  int count = 0;
  grid.RangeQuery({3, 3}, {3, 3}, [&](const std::vector<double>&, uint64_t) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 50);
}

TEST(GridFileTest, ThreeDimensionalBoxes) {
  GridFile grid(3, 8);
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      for (int z = 0; z < 8; ++z) {
        ASSERT_TRUE(grid.Insert({1.0 * x, 1.0 * y, 1.0 * z},
                                static_cast<uint64_t>(x * 64 + y * 8 + z))
                        .ok());
      }
    }
  }
  int count = 0;
  grid.RangeQuery({2, 2, 2}, {4, 4, 4},
                  [&](const std::vector<double>&, uint64_t) {
                    ++count;
                    return true;
                  });
  EXPECT_EQ(count, 27);
  ASSERT_TRUE(grid.CheckInvariants().ok());
}

class GridFileRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GridFileRandomTest, MatchesLinearScan) {
  Rng rng(GetParam());
  GridFile grid(2, 8);
  std::vector<std::pair<std::vector<double>, uint64_t>> model;
  for (uint64_t i = 0; i < 800; ++i) {
    std::vector<double> p = {rng.UniformInt(0, 40) * 1.0,
                             rng.UniformInt(0, 40) * 1.0};
    if (rng.Bernoulli(0.8)) {
      bool dup = false;
      for (auto& [mp, mv] : model) {
        if (mp == p && mv == i) dup = true;
      }
      if (!dup) {
        ASSERT_TRUE(grid.Insert(p, i).ok());
        model.emplace_back(p, i);
      }
    } else if (!model.empty()) {
      size_t pick = rng.UniformInt(0, model.size() - 1);
      ASSERT_TRUE(grid.Erase(model[pick].first, model[pick].second).ok());
      model.erase(model.begin() + pick);
    }
  }
  ASSERT_TRUE(grid.CheckInvariants().ok());
  for (int q = 0; q < 20; ++q) {
    std::vector<double> lo = {rng.UniformInt(0, 40) * 1.0,
                              rng.UniformInt(0, 40) * 1.0};
    std::vector<double> hi = {lo[0] + rng.UniformInt(0, 15),
                              lo[1] + rng.UniformInt(0, 15)};
    std::set<uint64_t> got;
    grid.RangeQuery(lo, hi, [&](const std::vector<double>&, uint64_t v) {
      got.insert(v);
      return true;
    });
    std::set<uint64_t> want;
    for (const auto& [p, v] : model) {
      if (p[0] >= lo[0] && p[0] <= hi[0] && p[1] >= lo[1] && p[1] <= hi[1]) {
        want.insert(v);
      }
    }
    EXPECT_EQ(got, want);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridFileRandomTest,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace gom

namespace gom {
namespace {

TEST(BPlusTreeTest, MinMaxKeys) {
  BPlusTree tree;
  double out;
  EXPECT_FALSE(tree.MinKey(&out));
  EXPECT_FALSE(tree.MaxKey(&out));
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree.Insert(i * 0.5, i).ok());
  }
  ASSERT_TRUE(tree.MinKey(&out));
  EXPECT_DOUBLE_EQ(out, 0.0);
  ASSERT_TRUE(tree.MaxKey(&out));
  EXPECT_DOUBLE_EQ(out, 249.5);
  ASSERT_TRUE(tree.Erase(0.0, 0).ok());
  ASSERT_TRUE(tree.MinKey(&out));
  EXPECT_DOUBLE_EQ(out, 0.5);
}

TEST(GridFileTest, WrongDimensionalityRejected) {
  GridFile grid(3);
  EXPECT_FALSE(grid.Insert({1.0, 2.0}, 1).ok());
  EXPECT_FALSE(grid.Erase({1.0}, 1).ok());
}

}  // namespace
}  // namespace gom
