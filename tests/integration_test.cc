#include <gtest/gtest.h>

#include <set>

#include "storage/chunked_record.h"
#include "test_env.h"
#include "workload/driver.h"

namespace gom {
namespace {

using workload::NotifyLevel;
using workload::ProgramVersion;

// ------------------------------------------------- chunked record store

class ChunkedRecordTest : public ::testing::Test {
 protected:
  ChunkedRecordTest()
      : disk_(&clock_, CostModel::Default()),
        pool_(&disk_, 64),
        storage_(&pool_),
        store_(&storage_, storage_.CreateSegment("blobs")) {}

  SimClock clock_;
  SimDisk disk_;
  BufferPool pool_;
  StorageManager storage_;
  ChunkedRecordStore store_;
};

TEST_F(ChunkedRecordTest, SmallPayloadSingleChunk) {
  std::vector<uint8_t> payload(100, 7);
  auto handle = store_.Insert(payload);
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(handle->size(), 1u);
  auto back = store_.Read(*handle);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, payload);
}

TEST_F(ChunkedRecordTest, LargePayloadSpansPages) {
  std::vector<uint8_t> payload(3 * kPageSize, 0);
  for (size_t i = 0; i < payload.size(); ++i) payload[i] = uint8_t(i * 31);
  auto handle = store_.Insert(payload);
  ASSERT_TRUE(handle.ok());
  EXPECT_GE(handle->size(), 3u);
  auto back = store_.Read(*handle);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, payload);
}

TEST_F(ChunkedRecordTest, UpdateAcrossChunkCountChanges) {
  std::vector<uint8_t> small(200, 1);
  auto handle = store_.Insert(small);
  ASSERT_TRUE(handle.ok());
  // Grow beyond one page.
  std::vector<uint8_t> big(2 * kPageSize, 2);
  ASSERT_TRUE(store_.Update(&*handle, big).ok());
  EXPECT_GE(handle->size(), 2u);
  EXPECT_EQ(*store_.Read(*handle), big);
  // Shrink back.
  std::vector<uint8_t> tiny(50, 3);
  ASSERT_TRUE(store_.Update(&*handle, tiny).ok());
  EXPECT_EQ(handle->size(), 1u);
  EXPECT_EQ(*store_.Read(*handle), tiny);
}

TEST_F(ChunkedRecordTest, DeleteFreesAllChunks) {
  std::vector<uint8_t> payload(2 * kPageSize, 9);
  auto handle = store_.Insert(payload);
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(store_.Delete(*handle).ok());
  EXPECT_FALSE(store_.Read(*handle).ok());
}

TEST_F(ChunkedRecordTest, TouchChargesIo) {
  std::vector<uint8_t> payload(3 * kPageSize, 4);
  auto handle = store_.Insert(payload);
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(pool_.EvictAll().ok());
  uint64_t reads_before = disk_.reads();
  ASSERT_TRUE(store_.Touch(*handle).ok());
  EXPECT_GE(disk_.reads(), reads_before + 3);
}

// ------------------------------------------ §5.2 / Figure 6 interaction

TEST(PaperScenarioTest, Figure6SchemaAndObjectInteraction) {
  TestEnv env;
  Oid gold = *env.geo.MakeMaterial(&env.om, "Gold", 19.0);
  Oid c3 = *env.geo.MakeCuboid(&env.om, 5, 5, 4, gold, 89.90);
  Oid valuables = *env.om.CreateCollection(env.geo.valuables);
  ASSERT_TRUE(env.om.InsertElement(valuables, Value::Ref(c3)).ok());

  // GMRs of the §5.2 example: ⟨⟨volume, weight⟩⟩ for Cuboid and
  // ⟨⟨total_value⟩⟩ for Valuables.
  GmrSpec vw;
  vw.name = "volume_weight";
  vw.arg_types = {TypeRef::Object(env.geo.cuboid)};
  vw.functions = {env.geo.volume, env.geo.weight};
  ASSERT_TRUE(env.mgr.Materialize(vw).ok());
  GmrSpec tv;
  tv.name = "total_value";
  tv.arg_types = {TypeRef::Object(env.geo.valuables)};
  tv.functions = {env.geo.total_value};
  ASSERT_TRUE(env.mgr.Materialize(tv).ok());

  // Figure 6: id31 (a vertex of id3) carries ObjDepFct = {volume, weight};
  // the cuboid itself additionally carries total_value? No — total_value
  // reads only Value, so the cuboid carries {volume, weight, total_value}.
  auto vertices = *env.geo.VerticesOf(&env.om, c3);
  auto vertex_dep = *env.om.UsedBy(vertices[0]);
  EXPECT_EQ((std::set<FunctionId>(vertex_dep->begin(), vertex_dep->end())),
            (std::set<FunctionId>{env.geo.volume, env.geo.weight}));
  auto cuboid_dep = *env.om.UsedBy(c3);
  EXPECT_EQ((std::set<FunctionId>(cuboid_dep->begin(), cuboid_dep->end())),
            (std::set<FunctionId>{env.geo.volume, env.geo.weight,
                                  env.geo.total_value}));

  // SchemaDepFct(Vertex.set_X) = {volume, weight} here (total_volume and
  // total_weight are not materialized in this scenario).
  AttrId x = (*env.schema.Get(env.geo.vertex))->AttrIndex("X");
  FidSet schema_dep = env.mgr.deps().SchemaDepFct(env.geo.vertex, x);
  EXPECT_EQ(schema_dep,
            (FidSet{env.geo.volume, env.geo.weight}));

  // The intersection ObjDepFct(id31) ∩ SchemaDepFct(Vertex.set_X)
  // coincides with ObjDepFct(id31) — the paper's observation.
  env.InstallNotifier(NotifyLevel::kObjDep);
  env.mgr.ResetStats();
  ASSERT_TRUE(env.om.SetAttribute(vertices[0], "X", Value::Float(1)).ok());
  EXPECT_EQ(env.mgr.stats().invalidations, 2u);  // volume and weight

  // set_Value on the cuboid touches only total_value.
  env.mgr.ResetStats();
  ASSERT_TRUE(env.om.SetAttribute(c3, "Value", Value::Float(100.0)).ok());
  EXPECT_EQ(env.mgr.stats().invalidations, 1u);
  auto total =
      env.mgr.ForwardLookup(env.geo.total_value, {Value::Ref(valuables)});
  ASSERT_TRUE(total.ok());
  EXPECT_DOUBLE_EQ(total->as_float(), 100.0);
}

// --------------------------------- cross-version answer equivalence

/// The strongest end-to-end property: all program versions answer every
/// query identically while the same randomized update stream runs — the
/// GMR machinery must be semantically transparent.
class VersionEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VersionEquivalenceTest, AllVersionsAgreeOnEveryQuery) {
  struct Instance {
    ProgramVersion version;
    std::unique_ptr<workload::GeoBench> bench;
  };
  std::vector<Instance> instances;
  for (ProgramVersion v :
       {ProgramVersion::kWithoutGmr, ProgramVersion::kWithGmr,
        ProgramVersion::kLazy, ProgramVersion::kInfoHiding}) {
    workload::GeoBench::Config cfg;
    cfg.num_cuboids = 60;
    cfg.buffer_pages = 64;
    cfg.version = v;
    cfg.seed = GetParam();
    instances.push_back({v, std::make_unique<workload::GeoBench>(cfg)});
    ASSERT_TRUE(instances.back().bench->setup_status().ok());
  }

  // Drive the same op sequence through every instance (the benches share
  // the seed, so their databases and random streams are identical).
  using workload::OpKind;
  std::vector<OpKind> script;
  Rng op_rng(GetParam() * 31 + 7);
  for (int i = 0; i < 60; ++i) {
    double pick = op_rng.UniformDouble(0, 1);
    if (pick < 0.25) {
      script.push_back(OpKind::kBackwardQuery);
    } else if (pick < 0.4) {
      script.push_back(OpKind::kForwardQuery);
    } else if (pick < 0.55) {
      script.push_back(OpKind::kScale);
    } else if (pick < 0.7) {
      script.push_back(OpKind::kRotate);
    } else if (pick < 0.8) {
      script.push_back(OpKind::kTranslate);
    } else if (pick < 0.9) {
      script.push_back(OpKind::kInsert);
    } else {
      script.push_back(OpKind::kDelete);
    }
  }

  for (size_t step = 0; step < script.size(); ++step) {
    std::vector<size_t> matches;
    for (Instance& inst : instances) {
      ASSERT_TRUE(inst.bench->DoOp(script[step]).ok())
          << workload::ProgramVersionName(inst.version) << " step " << step;
      if (script[step] == OpKind::kBackwardQuery) {
        matches.push_back(inst.bench->last_backward_matches());
      }
    }
    if (!matches.empty()) {
      for (size_t i = 1; i < matches.size(); ++i) {
        ASSERT_EQ(matches[i], matches[0])
            << "backward query disagreement at step " << step << " ("
            << workload::ProgramVersionName(instances[i].version) << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VersionEquivalenceTest,
                         ::testing::Values(1001, 2002, 3003, 4004));

// ----------------------------- company mixed workload, long-run invariant

TEST(CompanyIntegrationTest, RankingStaysConsistentUnderMixedLoad) {
  workload::CompanyBench::Config cfg;
  cfg.company.departments = 4;
  cfg.company.employees_per_department = 8;
  cfg.company.projects = 12;
  cfg.company.jobs_per_employee = 4;
  cfg.version = ProgramVersion::kLazy;
  cfg.seed = 5150;
  workload::CompanyBench bench(cfg);
  ASSERT_TRUE(bench.setup_status().ok());

  workload::OperationMix mix;
  mix.query_mix = {{0.5, workload::OpKind::kRankingForward},
                   {0.5, workload::OpKind::kRankingBackward}};
  mix.update_mix = {{0.7, workload::OpKind::kPromote},
                    {0.3, workload::OpKind::kNewEmployee}};
  mix.update_probability = 0.5;
  mix.num_ops = 120;
  ASSERT_TRUE(bench.RunMix(mix).ok());

  // Every valid ranking in the GMR equals a fresh evaluation; the GMR has
  // one row per live employee.
  auto loc = bench.env().mgr.Locate(bench.schema().ranking);
  ASSERT_TRUE(loc.ok());
  Gmr* gmr = *bench.env().mgr.Get(loc->first);
  EXPECT_EQ(gmr->live_rows(), bench.db().employees.size());
  size_t checked = 0;
  std::vector<std::pair<std::vector<Value>, Gmr::Row>> rows;
  gmr->ForEachRow([&](RowId, const Gmr::Row& row) {
    rows.emplace_back(row.args, row);
    return true;
  });
  for (const auto& [args, row] : rows) {
    if (!row.valid[0]) continue;
    auto fresh = bench.env().interp.Invoke(bench.schema().ranking, args);
    ASSERT_TRUE(fresh.ok());
    EXPECT_NEAR(row.results[0].as_float(), fresh->as_float(), 1e-9);
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

}  // namespace
}  // namespace gom
