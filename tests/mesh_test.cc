// Geometry-kernel tests: procedural generators against analytic ground
// truth, byte-codec round-trips (the mesh bytes are the reproducibility
// anchor of every materialized mesh function), and rejection of hostile
// encodings — truncations, bad counts, out-of-range indices.

#include "geomwl/mesh.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

namespace gom::geomwl {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(MeshTest, SphereConvergesToAnalyticAreaAndVolume) {
  const double r = 3.0;
  // Inscribed polyhedra approach from below; the relative error shrinks
  // with resolution.
  double prev_area_err = 1.0, prev_vol_err = 1.0;
  for (uint32_t n : {8u, 16u, 32u}) {
    TriangleMesh m = MakeSphere(n, 2 * n, r);
    double area_err = std::fabs(m.SurfaceArea() - 4 * kPi * r * r) /
                      (4 * kPi * r * r);
    double vol_err = std::fabs(m.SignedVolume() - 4.0 / 3.0 * kPi * r * r * r) /
                     (4.0 / 3.0 * kPi * r * r * r);
    EXPECT_LT(area_err, prev_area_err);
    EXPECT_LT(vol_err, prev_vol_err);
    prev_area_err = area_err;
    prev_vol_err = vol_err;
  }
  EXPECT_LT(prev_area_err, 0.01);
  EXPECT_LT(prev_vol_err, 0.01);
}

TEST(MeshTest, SphereIsClosedAndOutwardWound) {
  TriangleMesh m = MakeSphere(12, 24, 2.0);
  // Positive signed volume == outward winding everywhere.
  EXPECT_GT(m.SignedVolume(), 0.0);
  // Every edge of a closed 2-manifold is shared by exactly two triangles
  // with opposite orientation: each directed edge appears exactly once.
  std::vector<std::pair<uint32_t, uint32_t>> directed;
  for (size_t t = 0; t < m.triangle_count(); ++t) {
    uint32_t a = m.indices[3 * t], b = m.indices[3 * t + 1],
             c = m.indices[3 * t + 2];
    directed.push_back({a, b});
    directed.push_back({b, c});
    directed.push_back({c, a});
  }
  for (const auto& e : directed) {
    size_t fwd = 0, rev = 0;
    for (const auto& f : directed) {
      if (f == e) ++fwd;
      if (f.first == e.second && f.second == e.first) ++rev;
    }
    ASSERT_EQ(fwd, 1u) << "duplicate directed edge";
    ASSERT_EQ(rev, 1u) << "unmatched edge (open surface)";
    if (&e - directed.data() > 200) break;  // spot check is enough
  }
}

TEST(MeshTest, TorusMatchesAnalyticArea) {
  const double R = 5.0, r = 1.0;
  TriangleMesh m = MakeTorus(48, 48, R, r);
  // Area 4 pi^2 R r, volume 2 pi^2 R r^2.
  EXPECT_NEAR(m.SurfaceArea(), 4 * kPi * kPi * R * r,
              0.02 * 4 * kPi * kPi * R * r);
  EXPECT_NEAR(std::fabs(m.SignedVolume()), 2 * kPi * kPi * R * r * r,
              0.02 * 2 * kPi * kPi * R * r * r);
}

TEST(MeshTest, BoundsOfSphereAreTheEnclosingCube) {
  const double r = 2.5;
  TriangleMesh m = MakeSphere(24, 48, r);
  Aabb box = m.Bounds();
  EXPECT_NEAR(box.lo.x, -r, 0.05);
  EXPECT_NEAR(box.hi.x, r, 0.05);
  EXPECT_NEAR(box.lo.z, -r, 1e-12);  // poles are exact vertices
  EXPECT_NEAR(box.hi.z, r, 1e-12);
  EXPECT_NEAR(box.Diagonal(), 2 * r * std::sqrt(3.0), 0.2);
}

TEST(MeshTest, ScaleMeshScalesAreaQuadraticallyVolumeCubically) {
  TriangleMesh m = MakeRock(99, 12, 12, 2.0, 0.1);
  double area = m.SurfaceArea(), vol = m.SignedVolume();
  ScaleMesh(&m, 2.0);
  EXPECT_NEAR(m.SurfaceArea(), 4 * area, 1e-9 * area);
  EXPECT_NEAR(m.SignedVolume(), 8 * vol, 1e-9 * std::fabs(vol));
}

TEST(MeshTest, GeneratorsAndDeformAreDeterministic) {
  TriangleMesh a = MakeRock(1231, 16, 16, 3.0, 0.15);
  TriangleMesh b = MakeRock(1231, 16, 16, 3.0, 0.15);
  EXPECT_EQ(a.EncodeBytes(), b.EncodeBytes());

  TriangleMesh c = MakeRock(1232, 16, 16, 3.0, 0.15);
  EXPECT_NE(a.EncodeBytes(), c.EncodeBytes());

  DeformMesh(&a, 7, 0.05);
  DeformMesh(&b, 7, 0.05);
  EXPECT_EQ(a.EncodeBytes(), b.EncodeBytes());
  DeformMesh(&b, 8, 0.05);
  EXPECT_NE(a.EncodeBytes(), b.EncodeBytes());
}

TEST(MeshTest, EncodeDecodeRoundTripsBitForBit) {
  TriangleMesh m = MakeRock(4242, 20, 20, 4.0, 0.2);
  std::vector<uint8_t> bytes = m.EncodeBytes();
  EXPECT_GT(bytes.size(), 4096u);  // genuinely multi-KB

  auto back = TriangleMesh::DecodeBytes(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->vertices.size(), m.vertices.size());
  ASSERT_EQ(back->indices, m.indices);
  EXPECT_EQ(std::memcmp(back->vertices.data(), m.vertices.data(),
                        m.vertices.size() * sizeof(Vec3)),
            0);
  // Derived quantities are consequently identical, not merely close.
  EXPECT_EQ(back->SurfaceArea(), m.SurfaceArea());
  EXPECT_EQ(back->SignedVolume(), m.SignedVolume());
}

TEST(MeshTest, DecodeRejectsHostileEncodings) {
  TriangleMesh m = MakeSphere(6, 6, 1.0);
  std::vector<uint8_t> good = m.EncodeBytes();

  // Every strict prefix fails (no partial meshes).
  for (size_t n = 0; n < good.size(); n += 7) {
    std::vector<uint8_t> cut(good.begin(),
                             good.begin() + static_cast<ptrdiff_t>(n));
    EXPECT_FALSE(TriangleMesh::DecodeBytes(cut).ok()) << "prefix " << n;
  }

  // Bad magic.
  std::vector<uint8_t> bad = good;
  bad[0] ^= 0xff;
  EXPECT_FALSE(TriangleMesh::DecodeBytes(bad).ok());

  // Hostile vertex count: huge count with a tiny buffer must fail the
  // size check, not attempt a gigabyte allocation.
  bad = good;
  uint32_t huge = 0x7fffffff;
  std::memcpy(bad.data() + 4, &huge, 4);
  EXPECT_FALSE(TriangleMesh::DecodeBytes(bad).ok());

  // Index count not divisible by 3.
  bad = good;
  uint32_t nidx;
  std::memcpy(&nidx, bad.data() + 8, 4);
  uint32_t off_by_one = nidx - 1;
  std::memcpy(bad.data() + 8, &off_by_one, 4);
  EXPECT_FALSE(TriangleMesh::DecodeBytes(bad).ok());

  // Out-of-range vertex index in the tail.
  bad = good;
  uint32_t bogus = 0x00ffffff;
  std::memcpy(bad.data() + bad.size() - 4, &bogus, 4);
  EXPECT_FALSE(TriangleMesh::DecodeBytes(bad).ok());

  // Empty buffer.
  EXPECT_FALSE(TriangleMesh::DecodeBytes({}).ok());
}

TEST(MeshTest, DeformPreservesTopologyAndStaysBounded) {
  TriangleMesh m = MakeSphere(10, 20, 2.0);
  std::vector<uint32_t> indices = m.indices;
  size_t nverts = m.vertices.size();
  DeformMesh(&m, 55, 0.05);
  EXPECT_EQ(m.indices, indices);  // connectivity untouched
  EXPECT_EQ(m.vertices.size(), nverts);
  // 5% radial displacement keeps every vertex within ~5% of the sphere.
  Aabb box = m.Bounds();
  EXPECT_LT(box.hi.x, 2.0 * 1.06);
  EXPECT_GT(box.lo.x, -2.0 * 1.06);
}

}  // namespace
}  // namespace gom::geomwl
