#include <gtest/gtest.h>

#include "test_env.h"

namespace gom {
namespace {

using workload::NotifyLevel;

/// Materializing a *native* function: the path analyzer cannot see the
/// body, so the database programmer declares RelAttr explicitly (the same
/// contract as InvalidatedFct in §5.3).
class NativeMaterializationTest : public ::testing::Test {
 protected:
  NativeMaterializationTest() {
    iron_ = *env_.geo.MakeMaterial(&env_.om, "Iron", 7.86);
    c1_ = *env_.geo.MakeCuboid(&env_.om, 2, 3, 4, iron_, 10.0);
    c2_ = *env_.geo.MakeCuboid(&env_.om, 5, 5, 5, iron_, 20.0);

    // A native "footprint" function: length * width of the base (reads V1,
    // V2, V4 through the tracked context).
    footprint_ = *env_.registry.Register(funclang::FunctionDef{
        kInvalidFunctionId,
        "footprint",
        {{"self", TypeRef::Object(env_.geo.cuboid)}},
        TypeRef::Float(),
        {},
        [this](funclang::EvalContext& ctx,
               const std::vector<Value>& args) -> Result<Value> {
          GOMFM_ASSIGN_OR_RETURN(Oid self, args[0].AsRef());
          GOMFM_ASSIGN_OR_RETURN(Value v1, ctx.GetAttr(self, "V1"));
          GOMFM_ASSIGN_OR_RETURN(Value v2, ctx.GetAttr(self, "V2"));
          GOMFM_ASSIGN_OR_RETURN(Value v4, ctx.GetAttr(self, "V4"));
          GOMFM_ASSIGN_OR_RETURN(
              Value l, ctx.Invoke(env_.geo.dist, {v1, v2}));
          GOMFM_ASSIGN_OR_RETURN(
              Value w, ctx.Invoke(env_.geo.dist, {v1, v4}));
          return Value::Float(l.as_float() * w.as_float());
        },
        true});
  }

  TestEnv env_;
  Oid iron_, c1_, c2_;
  FunctionId footprint_ = kInvalidFunctionId;
};

TEST_F(NativeMaterializationTest, MaterializesAndTracksAccesses) {
  GmrSpec spec;
  spec.name = "footprint";
  spec.arg_types = {TypeRef::Object(env_.geo.cuboid)};
  spec.functions = {footprint_};
  auto id = env_.mgr.Materialize(spec);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  Gmr* gmr = *env_.mgr.Get(*id);
  auto row = gmr->Get(*gmr->FindRow({Value::Ref(c1_)}));
  ASSERT_TRUE(row.ok());
  EXPECT_DOUBLE_EQ((*row)->results[0].as_float(), 6.0);
  // The dynamic trace still populated RRR and ObjDepFct.
  auto vertices = *env_.geo.VerticesOf(&env_.om, c1_);
  EXPECT_TRUE(*env_.om.IsUsedBy(vertices[0], footprint_));
  EXPECT_TRUE(*env_.om.IsUsedBy(c1_, footprint_));
}

TEST_F(NativeMaterializationTest, DeclaredRelAttrDrivesInvalidation) {
  GmrSpec spec;
  spec.name = "footprint";
  spec.arg_types = {TypeRef::Object(env_.geo.cuboid)};
  spec.functions = {footprint_};
  ASSERT_TRUE(env_.mgr.Materialize(spec).ok());
  // Without a declaration the rewritten operations would not know about
  // footprint; the programmer supplies its relevant attributes.
  auto attr = [&](TypeId t, const char* name) {
    return funclang::RelevantProperty{
        t, (*env_.schema.Get(t))->AttrIndex(name)};
  };
  env_.mgr.DeclareRelAttr(
      footprint_,
      {attr(env_.geo.cuboid, "V1"), attr(env_.geo.cuboid, "V2"),
       attr(env_.geo.cuboid, "V4"), attr(env_.geo.vertex, "X"),
       attr(env_.geo.vertex, "Y"), attr(env_.geo.vertex, "Z")});
  env_.InstallNotifier(NotifyLevel::kObjDep);

  // A relevant update rematerializes.
  auto vertices = *env_.geo.VerticesOf(&env_.om, c1_);
  ASSERT_TRUE(env_.om.SetAttribute(vertices[1], "X", Value::Float(4)).ok());
  auto fp = env_.mgr.ForwardLookup(footprint_, {Value::Ref(c1_)});
  ASSERT_TRUE(fp.ok());
  EXPECT_DOUBLE_EQ(fp->as_float(), 12.0);
  EXPECT_EQ(env_.mgr.stats().forward_hits, 1u);  // served valid from GMR

  // An irrelevant update (Value) does not touch it.
  env_.mgr.ResetStats();
  ASSERT_TRUE(env_.om.SetAttribute(c1_, "Value", Value::Float(99)).ok());
  EXPECT_EQ(env_.mgr.stats().invalidations, 0u);
}

TEST_F(NativeMaterializationTest, RematerializeAllInvalidCatchesUp) {
  GmrSpec spec;
  spec.name = "footprint";
  spec.arg_types = {TypeRef::Object(env_.geo.cuboid)};
  spec.functions = {footprint_};
  auto id = env_.mgr.Materialize(spec);
  ASSERT_TRUE(id.ok());
  env_.mgr.set_remat_strategy(RematStrategy::kLazy);
  auto attr = [&](TypeId t, const char* name) {
    return funclang::RelevantProperty{
        t, (*env_.schema.Get(t))->AttrIndex(name)};
  };
  env_.mgr.DeclareRelAttr(footprint_, {attr(env_.geo.vertex, "X")});
  env_.InstallNotifier(NotifyLevel::kObjDep);

  auto vertices = *env_.geo.VerticesOf(&env_.om, c1_);
  ASSERT_TRUE(env_.om.SetAttribute(vertices[1], "X", Value::Float(7)).ok());
  Gmr* gmr = *env_.mgr.Get(*id);
  EXPECT_EQ(gmr->InvalidRows(0).size(), 1u);
  // The background catch-up ("when the system load falls below a
  // threshold") revalidates everything.
  ASSERT_TRUE(env_.mgr.RematerializeAllInvalid().ok());
  EXPECT_EQ(gmr->InvalidRows(0).size(), 0u);
  auto row = gmr->Get(*gmr->FindRow({Value::Ref(c1_)}));
  EXPECT_DOUBLE_EQ((*row)->results[0].as_float(), 21.0);
}

}  // namespace
}  // namespace gom
