#include <gtest/gtest.h>

#include <memory>

#include "gom/object_manager.h"
#include "gom/schema.h"
#include "gom/value.h"
#include "storage/storage_manager.h"

namespace gom {
namespace {

// ------------------------------------------------------------------ Value

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).as_bool(), true);
  EXPECT_EQ(Value::Int(-3).as_int(), -3);
  EXPECT_DOUBLE_EQ(Value::Float(2.5).as_float(), 2.5);
  EXPECT_EQ(Value::String("x").as_string(), "x");
  EXPECT_EQ(Value::Ref(Oid(7)).as_ref(), Oid(7));
  EXPECT_EQ(Value::Composite({Value::Int(1)}).elements().size(), 1u);
}

TEST(ValueTest, NumericCoercion) {
  EXPECT_DOUBLE_EQ(*Value::Int(4).AsDouble(), 4.0);
  EXPECT_DOUBLE_EQ(*Value::Float(4.5).AsDouble(), 4.5);
  EXPECT_FALSE(Value::String("4").AsDouble().ok());
}

TEST(ValueTest, EqualityIsDeep) {
  EXPECT_EQ(Value::Composite({Value::Int(1), Value::String("a")}),
            Value::Composite({Value::Int(1), Value::String("a")}));
  EXPECT_NE(Value::Composite({Value::Int(1)}),
            Value::Composite({Value::Int(2)}));
  EXPECT_NE(Value::Int(1), Value::Float(1.0));  // different kinds
}

TEST(ValueTest, CompareAcrossNumerics) {
  EXPECT_EQ(*Value::Int(1).Compare(Value::Float(1.0)), 0);
  EXPECT_EQ(*Value::Int(1).Compare(Value::Float(2.0)), -1);
  EXPECT_EQ(*Value::Float(3.0).Compare(Value::Int(2)), 1);
  EXPECT_EQ(*Value::String("a").Compare(Value::String("b")), -1);
  EXPECT_FALSE(Value::String("a").Compare(Value::Int(1)).ok());
}

TEST(ValueTest, SerializationRoundTrip) {
  std::vector<Value> cases = {
      Value::Null(),
      Value::Bool(true),
      Value::Int(-1234567890123),
      Value::Float(3.14159),
      Value::String("Gold"),
      Value::Ref(Oid(42)),
      Value::Composite({Value::Int(1), Value::Composite({Value::String("x")}),
                        Value::Ref(Oid(9))}),
  };
  for (const Value& v : cases) {
    std::vector<uint8_t> buf;
    v.Serialize(&buf);
    EXPECT_EQ(buf.size(), v.SerializedSize()) << v.ToString();
    const uint8_t* cursor = buf.data();
    auto back = Value::Deserialize(&cursor, buf.data() + buf.size());
    ASSERT_TRUE(back.ok()) << v.ToString();
    EXPECT_EQ(*back, v);
    EXPECT_EQ(cursor, buf.data() + buf.size());
  }
}

TEST(ValueTest, DeserializeRejectsTruncation) {
  std::vector<uint8_t> buf;
  Value::String("hello world").Serialize(&buf);
  for (size_t cut = 1; cut < buf.size(); ++cut) {
    const uint8_t* cursor = buf.data();
    EXPECT_FALSE(Value::Deserialize(&cursor, buf.data() + cut).ok());
  }
}

// ----------------------------------------------------------------- Schema

class SchemaTest : public ::testing::Test {
 protected:
  Schema schema_;
};

TEST_F(SchemaTest, DeclareTupleTypeWithAttributes) {
  auto vertex = schema_.DeclareTupleType(
      {"Vertex",
       kInvalidTypeId,
       {{"X", TypeRef::Float()}, {"Y", TypeRef::Float()},
        {"Z", TypeRef::Float()}},
       {"X", "set_X", "Y", "set_Y", "Z", "set_Z"},
       false});
  ASSERT_TRUE(vertex.ok());
  auto desc = schema_.Get(*vertex);
  ASSERT_TRUE(desc.ok());
  EXPECT_EQ((*desc)->name, "Vertex");
  EXPECT_EQ((*desc)->attributes.size(), 3u);
  EXPECT_TRUE((*desc)->IsPublic("set_X"));
  EXPECT_FALSE((*desc)->IsPublic("volume"));
}

TEST_F(SchemaTest, DuplicateTypeNameRejected) {
  ASSERT_TRUE(schema_.DeclareTupleType({"T", kInvalidTypeId, {}, {}, false}).ok());
  EXPECT_EQ(
      schema_.DeclareTupleType({"T", kInvalidTypeId, {}, {}, false}).status().code(),
      StatusCode::kAlreadyExists);
}

TEST_F(SchemaTest, InheritanceCopiesAttributes) {
  auto person = schema_.DeclareTupleType(
      {"Person", kInvalidTypeId, {{"Name", TypeRef::String()}}, {"Name"}, false});
  ASSERT_TRUE(person.ok());
  auto employee = schema_.DeclareTupleType(
      {"Employee", *person, {{"Salary", TypeRef::Float()}}, {"Salary"}, false});
  ASSERT_TRUE(employee.ok());
  auto desc = schema_.Get(*employee);
  ASSERT_TRUE(desc.ok());
  ASSERT_EQ((*desc)->attributes.size(), 2u);
  EXPECT_EQ((*desc)->attributes[0].name, "Name");  // inherited first
  EXPECT_EQ((*desc)->attributes[1].name, "Salary");
  EXPECT_TRUE(schema_.IsSubtypeOf(*employee, *person));
  EXPECT_FALSE(schema_.IsSubtypeOf(*person, *employee));
  EXPECT_TRUE(schema_.IsSubtypeOf(*person, kInvalidTypeId));  // ANY
}

TEST_F(SchemaTest, DuplicateAttributeViaInheritanceRejected) {
  auto base = schema_.DeclareTupleType(
      {"Base", kInvalidTypeId, {{"A", TypeRef::Int()}}, {}, false});
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(schema_
                .DeclareTupleType(
                    {"Derived", *base, {{"A", TypeRef::Float()}}, {}, false})
                .status()
                .code(),
            StatusCode::kAlreadyExists);
}

TEST_F(SchemaTest, SetAndListTypes) {
  auto elem = schema_.DeclareTupleType({"Cuboid", kInvalidTypeId, {}, {}, false});
  ASSERT_TRUE(elem.ok());
  auto workpieces =
      schema_.DeclareSetType("Workpieces", TypeRef::Object(*elem));
  ASSERT_TRUE(workpieces.ok());
  auto desc = schema_.Get(*workpieces);
  ASSERT_TRUE(desc.ok());
  EXPECT_EQ((*desc)->kind, StructKind::kSet);
  EXPECT_EQ((*desc)->element_type.object_type, *elem);
  auto lst = schema_.DeclareListType("CuboidList", TypeRef::Object(*elem));
  ASSERT_TRUE(lst.ok());
  EXPECT_EQ((*schema_.Get(*lst))->kind, StructKind::kList);
}

TEST_F(SchemaTest, ConformsWithSubtypingAndWidening) {
  auto person = schema_.DeclareTupleType({"Person", kInvalidTypeId, {}, {}, false});
  auto employee = schema_.DeclareTupleType({"Employee", *person, {}, {}, false});
  EXPECT_TRUE(schema_.Conforms(TypeRef::Object(*employee),
                               TypeRef::Object(*person)));
  EXPECT_FALSE(schema_.Conforms(TypeRef::Object(*person),
                                TypeRef::Object(*employee)));
  EXPECT_TRUE(schema_.Conforms(TypeRef::Int(), TypeRef::Float()));
  EXPECT_FALSE(schema_.Conforms(TypeRef::Float(), TypeRef::Int()));
  EXPECT_TRUE(schema_.Conforms(TypeRef::Object(*person), TypeRef::Any()));
}

TEST_F(SchemaTest, ResolveAttribute) {
  auto vertex = schema_.DeclareTupleType(
      {"Vertex", kInvalidTypeId,
       {{"X", TypeRef::Float()}, {"Y", TypeRef::Float()}}, {}, false});
  ASSERT_TRUE(vertex.ok());
  auto resolved = schema_.ResolveAttribute(*vertex, "Y");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->first, 1u);
  EXPECT_EQ(resolved->second.tag, TypeRef::Tag::kFloat);
  EXPECT_EQ(schema_.ResolveAttribute(*vertex, "W").status().code(),
            StatusCode::kNotFound);
}

TEST_F(SchemaTest, SubtypesOfEnumeratesTransitively) {
  auto a = schema_.DeclareTupleType({"A", kInvalidTypeId, {}, {}, false});
  auto b = schema_.DeclareTupleType({"B", *a, {}, {}, false});
  auto c = schema_.DeclareTupleType({"C", *b, {}, {}, false});
  auto d = schema_.DeclareTupleType({"D", kInvalidTypeId, {}, {}, false});
  (void)d;
  auto subs = schema_.SubtypesOf(*a);
  EXPECT_EQ(subs.size(), 3u);
  EXPECT_TRUE(std::count(subs.begin(), subs.end(), *c));
}

// ----------------------------------------------------------- ObjectManager

class ObjectManagerTest : public ::testing::Test {
 protected:
  ObjectManagerTest()
      : disk_(&clock_, CostModel::Default()),
        pool_(&disk_, 150),
        storage_(&pool_),
        om_(&schema_, &storage_, &clock_) {
    vertex_ = *schema_.DeclareTupleType(
        {"Vertex",
         kInvalidTypeId,
         {{"X", TypeRef::Float()}, {"Y", TypeRef::Float()},
          {"Z", TypeRef::Float()}},
         {},
         false});
    material_ = *schema_.DeclareTupleType(
        {"Material",
         kInvalidTypeId,
         {{"Name", TypeRef::String()}, {"SpecWeight", TypeRef::Float()}},
         {},
         false});
    workpieces_ = *schema_.DeclareSetType("Workpieces",
                                          TypeRef::Object(material_));
  }

  SimClock clock_;
  SimDisk disk_;
  BufferPool pool_;
  StorageManager storage_;
  Schema schema_;
  ObjectManager om_;
  TypeId vertex_, material_, workpieces_;
};

TEST_F(ObjectManagerTest, CreateAndReadTuple) {
  auto oid = om_.CreateTuple(
      vertex_, {Value::Float(1.0), Value::Float(2.0), Value::Float(3.0)});
  ASSERT_TRUE(oid.ok());
  auto y = om_.GetAttribute(*oid, "Y");
  ASSERT_TRUE(y.ok());
  EXPECT_DOUBLE_EQ(y->as_float(), 2.0);
}

TEST_F(ObjectManagerTest, MissingTrailingFieldsDefaultToNull) {
  auto oid = om_.CreateTuple(material_, {Value::String("Iron")});
  ASSERT_TRUE(oid.ok());
  EXPECT_TRUE(om_.GetAttribute(*oid, "SpecWeight")->is_null());
}

TEST_F(ObjectManagerTest, TypeCheckedWrites) {
  auto oid = om_.CreateTuple(material_, {Value::String("Iron"), Value::Float(7.86)});
  ASSERT_TRUE(oid.ok());
  EXPECT_TRUE(om_.SetAttribute(*oid, "SpecWeight", Value::Float(7.9)).ok());
  EXPECT_TRUE(om_.SetAttribute(*oid, "SpecWeight", Value::Int(8)).ok());
  EXPECT_EQ(om_.SetAttribute(*oid, "SpecWeight", Value::String("x")).code(),
            StatusCode::kTypeMismatch);
}

TEST_F(ObjectManagerTest, SetInsertRemoveSemantics) {
  auto set = om_.CreateCollection(workpieces_);
  ASSERT_TRUE(set.ok());
  auto m1 = om_.CreateTuple(material_, {Value::String("Iron"), Value::Float(7.86)});
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(om_.InsertElement(*set, Value::Ref(*m1)).ok());
  EXPECT_EQ(om_.InsertElement(*set, Value::Ref(*m1)).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(*om_.ElementCount(*set), 1u);
  ASSERT_TRUE(om_.RemoveElement(*set, Value::Ref(*m1)).ok());
  EXPECT_EQ(om_.RemoveElement(*set, Value::Ref(*m1)).code(),
            StatusCode::kNotFound);
}

TEST_F(ObjectManagerTest, ExtentTracksCreateAndDelete) {
  auto a = om_.CreateTuple(vertex_, {});
  auto b = om_.CreateTuple(vertex_, {});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(om_.ExtentExact(vertex_).size(), 2u);
  ASSERT_TRUE(om_.Delete(*a).ok());
  ASSERT_EQ(om_.ExtentExact(vertex_).size(), 1u);
  EXPECT_EQ(om_.ExtentExact(vertex_)[0], *b);
  EXPECT_FALSE(om_.Exists(*a));
}

TEST_F(ObjectManagerTest, ExtentIncludesSubtypes) {
  TypeId sub = *schema_.DeclareTupleType({"Vertex2", vertex_, {}, {}, false});
  ASSERT_TRUE(om_.CreateTuple(vertex_, {}).ok());
  ASSERT_TRUE(om_.CreateTuple(sub, {}).ok());
  EXPECT_EQ(om_.Extent(vertex_).size(), 2u);
  EXPECT_EQ(om_.ExtentExact(vertex_).size(), 1u);
}

TEST_F(ObjectManagerTest, ObjDepFctMarking) {
  auto oid = om_.CreateTuple(vertex_, {});
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(om_.MarkUsedBy(*oid, 5).ok());
  ASSERT_TRUE(om_.MarkUsedBy(*oid, 3).ok());
  ASSERT_TRUE(om_.MarkUsedBy(*oid, 5).ok());  // idempotent
  EXPECT_TRUE(*om_.IsUsedBy(*oid, 3));
  EXPECT_TRUE(*om_.IsUsedBy(*oid, 5));
  EXPECT_FALSE(*om_.IsUsedBy(*oid, 4));
  ASSERT_TRUE(om_.UnmarkUsedBy(*oid, 5).ok());
  EXPECT_FALSE(*om_.IsUsedBy(*oid, 5));
  EXPECT_EQ((*om_.UsedBy(*oid))->size(), 1u);
}

TEST_F(ObjectManagerTest, DanglingReferenceRejected) {
  auto set = om_.CreateCollection(workpieces_);
  ASSERT_TRUE(set.ok());
  EXPECT_FALSE(om_.InsertElement(*set, Value::Ref(Oid(9999))).ok());
}

TEST_F(ObjectManagerTest, AccessesChargeSimulatedTime) {
  auto oid = om_.CreateTuple(vertex_, {Value::Float(1)});
  ASSERT_TRUE(oid.ok());
  double before = clock_.seconds();
  ASSERT_TRUE(om_.GetAttribute(*oid, "X").ok());
  EXPECT_GT(clock_.seconds(), before);
}

TEST_F(ObjectManagerTest, LargeCollectionChunksAcrossPages) {
  // Build a set of ~1000 refs: encoding ~9 kB > one page.
  auto set = om_.CreateCollection(workpieces_);
  ASSERT_TRUE(set.ok());
  std::vector<Oid> materials;
  for (int i = 0; i < 1000; ++i) {
    auto m = om_.CreateTuple(material_,
                             {Value::String("M" + std::to_string(i))});
    ASSERT_TRUE(m.ok());
    ASSERT_TRUE(om_.InsertElement(*set, Value::Ref(*m)).ok());
  }
  auto elems = om_.GetElements(*set);
  ASSERT_TRUE(elems.ok());
  EXPECT_EQ(elems->size(), 1000u);
}

// Notifier capturing all events, for hook-seam verification.
class RecordingNotifier : public UpdateNotifier {
 public:
  struct Event {
    std::string what;
    Oid oid;
    int depth = 0;
  };
  std::vector<Event> events;

  Status BeforeElementaryUpdate(const ElementaryUpdate& u) override {
    events.push_back({"before_update", u.oid, u.operation_depth});
    return Status::Ok();
  }
  void AfterElementaryUpdate(const ElementaryUpdate& u) override {
    events.push_back({"after_update", u.oid, u.operation_depth});
  }
  void AfterCreate(Oid oid, TypeId) override {
    events.push_back({"create", oid, 0});
  }
  Status BeforeDelete(Oid oid, TypeId) override {
    events.push_back({"delete", oid, 0});
    return Status::Ok();
  }
  Status BeforeOperation(Oid self, TypeId, FunctionId,
                         const std::vector<Value>&) override {
    events.push_back({"begin_op", self, 0});
    return Status::Ok();
  }
  void AfterOperation(Oid self, TypeId, FunctionId) override {
    events.push_back({"end_op", self, 0});
  }
};

TEST_F(ObjectManagerTest, NotifierSeesElementaryUpdates) {
  RecordingNotifier notifier;
  om_.SetNotifier(&notifier);
  auto oid = om_.CreateTuple(vertex_, {Value::Float(0)});
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(om_.SetAttribute(*oid, "X", Value::Float(5)).ok());
  ASSERT_TRUE(om_.Delete(*oid).ok());
  ASSERT_EQ(notifier.events.size(), 4u);
  EXPECT_EQ(notifier.events[0].what, "create");
  EXPECT_EQ(notifier.events[1].what, "before_update");
  EXPECT_EQ(notifier.events[2].what, "after_update");
  EXPECT_EQ(notifier.events[3].what, "delete");
  om_.SetNotifier(nullptr);
}

TEST_F(ObjectManagerTest, OperationDepthVisibleInUpdates) {
  RecordingNotifier notifier;
  om_.SetNotifier(&notifier);
  auto oid = om_.CreateTuple(vertex_, {Value::Float(0)});
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(om_.BeginOperation(*oid, 17, {}).ok());
  ASSERT_TRUE(om_.SetAttribute(*oid, "X", Value::Float(5)).ok());
  ASSERT_TRUE(om_.EndOperation(*oid, 17).ok());
  // create, begin_op, before_update(depth1), after_update(depth1), end_op
  ASSERT_EQ(notifier.events.size(), 5u);
  EXPECT_EQ(notifier.events[1].what, "begin_op");
  EXPECT_EQ(notifier.events[2].depth, 1);
  EXPECT_EQ(notifier.events[3].depth, 1);
  EXPECT_EQ(notifier.events[4].what, "end_op");
  om_.SetNotifier(nullptr);
}

TEST_F(ObjectManagerTest, EndOperationWithoutBeginFails) {
  auto oid = om_.CreateTuple(vertex_, {});
  ASSERT_TRUE(oid.ok());
  EXPECT_EQ(om_.EndOperation(*oid, 1).code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace gom
