#include <gtest/gtest.h>

#include "funclang/builder.h"
#include "funclang/interpreter.h"
#include "funclang/path_extraction.h"
#include "gom/object_manager.h"

namespace gom::funclang {
namespace {

PathExpr P(std::string root, std::vector<std::string> attrs,
           bool elements = false) {
  return PathExpr{std::move(root), std::move(attrs), elements};
}

// ------------------------------------------- Definition 8.1 primitives

TEST(RewriteTest, PathWithoutRuleUnchanged) {
  RewriteSystem r;
  r.rules["v"] = {P("self", {"A"})};
  PathSet out = RewritePath(P("w", {"B"}), r);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(*out.begin(), P("w", {"B"}));
}

TEST(RewriteTest, RuleReplacesRootKeepingSuffix) {
  RewriteSystem r;
  r.rules["v"] = {P("self", {"A"})};
  PathSet out = RewritePath(P("v", {"B", "C"}), r);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(*out.begin(), P("self", {"A", "B", "C"}));
}

TEST(RewriteTest, SetValuedRulesFanOut) {
  RewriteSystem r;
  r.rules["v"] = {P("self", {"A"}), P("other", {"B"})};
  PathSet out = RewritePath(P("v", {"X"}), r);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(out.count(P("self", {"A", "X"})));
  EXPECT_TRUE(out.count(P("other", {"B", "X"})));
}

TEST(RewriteTest, EmptyRuleDropsPath) {
  RewriteSystem r;
  r.rules["v"] = {};
  EXPECT_TRUE(RewritePath(P("v", {"A"}), r).empty());
}

TEST(CombineTest, SequenceRewritesLaterPathsByEarlierRules) {
  // s1: v := self.A        E1 = ({self.A}, {v → self.A})
  // s2: return v.B         E2 = ({v.B}, {})
  Extraction e1{{P("self", {"A"})}, {}};
  e1.rules.rules["v"] = {P("self", {"A"})};
  Extraction e2{{P("v", {"B"})}, {}};
  Extraction combined = Combine(e1, e2);
  EXPECT_TRUE(combined.paths.count(P("self", {"A"})));
  EXPECT_TRUE(combined.paths.count(P("self", {"A", "B"})));
  EXPECT_FALSE(combined.paths.count(P("v", {"B"})));
}

TEST(CombineTest, ReassignmentOverridesEarlierRule) {
  // s1: v := self.A ; s2: v := self.B — later uses of v must see self.B.
  Extraction e1;
  e1.rules.rules["v"] = {P("self", {"A"})};
  Extraction e2;
  e2.rules.rules["v"] = {P("self", {"B"})};
  Extraction combined = Combine(e1, e2);
  ASSERT_EQ(combined.rules.rules.at("v").size(), 1u);
  EXPECT_EQ(*combined.rules.rules.at("v").begin(), P("self", {"B"}));
}

TEST(CombineTest, LaterRulesAreRewrittenByEarlierOnes) {
  // s1: v := self.A ; s2: w := v.B  ⇒  w → self.A.B
  Extraction e1;
  e1.rules.rules["v"] = {P("self", {"A"})};
  Extraction e2;
  e2.rules.rules["w"] = {P("v", {"B"})};
  Extraction combined = Combine(e1, e2);
  ASSERT_EQ(combined.rules.rules.at("w").size(), 1u);
  EXPECT_EQ(*combined.rules.rules.at("w").begin(), P("self", {"A", "B"}));
  // v's rule survives (not reassigned).
  EXPECT_TRUE(combined.rules.rules.count("v"));
}

TEST(CombineTest, IsLeftAssociativeOverSequences) {
  // v := self.A; v := v.B; return v.C  ⇒  access self.A.B.C
  Extraction e1;
  e1.rules.rules["v"] = {P("self", {"A"})};
  Extraction e2;
  e2.rules.rules["v"] = {P("v", {"B"})};
  Extraction e3{{P("v", {"C"})}, {}};
  Extraction combined = Combine(Combine(e1, e2), e3);
  EXPECT_TRUE(combined.paths.count(P("self", {"A", "B", "C"})));
}

// ------------------------------------------------- full function analysis

/// Same schema and functions as funclang_test, plus the paper's RelAttr
/// expectations.
class PathAnalyzerTest : public ::testing::Test {
 protected:
  PathAnalyzerTest()
      : disk_(&clock_, CostModel::Default()),
        pool_(&disk_, 150),
        storage_(&pool_),
        om_(&schema_, &storage_, &clock_),
        interp_(&om_, &registry_),
        analyzer_(&schema_, &registry_) {
    vertex_ = *schema_.DeclareTupleType(
        {"Vertex",
         kInvalidTypeId,
         {{"X", TypeRef::Float()}, {"Y", TypeRef::Float()},
          {"Z", TypeRef::Float()}},
         {},
         false});
    material_ = *schema_.DeclareTupleType(
        {"Material",
         kInvalidTypeId,
         {{"Name", TypeRef::String()}, {"SpecWeight", TypeRef::Float()}},
         {},
         false});
    cuboid_ = *schema_.DeclareTupleType(
        {"Cuboid",
         kInvalidTypeId,
         {{"V1", TypeRef::Object(vertex_)},
          {"V2", TypeRef::Object(vertex_)},
          {"V4", TypeRef::Object(vertex_)},
          {"V5", TypeRef::Object(vertex_)},
          {"Mat", TypeRef::Object(material_)},
          {"Value", TypeRef::Float()}},
         {},
         false});
    workpieces_ =
        *schema_.DeclareSetType("Workpieces", TypeRef::Object(cuboid_));

    auto d = [](ExprPtr a, ExprPtr b) { return Mul(Sub(a, b), Sub(a, b)); };
    dist_ = *registry_.Register(FunctionDef{
        kInvalidFunctionId,
        "dist",
        {{"self", TypeRef::Object(vertex_)},
         {"other", TypeRef::Object(vertex_)}},
        TypeRef::Float(),
        Body(Sqrt(Add(Add(d(Attr(Self(), "X"), Attr(Var("other"), "X")),
                          d(Attr(Self(), "Y"), Attr(Var("other"), "Y"))),
                      d(Attr(Self(), "Z"), Attr(Var("other"), "Z"))))),
        nullptr,
        true});
    auto edge = [this](const char* name, const char* v) {
      return *registry_.Register(FunctionDef{
          kInvalidFunctionId,
          name,
          {{"self", TypeRef::Object(cuboid_)}},
          TypeRef::Float(),
          Body(CallF("dist", {Attr(Self(), "V1"), Attr(Self(), v)})),
          nullptr,
          true});
    };
    length_ = edge("length", "V2");
    width_ = edge("width", "V4");
    height_ = edge("height", "V5");
    volume_ = *registry_.Register(FunctionDef{
        kInvalidFunctionId,
        "volume",
        {{"self", TypeRef::Object(cuboid_)}},
        TypeRef::Float(),
        Body(Mul(Mul(CallF("length", {Self()}), CallF("width", {Self()})),
                 CallF("height", {Self()}))),
        nullptr,
        true});
    weight_ = *registry_.Register(FunctionDef{
        kInvalidFunctionId,
        "weight",
        {{"self", TypeRef::Object(cuboid_)}},
        TypeRef::Float(),
        Body(Mul(CallF("volume", {Self()}),
                 Path(Self(), {"Mat", "SpecWeight"}))),
        nullptr,
        true});
    total_volume_ = *registry_.Register(FunctionDef{
        kInvalidFunctionId,
        "total_volume",
        {{"self", TypeRef::Object(workpieces_)}},
        TypeRef::Float(),
        Body(SumOver(Self(), "c", CallF("volume", {Var("c")}))),
        nullptr,
        true});
  }

  RelevantProperty Prop(TypeId t, const char* attr) {
    return {t, (*schema_.Get(t))->AttrIndex(attr)};
  }

  SimClock clock_;
  SimDisk disk_;
  BufferPool pool_;
  StorageManager storage_;
  Schema schema_;
  ObjectManager om_;
  FunctionRegistry registry_;
  Interpreter interp_;
  PathAnalyzer analyzer_;
  TypeId vertex_, material_, cuboid_, workpieces_;
  FunctionId dist_, length_, width_, height_, volume_, weight_,
      total_volume_;
};

TEST_F(PathAnalyzerTest, DistAccessesAllCoordinates) {
  auto analysis = analyzer_.Analyze(dist_);
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  EXPECT_EQ(analysis->paths.size(), 6u);
  EXPECT_TRUE(analysis->paths.count(P("self", {"X"})));
  EXPECT_TRUE(analysis->paths.count(P("other", {"Z"})));
  EXPECT_EQ(analysis->rel_attr.size(), 3u);  // Vertex.X/Y/Z
  EXPECT_TRUE(analysis->rel_attr.count(Prop(vertex_, "X")));
}

TEST_F(PathAnalyzerTest, LengthInlinesDist) {
  auto analysis = analyzer_.Analyze(length_);
  ASSERT_TRUE(analysis.ok());
  // self.V1, self.V2 and the six coordinate paths through them.
  EXPECT_TRUE(analysis->paths.count(P("self", {"V1"})));
  EXPECT_TRUE(analysis->paths.count(P("self", {"V1", "X"})));
  EXPECT_TRUE(analysis->paths.count(P("self", {"V2", "Z"})));
  EXPECT_FALSE(analysis->paths.count(P("self", {"V4", "X"})));
}

TEST_F(PathAnalyzerTest, VolumeRelAttrMatchesThePaper) {
  // §5.1: RelAttr(volume) = {Cuboid.V1, Cuboid.V2, Cuboid.V4, Cuboid.V5,
  //                          Vertex.X, Vertex.Y, Vertex.Z}
  auto analysis = analyzer_.Analyze(volume_);
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  std::set<RelevantProperty> expected = {
      Prop(cuboid_, "V1"), Prop(cuboid_, "V2"), Prop(cuboid_, "V4"),
      Prop(cuboid_, "V5"), Prop(vertex_, "X"),  Prop(vertex_, "Y"),
      Prop(vertex_, "Z")};
  EXPECT_EQ(analysis->rel_attr, expected);
}

TEST_F(PathAnalyzerTest, WeightAddsMaterialDependencies) {
  auto analysis = analyzer_.Analyze(weight_);
  ASSERT_TRUE(analysis.ok());
  EXPECT_TRUE(analysis->rel_attr.count(Prop(cuboid_, "Mat")));
  EXPECT_TRUE(analysis->rel_attr.count(Prop(material_, "SpecWeight")));
  EXPECT_FALSE(analysis->rel_attr.count(Prop(material_, "Name")));
  EXPECT_FALSE(analysis->rel_attr.count(Prop(cuboid_, "Value")));
}

TEST_F(PathAnalyzerTest, TotalVolumeDependsOnSetMembership) {
  auto analysis = analyzer_.Analyze(total_volume_);
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  EXPECT_TRUE(
      analysis->rel_attr.count(RelevantProperty{workpieces_, kElementsOfAttr}));
  // And, through the iteration variable, everything volume needs.
  EXPECT_TRUE(analysis->rel_attr.count(Prop(cuboid_, "V1")));
  EXPECT_TRUE(analysis->rel_attr.count(Prop(vertex_, "Y")));
  // The iteration variable root is typed.
  bool found_typed_c = false;
  for (const auto& [root, type] : analysis->root_types) {
    if (type.is_object() && type.object_type == cuboid_ && root != "self") {
      found_typed_c = true;
    }
  }
  EXPECT_TRUE(found_typed_c);
}

TEST_F(PathAnalyzerTest, LetChainsAreRewrittenToParameterRoots) {
  // f(self: Cuboid) = { m := self.Mat; return m.SpecWeight }
  FunctionId f = *registry_.Register(FunctionDef{
      kInvalidFunctionId,
      "mat_weight",
      {{"self", TypeRef::Object(cuboid_)}},
      TypeRef::Float(),
      Body({Let("m", Attr(Self(), "Mat")),
            Ret(Attr(Var("m"), "SpecWeight"))}),
      nullptr,
      true});
  auto analysis = analyzer_.Analyze(f);
  ASSERT_TRUE(analysis.ok());
  EXPECT_TRUE(analysis->paths.count(P("self", {"Mat"})));
  EXPECT_TRUE(analysis->paths.count(P("self", {"Mat", "SpecWeight"})));
  for (const PathExpr& p : analysis->paths) {
    EXPECT_EQ(p.root, "self") << p.ToString();
  }
}

TEST_F(PathAnalyzerTest, ReassignmentTrackedConservatively) {
  // v := self.V1; v := self.V2; return v.X  ⇒ accesses self.V2.X not
  // self.V1.X (beyond reading self.V1 itself).
  FunctionId f = *registry_.Register(FunctionDef{
      kInvalidFunctionId,
      "reassign",
      {{"self", TypeRef::Object(cuboid_)}},
      TypeRef::Float(),
      Body({Let("v", Attr(Self(), "V1")), Let("v", Attr(Self(), "V2")),
            Ret(Attr(Var("v"), "X"))}),
      nullptr,
      true});
  auto analysis = analyzer_.Analyze(f);
  ASSERT_TRUE(analysis.ok());
  EXPECT_TRUE(analysis->paths.count(P("self", {"V2", "X"})));
  EXPECT_FALSE(analysis->paths.count(P("self", {"V1", "X"})));
}

TEST_F(PathAnalyzerTest, IfBranchesUnionResults) {
  // return (if self.Value > 0 then self.V1 else self.V2).X
  FunctionId f = *registry_.Register(FunctionDef{
      kInvalidFunctionId,
      "branchy",
      {{"self", TypeRef::Object(cuboid_)}},
      TypeRef::Float(),
      Body(Attr(IfE(Gt(Attr(Self(), "Value"), F(0)), Attr(Self(), "V1"),
                    Attr(Self(), "V2")),
                "X")),
      nullptr,
      true});
  auto analysis = analyzer_.Analyze(f);
  ASSERT_TRUE(analysis.ok());
  EXPECT_TRUE(analysis->paths.count(P("self", {"V1", "X"})));
  EXPECT_TRUE(analysis->paths.count(P("self", {"V2", "X"})));
  EXPECT_TRUE(analysis->rel_attr.count(Prop(cuboid_, "Value")));
}

TEST_F(PathAnalyzerTest, NativeFunctionsAreRejected) {
  FunctionId f = *registry_.Register(FunctionDef{
      kInvalidFunctionId, "opaque", {}, TypeRef::Float(), {},
      [](EvalContext&, const std::vector<Value>&) -> Result<Value> {
        return Value::Float(0);
      },
      true});
  EXPECT_EQ(analyzer_.Analyze(f).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(PathAnalyzerTest, AnalysisIsCached) {
  auto first = analyzer_.Analyze(volume_);
  ASSERT_TRUE(first.ok());
  auto second = analyzer_.Analyze(volume_);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->rel_attr, second->rel_attr);
  EXPECT_EQ(first->paths, second->paths);
}

// Property: the statically extracted RelAttr is a superset of the
// dynamically observed accessed properties (the appendix notes P(f) is in
// general a superset of what one run evaluates).
TEST_F(PathAnalyzerTest, StaticRelAttrCoversDynamicTrace) {
  Oid iron = *om_.CreateTuple(
      material_, {Value::String("Iron"), Value::Float(7.86)});
  auto vtx = [&](double x, double y, double z) {
    return *om_.CreateTuple(
        vertex_, {Value::Float(x), Value::Float(y), Value::Float(z)});
  };
  Oid c = *om_.CreateTuple(
      cuboid_,
      {Value::Ref(vtx(0, 0, 0)), Value::Ref(vtx(2, 0, 0)),
       Value::Ref(vtx(0, 3, 0)), Value::Ref(vtx(0, 0, 4)), Value::Ref(iron),
       Value::Float(1.0)});
  Oid set = *om_.CreateCollection(workpieces_);
  ASSERT_TRUE(om_.InsertElement(set, Value::Ref(c)).ok());

  struct Case {
    FunctionId f;
    Value arg;
  };
  for (const Case& test_case :
       {Case{volume_, Value::Ref(c)}, Case{weight_, Value::Ref(c)},
        Case{total_volume_, Value::Ref(set)}}) {
    auto analysis = analyzer_.Analyze(test_case.f);
    ASSERT_TRUE(analysis.ok());
    Trace trace;
    ASSERT_TRUE(interp_.Invoke(test_case.f, {test_case.arg}, &trace).ok());
    for (const RelevantProperty& observed : trace.accessed_properties) {
      EXPECT_TRUE(analysis->rel_attr.count(observed) > 0)
          << registry_.NameOf(test_case.f) << " missing ("
          << schema_.TypeName(observed.type) << ", " << observed.attr << ")";
    }
  }
}

}  // namespace
}  // namespace gom::funclang
