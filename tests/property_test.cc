#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "funclang/builder.h"
#include "gmr/rrr.h"
#include "test_env.h"

namespace gom {
namespace {

// ---------------------------------------------- storage vs reference model

class StorageModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StorageModelTest, RandomRecordOpsMatchReference) {
  SimClock clock;
  SimDisk disk(&clock, CostModel::Default());
  BufferPool pool(&disk, 12);  // tiny: force constant eviction
  StorageManager mgr(&pool);
  SegmentId seg = mgr.CreateSegment("model");

  Rng rng(GetParam());
  std::map<uint64_t, std::pair<Rid, std::vector<uint8_t>>> model;
  uint64_t next_key = 0;

  for (int step = 0; step < 1500; ++step) {
    double pick = rng.UniformDouble(0, 1);
    if (pick < 0.5 || model.empty()) {
      std::vector<uint8_t> payload(rng.UniformInt(1, 900));
      for (auto& b : payload) b = uint8_t(rng.UniformInt(0, 255));
      auto rid = mgr.InsertRecord(seg, payload);
      ASSERT_TRUE(rid.ok());
      model[next_key++] = {*rid, payload};
    } else if (pick < 0.7) {
      auto it = model.begin();
      std::advance(it, rng.UniformInt(0, model.size() - 1));
      std::vector<uint8_t> payload(rng.UniformInt(1, 900));
      for (auto& b : payload) b = uint8_t(rng.UniformInt(0, 255));
      auto rid = mgr.UpdateRecord(seg, it->second.first, payload);
      ASSERT_TRUE(rid.ok());
      it->second = {*rid, payload};
    } else if (pick < 0.85) {
      auto it = model.begin();
      std::advance(it, rng.UniformInt(0, model.size() - 1));
      ASSERT_TRUE(mgr.DeleteRecord(it->second.first).ok());
      model.erase(it);
    } else {
      auto it = model.begin();
      std::advance(it, rng.UniformInt(0, model.size() - 1));
      auto data = mgr.ReadRecord(it->second.first);
      ASSERT_TRUE(data.ok());
      ASSERT_EQ(*data, it->second.second) << "step " << step;
    }
  }
  // Final sweep: every record readable and intact.
  for (const auto& [key, entry] : model) {
    auto data = mgr.ReadRecord(entry.first);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(*data, entry.second);
  }
  // And the scan sees exactly the live records.
  size_t scanned = 0;
  ASSERT_TRUE(mgr.ScanSegment(seg, [&](const Rid&) { ++scanned; }).ok());
  EXPECT_EQ(scanned, model.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorageModelTest,
                         ::testing::Values(21, 42, 63));

// --------------------------------------------------- value serialization

TEST(ValueFuzzTest, RandomNestedValuesRoundTrip) {
  Rng rng(4242);
  std::function<Value(int)> random_value = [&](int depth) -> Value {
    int kind = rng.UniformInt(0, depth > 0 ? 6 : 5);
    switch (kind) {
      case 0:
        return Value::Null();
      case 1:
        return Value::Bool(rng.Bernoulli(0.5));
      case 2:
        return Value::Int(rng.UniformInt(-1000000, 1000000));
      case 3:
        return Value::Float(rng.UniformDouble(-1e6, 1e6));
      case 4: {
        std::string s;
        for (int i = rng.UniformInt(0, 12); i > 0; --i) {
          s.push_back(char(rng.UniformInt(32, 126)));
        }
        return Value::String(std::move(s));
      }
      case 5:
        return Value::Ref(Oid(rng.UniformInt(0, 1 << 30)));
      default: {
        std::vector<Value> elems;
        for (int i = rng.UniformInt(0, 5); i > 0; --i) {
          elems.push_back(random_value(depth - 1));
        }
        return Value::Composite(std::move(elems));
      }
    }
  };
  for (int i = 0; i < 500; ++i) {
    Value v = random_value(3);
    std::vector<uint8_t> buf;
    v.Serialize(&buf);
    ASSERT_EQ(buf.size(), v.SerializedSize());
    const uint8_t* cursor = buf.data();
    auto back = Value::Deserialize(&cursor, buf.data() + buf.size());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v);
  }
}

// ------------------------------------------- random arithmetic expressions

TEST(ExprFuzzTest, InterpreterMatchesDirectEvaluation) {
  TestEnv env;
  Rng rng(777);
  // Random arithmetic trees over float constants; a parallel direct
  // evaluation serves as the oracle.
  std::function<std::pair<funclang::ExprPtr, double>(int)> build =
      [&](int depth) -> std::pair<funclang::ExprPtr, double> {
    if (depth == 0 || rng.Bernoulli(0.3)) {
      double c = rng.UniformInt(-50, 50) * 0.5;
      return {funclang::F(c), c};
    }
    auto [lhs, lv] = build(depth - 1);
    auto [rhs, rv] = build(depth - 1);
    switch (rng.UniformInt(0, 3)) {
      case 0:
        return {funclang::Add(lhs, rhs), lv + rv};
      case 1:
        return {funclang::Sub(lhs, rhs), lv - rv};
      case 2:
        return {funclang::Mul(lhs, rhs), lv * rv};
      default: {
        if (rv == 0.0) return {funclang::Add(lhs, rhs), lv + rv};
        return {funclang::Div(lhs, rhs), lv / rv};
      }
    }
  };
  for (int i = 0; i < 300; ++i) {
    auto [expr, expected] = build(4);
    auto got = env.interp.Evaluate(*expr, {});
    ASSERT_TRUE(got.ok());
    EXPECT_NEAR(got->as_float(), expected, 1e-9 * std::max(1.0,
                                                           std::abs(expected)));
  }
}

// ------------------------------------------------------ RRR model checking

class RrrModelTest : public ::testing::TestWithParam<bool> {};

TEST_P(RrrModelTest, MatchesReferenceUnderRandomOps) {
  bool second_chance = GetParam();
  SimClock clock;
  SimDisk disk(&clock, CostModel::Default());
  BufferPool pool(&disk, 32);
  StorageManager storage(&pool);
  Rrr rrr(&storage, &clock, CostModel::Default(), second_chance);

  Rng rng(second_chance ? 111 : 222);
  // Model: set of (oid, fn, arg-oid) triples currently live.
  std::set<std::tuple<uint64_t, FunctionId, uint64_t>> model;
  for (int step = 0; step < 2000; ++step) {
    uint64_t o = rng.UniformInt(1, 20);
    FunctionId f = static_cast<FunctionId>(rng.UniformInt(0, 3));
    uint64_t a = rng.UniformInt(1, 10);
    std::vector<Value> args = {Value::Ref(Oid(a))};
    double pick = rng.UniformDouble(0, 1);
    if (pick < 0.55) {
      auto inserted = rrr.Insert(Oid(o), f, args);
      ASSERT_TRUE(inserted.ok());
      EXPECT_EQ(*inserted, model.insert({o, f, a}).second);
    } else if (pick < 0.85) {
      Status st = rrr.Remove(Oid(o), f, args);
      bool existed = model.erase({o, f, a}) > 0;
      EXPECT_EQ(st.ok(), existed) << st.ToString();
    } else if (pick < 0.95) {
      auto entries = rrr.EntriesFor(Oid(o));
      ASSERT_TRUE(entries.ok());
      size_t expected = 0;
      for (const auto& [mo, mf, ma] : model) {
        if (mo == o) ++expected;
      }
      EXPECT_EQ(entries->size(), expected);
    } else {
      EXPECT_EQ(rrr.Contains(Oid(o), f, args), model.count({o, f, a}) > 0);
      size_t count_f = 0;
      for (const auto& [mo, mf, ma] : model) {
        if (mo == o && mf == f) ++count_f;
      }
      EXPECT_EQ(rrr.CountFor(Oid(o), f), count_f);
    }
  }
  EXPECT_EQ(rrr.size(), model.size());
  ASSERT_TRUE(rrr.Sweep().ok());
  EXPECT_EQ(rrr.size(), model.size());  // sweep drops only marked entries
}

INSTANTIATE_TEST_SUITE_P(Policies, RrrModelTest, ::testing::Bool());

}  // namespace
}  // namespace gom
