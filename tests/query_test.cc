#include <gtest/gtest.h>

#include "funclang/builder.h"
#include "query/applicability.h"
#include "query/dnf.h"
#include "query/executor.h"
#include "query/satisfiability.h"
#include "test_env.h"

namespace gom::query {
namespace {

Comparison Cmp(Term lhs, CompOp op, Term rhs, double offset = 0) {
  Comparison c;
  c.lhs = std::move(lhs);
  c.op = op;
  c.rhs = std::move(rhs);
  c.offset = offset;
  return c;
}

// ----------------------------------------------------------- comparisons

TEST(ComparisonTest, TypeClassification) {
  EXPECT_EQ(Cmp(Term::Var("x"), CompOp::kLt, Term::Const(5)).TypeClass(), 1);
  EXPECT_EQ(Cmp(Term::Var("x"), CompOp::kLe, Term::Var("y")).TypeClass(), 2);
  EXPECT_EQ(Cmp(Term::Var("x"), CompOp::kLe, Term::Var("y"), 3).TypeClass(),
            3);
  EXPECT_EQ(Cmp(Term::Const(1), CompOp::kEq, Term::Const(1)).TypeClass(), 0);
}

TEST(ComparisonTest, NegationFlipsOperators) {
  EXPECT_EQ(Cmp(Term::Var("x"), CompOp::kLt, Term::Const(5)).Negated().op,
            CompOp::kGe);
  EXPECT_EQ(Cmp(Term::Var("x"), CompOp::kEq, Term::Var("y")).Negated().op,
            CompOp::kNe);
  EXPECT_EQ(NegateOp(NegateOp(CompOp::kLe)), CompOp::kLe);
}

// ------------------------------------------------------------- NNF / DNF

TEST(DnfTest, NnfPushesNegationsToLeaves) {
  auto x_lt_5 = Leaf(Cmp(Term::Var("x"), CompOp::kLt, Term::Const(5)));
  auto y_eq_x = Leaf(Cmp(Term::Var("y"), CompOp::kEq, Term::Var("x")));
  auto e = NotOf(AndOf({x_lt_5, y_eq_x}));
  auto nnf = ToNnf(e);
  EXPECT_EQ(nnf->kind, BoolExpr::Kind::kOr);
  EXPECT_EQ(nnf->children[0]->leaf.op, CompOp::kGe);
  EXPECT_EQ(nnf->children[1]->leaf.op, CompOp::kNe);
  // Double negation.
  auto nnf2 = ToNnf(NotOf(NotOf(x_lt_5)));
  EXPECT_EQ(nnf2->kind, BoolExpr::Kind::kLeaf);
  EXPECT_EQ(nnf2->leaf.op, CompOp::kLt);
}

TEST(DnfTest, DistributesAndOverOr) {
  auto a = Leaf(Cmp(Term::Var("a"), CompOp::kGt, Term::Const(0)));
  auto b = Leaf(Cmp(Term::Var("b"), CompOp::kGt, Term::Const(0)));
  auto c = Leaf(Cmp(Term::Var("c"), CompOp::kGt, Term::Const(0)));
  // a ∧ (b ∨ c) → (a ∧ b) ∨ (a ∧ c)
  auto dnf = ToDnf(AndOf({a, OrOf({b, c})}));
  ASSERT_TRUE(dnf.ok());
  ASSERT_EQ(dnf->size(), 2u);
  EXPECT_EQ((*dnf)[0].size(), 2u);
  EXPECT_EQ((*dnf)[1].size(), 2u);
}

TEST(DnfTest, ExpansionLimitEnforced) {
  // (a1 ∨ b1) ∧ (a2 ∨ b2) ∧ … blows up as 2^n.
  std::vector<BoolExprPtr> clauses;
  for (int i = 0; i < 20; ++i) {
    auto a = Leaf(Cmp(Term::Var("a" + std::to_string(i)), CompOp::kGt,
                      Term::Const(0)));
    auto b = Leaf(Cmp(Term::Var("b" + std::to_string(i)), CompOp::kGt,
                      Term::Const(0)));
    clauses.push_back(OrOf({a, b}));
  }
  EXPECT_EQ(ToDnf(AndOf(clauses), 1024).status().code(),
            StatusCode::kOutOfRange);
}

TEST(DnfTest, ContainsVarVarNeLooksThroughNegation) {
  auto eq = Leaf(Cmp(Term::Var("x"), CompOp::kEq, Term::Var("y")));
  EXPECT_FALSE(ContainsVarVarNe(eq));
  EXPECT_TRUE(ContainsVarVarNe(NotOf(eq)));  // ¬(x = y) ≡ x ≠ y
  auto ne_const = Leaf(Cmp(Term::Var("x"), CompOp::kNe, Term::Const(3)));
  EXPECT_FALSE(ContainsVarVarNe(ne_const));  // Type-1 ≠ stays in class
}

// ------------------------------------------- Rosenkrantz–Hunt procedure

TEST(SatisfiabilityTest, SimpleBoundsChain) {
  // x < y, y < z, z < x is a contradiction.
  Conjunct bad = {Cmp(Term::Var("x"), CompOp::kLt, Term::Var("y")),
                  Cmp(Term::Var("y"), CompOp::kLt, Term::Var("z")),
                  Cmp(Term::Var("z"), CompOp::kLt, Term::Var("x"))};
  EXPECT_FALSE(*ConjunctSatisfiable(bad));
  // Dropping one edge makes it satisfiable.
  bad.pop_back();
  EXPECT_TRUE(*ConjunctSatisfiable(bad));
}

TEST(SatisfiabilityTest, StrictVersusNonStrictCycles) {
  // x <= y ∧ y <= x is fine (x = y)…
  Conjunct eq_cycle = {Cmp(Term::Var("x"), CompOp::kLe, Term::Var("y")),
                       Cmp(Term::Var("y"), CompOp::kLe, Term::Var("x"))};
  EXPECT_TRUE(*ConjunctSatisfiable(eq_cycle));
  // …but x <= y ∧ y < x is not.
  Conjunct strict_cycle = {Cmp(Term::Var("x"), CompOp::kLe, Term::Var("y")),
                           Cmp(Term::Var("y"), CompOp::kLt, Term::Var("x"))};
  EXPECT_FALSE(*ConjunctSatisfiable(strict_cycle));
}

TEST(SatisfiabilityTest, ConstantBounds) {
  // 3 <= x <= 5 ∧ x < 3 unsat; x < 3.5 sat.
  Conjunct base = {Cmp(Term::Var("x"), CompOp::kGe, Term::Const(3)),
                   Cmp(Term::Var("x"), CompOp::kLe, Term::Const(5))};
  Conjunct unsat = base;
  unsat.push_back(Cmp(Term::Var("x"), CompOp::kLt, Term::Const(3)));
  EXPECT_FALSE(*ConjunctSatisfiable(unsat));
  Conjunct sat = base;
  sat.push_back(Cmp(Term::Var("x"), CompOp::kLt, Term::Const(3.5)));
  EXPECT_TRUE(*ConjunctSatisfiable(sat));
}

TEST(SatisfiabilityTest, OffsetComparisons) {
  // x <= y + 2 ∧ y <= x - 3 → x <= x - 1: unsat.
  Conjunct unsat = {Cmp(Term::Var("x"), CompOp::kLe, Term::Var("y"), 2),
                    Cmp(Term::Var("y"), CompOp::kLe, Term::Var("x"), -3)};
  EXPECT_FALSE(*ConjunctSatisfiable(unsat));
  // Relaxing the second offset to -2 admits x = y + 2.
  Conjunct sat = {Cmp(Term::Var("x"), CompOp::kLe, Term::Var("y"), 2),
                  Cmp(Term::Var("y"), CompOp::kLe, Term::Var("x"), -2)};
  EXPECT_TRUE(*ConjunctSatisfiable(sat));
}

TEST(SatisfiabilityTest, EqualityPropagation) {
  // x = y ∧ y = 4 ∧ x > 5 unsat.
  Conjunct unsat = {Cmp(Term::Var("x"), CompOp::kEq, Term::Var("y")),
                    Cmp(Term::Var("y"), CompOp::kEq, Term::Const(4)),
                    Cmp(Term::Var("x"), CompOp::kGt, Term::Const(5))};
  EXPECT_FALSE(*ConjunctSatisfiable(unsat));
}

TEST(SatisfiabilityTest, TypeOneNotEqual) {
  // x >= 3 ∧ x <= 3 ∧ x ≠ 3: unsat (x forced to 3).
  Conjunct forced = {Cmp(Term::Var("x"), CompOp::kGe, Term::Const(3)),
                     Cmp(Term::Var("x"), CompOp::kLe, Term::Const(3)),
                     Cmp(Term::Var("x"), CompOp::kNe, Term::Const(3))};
  EXPECT_FALSE(*ConjunctSatisfiable(forced));
  // With slack the ≠ is harmless.
  Conjunct slack = {Cmp(Term::Var("x"), CompOp::kGe, Term::Const(3)),
                    Cmp(Term::Var("x"), CompOp::kLe, Term::Const(4)),
                    Cmp(Term::Var("x"), CompOp::kNe, Term::Const(3))};
  EXPECT_TRUE(*ConjunctSatisfiable(slack));
}

TEST(SatisfiabilityTest, VarVarNotEqualRejected) {
  Conjunct ne = {Cmp(Term::Var("x"), CompOp::kNe, Term::Var("y"))};
  EXPECT_EQ(ConjunctSatisfiable(ne).status().code(),
            StatusCode::kUnimplemented);
}

TEST(SatisfiabilityTest, MirroredConstantOnLeft) {
  // 5 < x ∧ x < 4 unsat.
  Conjunct unsat = {Cmp(Term::Const(5), CompOp::kLt, Term::Var("x")),
                    Cmp(Term::Var("x"), CompOp::kLt, Term::Const(4))};
  EXPECT_FALSE(*ConjunctSatisfiable(unsat));
  Conjunct sat = {Cmp(Term::Const(5), CompOp::kLt, Term::Var("x")),
                  Cmp(Term::Var("x"), CompOp::kLt, Term::Const(6))};
  EXPECT_TRUE(*ConjunctSatisfiable(sat));
}

TEST(SatisfiabilityTest, DnfIsSatisfiableWhenAnyConjunctIs) {
  Dnf dnf = {{Cmp(Term::Var("x"), CompOp::kLt, Term::Const(0)),
              Cmp(Term::Var("x"), CompOp::kGt, Term::Const(0))},
             {Cmp(Term::Var("x"), CompOp::kEq, Term::Const(7))}};
  EXPECT_TRUE(*DnfSatisfiable(dnf));
  dnf.pop_back();
  EXPECT_FALSE(*DnfSatisfiable(dnf));
}

// -------------------------------------------------- §6 applicability test

TEST(ApplicabilityTest, SigmaImpliesPIsDetected) {
  // p ≡ x > 10; σ′ ≡ x > 20 implies p (applicable); σ′ ≡ x > 5 does not.
  auto p = Leaf(Cmp(Term::Var("x"), CompOp::kGt, Term::Const(10)));
  auto sigma_strong = Leaf(Cmp(Term::Var("x"), CompOp::kGt, Term::Const(20)));
  auto sigma_weak = Leaf(Cmp(Term::Var("x"), CompOp::kGt, Term::Const(5)));
  EXPECT_TRUE(*RestrictedGmrApplicable(p, sigma_strong));
  EXPECT_FALSE(*RestrictedGmrApplicable(p, sigma_weak));
}

TEST(ApplicabilityTest, PaperDistanceExample) {
  // §6's restricted distance materialization:
  //   p(c1, c2) ≡ c1 ≠ c2 ∧ c1.V1.X <= c2.V1.X
  // (we model the OID inequality over the coordinate proxy; the paper's
  // point is that ¬p must not contain x = y, which holds: ¬p ≡
  // c1 = c2 ∨ c1.V1.X > c2.V1.X — wait, ¬p DOES contain c1 = c2, so
  // condition (1) requires p to avoid ≠ between variables. The example
  // predicate below keeps only the coordinate ordering, the decidable
  // fragment.)
  auto p = Leaf(Cmp(Term::Var("c1.V1.X"), CompOp::kLe, Term::Var("c2.V1.X")));
  auto sigma = AndOf(
      {Leaf(Cmp(Term::Var("distance"), CompOp::kLt, Term::Const(100))),
       Leaf(Cmp(Term::Var("c1.V1.X"), CompOp::kLt, Term::Var("c2.V1.X")))});
  EXPECT_TRUE(*RestrictedGmrApplicable(p, sigma));
  // With the predicate containing c1 ≠ c2 the test is conservative.
  auto p_with_ne = AndOf(
      {Leaf(Cmp(Term::Var("c1"), CompOp::kNe, Term::Var("c2"))),
       Leaf(Cmp(Term::Var("c1.V1.X"), CompOp::kLe, Term::Var("c2.V1.X")))});
  EXPECT_FALSE(*RestrictedGmrApplicable(p_with_ne, sigma));
}

TEST(ApplicabilityTest, SigmaOutsideClassIsRejected) {
  auto p = Leaf(Cmp(Term::Var("x"), CompOp::kGt, Term::Const(0)));
  auto sigma = Leaf(Cmp(Term::Var("x"), CompOp::kNe, Term::Var("y")));
  EXPECT_FALSE(*RestrictedGmrApplicable(p, sigma));
}

TEST(ApplicabilityTest, OffsetImplication) {
  // p ≡ x <= y + 10; σ′ ≡ x <= y + 5 implies p.
  auto p = Leaf(Cmp(Term::Var("x"), CompOp::kLe, Term::Var("y"), 10));
  auto sigma = Leaf(Cmp(Term::Var("x"), CompOp::kLe, Term::Var("y"), 5));
  EXPECT_TRUE(*RestrictedGmrApplicable(p, sigma));
  EXPECT_FALSE(*RestrictedGmrApplicable(sigma, p));
}

// ----------------------------------------- funclang predicate conversion

TEST(ApplicabilityTest, FromFunclangConvertsComparisonShapes) {
  namespace fl = funclang;
  StringInterner interner;
  // self.Mat.Name = "Iron"
  auto e1 = fl::Eq(fl::Path(fl::Self(), {"Mat", "Name"}), fl::S("Iron"));
  auto converted = FromFunclang(*e1, &interner);
  ASSERT_TRUE(converted.ok());
  EXPECT_EQ((*converted)->leaf.lhs.var, "self.Mat.Name");
  EXPECT_TRUE((*converted)->leaf.rhs.is_const);

  // (x > 1 and y <= x + 2) or not (z = 3)
  auto e2 = fl::Or(
      fl::And(fl::Gt(fl::Var("x"), fl::F(1)),
              fl::Le(fl::Var("y"), fl::Add(fl::Var("x"), fl::F(2)))),
      fl::Not(fl::Eq(fl::Var("z"), fl::F(3))));
  auto c2 = FromFunclang(*e2, &interner);
  ASSERT_TRUE(c2.ok()) << c2.status().ToString();
  EXPECT_EQ((*c2)->kind, BoolExpr::Kind::kOr);

  // Same string interned to the same code.
  auto e3 = fl::Ne(fl::Path(fl::Self(), {"Mat", "Name"}), fl::S("Iron"));
  auto c3 = FromFunclang(*e3, &interner);
  ASSERT_TRUE(c3.ok());
  EXPECT_EQ((*c3)->leaf.rhs.constant, (*converted)->leaf.rhs.constant);

  // Multiplication is outside the class.
  auto e4 = fl::Gt(fl::Mul(fl::Var("x"), fl::F(2)), fl::F(1));
  EXPECT_EQ(FromFunclang(*e4, &interner).status().code(),
            StatusCode::kFailedPrecondition);
  // Ordering on strings is outside the class.
  auto e5 = fl::Lt(fl::Var("s"), fl::S("abc"));
  EXPECT_EQ(FromFunclang(*e5, &interner).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ApplicabilityTest, EndToEndWithFunclangPredicates) {
  namespace fl = funclang;
  StringInterner interner;
  // GMR restriction p ≡ self.Value >= 50; query σ′ ≡ self.Value > 80.
  auto p = FromFunclang(*fl::Ge(fl::Attr(fl::Self(), "Value"), fl::F(50)),
                        &interner);
  auto sigma = FromFunclang(*fl::Gt(fl::Attr(fl::Self(), "Value"), fl::F(80)),
                            &interner);
  ASSERT_TRUE(p.ok() && sigma.ok());
  EXPECT_TRUE(*RestrictedGmrApplicable(*p, *sigma));
}

// ----------------------------------------------------------- the executor

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() {
    iron_ = *env_.geo.MakeMaterial(&env_.om, "Iron", 7.86);
    for (int i = 1; i <= 20; ++i) {
      cuboids_.push_back(
          *env_.geo.MakeCuboid(&env_.om, i, 2, 3, iron_, i * 10.0));
    }
  }

  TestEnv env_;
  Oid iron_;
  std::vector<Oid> cuboids_;
};

TEST_F(ExecutorTest, BackwardScanAndGmrAgree) {
  GmrSpec spec;
  spec.name = "volume";
  spec.arg_types = {TypeRef::Object(env_.geo.cuboid)};
  spec.functions = {env_.geo.volume};
  ASSERT_TRUE(env_.mgr.Materialize(spec).ok());

  BackwardQuery q;
  q.range_type = env_.geo.cuboid;
  q.function = env_.geo.volume;
  q.lo = 30;   // volume = 6·i
  q.hi = 60;
  QueryExecutor without(&env_.om, &env_.interp, &env_.mgr, false);
  QueryExecutor with(&env_.om, &env_.interp, &env_.mgr, true);
  auto a = without.RunBackward(q);
  auto b = with.RunBackward(q);
  ASSERT_TRUE(a.ok() && b.ok());
  std::set<uint64_t> sa, sb;
  for (Oid o : *a) sa.insert(o.raw);
  for (Oid o : *b) sb.insert(o.raw);
  EXPECT_EQ(sa, sb);
  EXPECT_EQ(sa.size(), 6u);  // i ∈ {5..10}
  EXPECT_EQ(without.scans(), 1u);
  EXPECT_EQ(with.gmr_answers(), 1u);
}

TEST_F(ExecutorTest, ForwardRoutesThroughGmrWhenEnabled) {
  GmrSpec spec;
  spec.name = "volume";
  spec.arg_types = {TypeRef::Object(env_.geo.cuboid)};
  spec.functions = {env_.geo.volume};
  ASSERT_TRUE(env_.mgr.Materialize(spec).ok());
  env_.mgr.ResetStats();
  QueryExecutor with(&env_.om, &env_.interp, &env_.mgr, true);
  ForwardQuery q{env_.geo.volume, {Value::Ref(cuboids_[4])}};
  auto v = with.RunForward(q);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->as_float(), 5.0 * 2 * 3);
  EXPECT_EQ(env_.mgr.stats().forward_hits, 1u);
}

TEST_F(ExecutorTest, QbeRetrievalCombinations) {
  GmrSpec spec;
  spec.name = "vw";
  spec.arg_types = {TypeRef::Object(env_.geo.cuboid)};
  spec.functions = {env_.geo.volume, env_.geo.weight};
  auto id = env_.mgr.Materialize(spec);
  ASSERT_TRUE(id.ok());
  QueryExecutor exec(&env_.om, &env_.interp, &env_.mgr, true);

  // Forward shape: argument constant, both results retrieved.
  GmrRetrieval fwd;
  fwd.gmr = *id;
  fwd.arg_columns = {ColumnSpec::Const(Value::Ref(cuboids_[2]))};
  fwd.result_columns = {ColumnSpec::Any(), ColumnSpec::Any()};
  auto rows = exec.RunRetrieval(fwd);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_DOUBLE_EQ((*rows)[0][1].as_float(), 18.0);
  EXPECT_DOUBLE_EQ((*rows)[0][2].as_float(), 18.0 * 7.86);

  // Backward shape: range on volume, don't-care on weight.
  GmrRetrieval bwd;
  bwd.gmr = *id;
  bwd.arg_columns = {ColumnSpec::Any()};
  bwd.result_columns = {ColumnSpec::Range(30, 60), ColumnSpec::DontCare()};
  rows = exec.RunRetrieval(bwd);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 6u);

  // Combined: range on both result columns.
  GmrRetrieval both;
  both.gmr = *id;
  both.arg_columns = {ColumnSpec::Any()};
  both.result_columns = {ColumnSpec::Range(30, 120),
                         ColumnSpec::Range(0, 400)};
  rows = exec.RunRetrieval(both);
  ASSERT_TRUE(rows.ok());
  // volume ∈ [30,120] ⇒ i ∈ {5..20}; weight = volume·7.86 ≤ 400 ⇒
  // volume ≤ 50.9 ⇒ i ∈ {5..8}.
  EXPECT_EQ(rows->size(), 4u);

  // Column count mismatch is rejected.
  GmrRetrieval bad;
  bad.gmr = *id;
  bad.arg_columns = {ColumnSpec::Any()};
  bad.result_columns = {ColumnSpec::Any()};
  EXPECT_EQ(exec.RunRetrieval(bad).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ExecutorTest, QbeRetrievalRevalidatesLazyColumns) {
  GmrSpec spec;
  spec.name = "volume";
  spec.arg_types = {TypeRef::Object(env_.geo.cuboid)};
  spec.functions = {env_.geo.volume};
  auto id = env_.mgr.Materialize(spec);
  ASSERT_TRUE(id.ok());
  env_.mgr.set_remat_strategy(RematStrategy::kLazy);
  env_.InstallNotifier(workload::NotifyLevel::kObjDep);
  // Invalidate cuboid #1 (volume 6) by scaling it to volume 48.
  ASSERT_TRUE(env_.interp
                  .Invoke(env_.geo.op_scale,
                          {Value::Ref(cuboids_[0]), Value::Float(2),
                           Value::Float(2), Value::Float(2)})
                  .ok());
  QueryExecutor exec(&env_.om, &env_.interp, &env_.mgr, true);
  GmrRetrieval q;
  q.gmr = *id;
  q.arg_columns = {ColumnSpec::Any()};
  q.result_columns = {ColumnSpec::Range(40, 50)};
  auto rows = exec.RunRetrieval(q);
  ASSERT_TRUE(rows.ok());
  // 6·i ∈ [40,50] ⇒ i ∈ {7, 8}, plus the rescaled cuboid (48).
  EXPECT_EQ(rows->size(), 3u);
}

}  // namespace
}  // namespace gom::query
