// Unit tests for GmrReadPath against a hand-built component stack: a
// GmrCatalog populated through the maintenance plane, no notifier and no
// update traffic. Exercises both regimes — the owner path's repair side
// effects and the concurrent path's strictly read-only probes (hit,
// invalid row, missing row, unmaterialized function, backward ranges).

#include <gtest/gtest.h>

#include "common/sim_clock.h"
#include "funclang/interpreter.h"
#include "gmr/gmr_catalog.h"
#include "gmr/gmr_maintenance.h"
#include "gmr/gmr_read_path.h"
#include "gom/object_manager.h"
#include "storage/buffer_pool.h"
#include "storage/sim_disk.h"
#include "storage/storage_manager.h"
#include "workload/cuboid_schema.h"

namespace gom {
namespace {

/// The three planes wired by hand — no GmrManager facade, no notifier.
struct Rig {
  Rig()
      : disk(&clock, CostModel::Default()),
        pool(&disk, 256),
        storage(&pool),
        om(&schema, &storage, &clock),
        interp(&om, &registry),
        catalog(&om, &registry, &storage, /*second_chance_rrr=*/false),
        maint(&om, &interp, &registry, &catalog, &stats, GmrManagerOptions{}),
        read_path(&om, &interp, &catalog, &maint, &stats) {
    geo = *workload::CuboidSchema::Declare(&schema, &registry);
    iron = *geo.MakeMaterial(&om, "Iron", 7.86);
    c1 = *geo.MakeCuboid(&om, 10, 6, 5, iron);  // volume 300
    c2 = *geo.MakeCuboid(&om, 10, 5, 4, iron);  // volume 200
    c3 = *geo.MakeCuboid(&om, 5, 5, 4, iron);   // volume 100
  }

  GmrId MaterializeVolume() {
    GmrSpec spec;
    spec.name = "volume";
    spec.arg_types = {TypeRef::Object(geo.cuboid)};
    spec.functions = {geo.volume};
    auto id = maint.Materialize(std::move(spec));
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    return *id;
  }

  SimClock clock;
  SimDisk disk;
  BufferPool pool;
  StorageManager storage;
  Schema schema;
  ObjectManager om;
  funclang::FunctionRegistry registry;
  funclang::Interpreter interp;
  GmrStats stats;
  GmrCatalog catalog;
  GmrMaintenance maint;
  GmrReadPath read_path;
  workload::CuboidSchema geo;
  Oid iron, c1, c2, c3;
};

/// A session-style context: private clock and stats, concurrent flag on.
struct ConcurrentCtx {
  ConcurrentCtx() {
    ctx.clock = &clock;
    ctx.stats = &stats;
    ctx.session_id = 1;
    ctx.concurrent = true;
  }
  SimClock clock;
  SessionStats stats;
  ExecutionContext ctx;
};

TEST(ReadPathTest, ConcurrentHitReturnsCachedValue) {
  Rig rig;
  GmrId id = rig.MaterializeVolume();
  ConcurrentCtx session;

  auto v = rig.read_path.ForwardLookup(&session.ctx, rig.geo.volume,
                                       {Value::Ref(rig.c1)});
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_DOUBLE_EQ(v->as_float(), 300.0);
  EXPECT_EQ(rig.stats.forward_hits, 1u);
  EXPECT_EQ(session.stats.plain_evaluations, 0u);

  // Read-only: no row state changed.
  Gmr* gmr = *rig.catalog.Get(id);
  auto row = gmr->FindRow({Value::Ref(rig.c1)});
  ASSERT_TRUE(row.ok());
  EXPECT_TRUE((*gmr->Get(*row))->valid[0]);
}

TEST(ReadPathTest, ConcurrentInvalidRowComputesTransiently) {
  Rig rig;
  GmrId id = rig.MaterializeVolume();
  ASSERT_TRUE(rig.maint.InvalidateAllResults(id).ok());
  ConcurrentCtx session;

  auto v = rig.read_path.ForwardLookup(&session.ctx, rig.geo.volume,
                                       {Value::Ref(rig.c1)});
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_DOUBLE_EQ(v->as_float(), 300.0);
  EXPECT_EQ(rig.stats.forward_invalid, 1u);
  EXPECT_EQ(session.stats.plain_evaluations, 1u);

  // No self-heal: the row is still invalid — repair is maintenance work.
  Gmr* gmr = *rig.catalog.Get(id);
  auto row = gmr->FindRow({Value::Ref(rig.c1)});
  ASSERT_TRUE(row.ok());
  EXPECT_FALSE((*gmr->Get(*row))->valid[0]);
}

TEST(ReadPathTest, ConcurrentMissingRowComputesTransiently) {
  Rig rig;
  GmrId id = rig.MaterializeVolume();
  // A cuboid born after materialization: with no notifier installed the
  // extension never hears about it.
  Oid c4 = *rig.geo.MakeCuboid(&rig.om, 2, 3, 4, rig.iron);  // volume 24
  ConcurrentCtx session;

  auto v = rig.read_path.ForwardLookup(&session.ctx, rig.geo.volume,
                                       {Value::Ref(c4)});
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_DOUBLE_EQ(v->as_float(), 24.0);
  EXPECT_EQ(rig.stats.forward_misses, 1u);
  EXPECT_EQ(session.stats.plain_evaluations, 1u);

  // Unlike the owner path, no row was inserted.
  Gmr* gmr = *rig.catalog.Get(id);
  EXPECT_EQ(gmr->live_rows(), 3u);
  EXPECT_FALSE(gmr->FindRow({Value::Ref(c4)}).ok());
}

TEST(ReadPathTest, ConcurrentUnmaterializedFunctionFallsThrough) {
  Rig rig;
  rig.MaterializeVolume();
  ConcurrentCtx session;

  EXPECT_TRUE(rig.read_path.IsMaterializedShared(rig.geo.volume));
  EXPECT_FALSE(rig.read_path.IsMaterializedShared(rig.geo.weight));

  auto v = rig.read_path.ForwardLookup(&session.ctx, rig.geo.weight,
                                       {Value::Ref(rig.c1)});
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_DOUBLE_EQ(v->as_float(), 300.0 * 7.86);
  EXPECT_EQ(session.stats.plain_evaluations, 1u);
  EXPECT_EQ(rig.stats.forward_hits, 0u);
  EXPECT_EQ(rig.stats.forward_invalid, 0u);
  EXPECT_EQ(rig.stats.forward_misses, 0u);
}

TEST(ReadPathTest, ConcurrentBackwardRangeOverValidRows) {
  Rig rig;
  rig.MaterializeVolume();
  ConcurrentCtx session;

  auto rows = rig.read_path.BackwardRange(&session.ctx, rig.geo.volume, 150,
                                          400, true, true);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 2u);
  std::vector<Oid> got = {(*rows)[0][0].as_ref(), (*rows)[1][0].as_ref()};
  EXPECT_TRUE((got[0] == rig.c1 && got[1] == rig.c2) ||
              (got[0] == rig.c2 && got[1] == rig.c1));
  EXPECT_EQ(rig.stats.backward_queries, 1u);
  EXPECT_EQ(session.stats.plain_evaluations, 0u);
}

TEST(ReadPathTest, ConcurrentBackwardResolvesInvalidRowsTransiently) {
  Rig rig;
  GmrId id = rig.MaterializeVolume();
  ASSERT_TRUE(rig.maint.InvalidateAllResults(id).ok());
  ConcurrentCtx session;

  auto rows = rig.read_path.BackwardRange(&session.ctx, rig.geo.volume, 150,
                                          400, true, true);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 2u);
  // All three rows were invalid, so all three were recomputed transiently.
  EXPECT_EQ(session.stats.plain_evaluations, 3u);

  // Still no self-heal.
  Gmr* gmr = *rig.catalog.Get(id);
  auto row = gmr->FindRow({Value::Ref(rig.c1)});
  ASSERT_TRUE(row.ok());
  EXPECT_FALSE((*gmr->Get(*row))->valid[0]);
}

TEST(ReadPathTest, ConcurrentBackwardRejectsIncrementalGmr) {
  Rig rig;
  GmrSpec spec;
  spec.name = "volume_cache";
  spec.arg_types = {TypeRef::Object(rig.geo.cuboid)};
  spec.functions = {rig.geo.volume};
  spec.complete = false;
  ASSERT_TRUE(rig.maint.Materialize(std::move(spec)).ok());
  ConcurrentCtx session;

  auto rows = rig.read_path.BackwardRange(&session.ctx, rig.geo.volume, 0,
                                          1000, true, true);
  EXPECT_EQ(rows.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ReadPathTest, OwnerPathStillHealsInvalidRows) {
  Rig rig;
  GmrId id = rig.MaterializeVolume();
  ASSERT_TRUE(rig.maint.InvalidateAllResults(id).ok());

  // Owner mode (null context): the pre-split repair semantics.
  auto v = rig.read_path.ForwardLookup(nullptr, rig.geo.volume,
                                       {Value::Ref(rig.c1)});
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_DOUBLE_EQ(v->as_float(), 300.0);
  EXPECT_EQ(rig.stats.forward_invalid, 1u);

  Gmr* gmr = *rig.catalog.Get(id);
  auto row = gmr->FindRow({Value::Ref(rig.c1)});
  ASSERT_TRUE(row.ok());
  EXPECT_TRUE((*gmr->Get(*row))->valid[0]);
}

TEST(ReadPathTest, SessionClockChargesStayPrivate) {
  Rig rig;
  rig.MaterializeVolume();
  ConcurrentCtx session;
  double global_before = rig.clock.seconds();

  auto v = rig.read_path.BackwardRange(&session.ctx, rig.geo.volume, 0, 1000,
                                       true, true);
  ASSERT_TRUE(v.ok());
  // The index probe was charged to the session's clock, not the global one.
  EXPECT_GT(session.clock.seconds(), 0.0);
  EXPECT_DOUBLE_EQ(rig.clock.seconds(), global_before);
}

}  // namespace
}  // namespace gom
