// Replication convergence: the seeded fault sweep, snapshot bootstrap,
// strict-LSN apply discipline, staleness-bounded replica reads and
// promotion with an oracle check on post-promotion writes.

#include <cstdio>
#include <vector>

#include "gtest/gtest.h"
#include "repl/rig.h"
#include "repl/snapshot.h"

namespace gom::repl {
namespace {

TEST(ReplicationTest, SnapshotBootstrapConverges) {
  RigOptions opts;
  opts.num_cuboids = 8;
  ReplicationRig rig(opts);
  ASSERT_TRUE(rig.setup.ok()) << rig.setup.ToString();
  ASSERT_TRUE(rig.AddReplica().ok());
  ASSERT_TRUE(rig.PumpUntilCaughtUp().ok());
  auto conv = rig.Converged();
  ASSERT_TRUE(conv.ok()) << conv.status().ToString();
  EXPECT_TRUE(*conv);
  // Bootstrap over a truncated-away resume point is a snapshot, not a
  // record stream.
  EXPECT_EQ(rig.replica(0).stats().snapshots_installed, 1u);
}

TEST(ReplicationTest, SnapshotEncodeDecodeRoundTrips) {
  RigOptions opts;
  opts.num_cuboids = 6;
  ReplicationRig rig(opts);
  ASSERT_TRUE(rig.setup.ok()) << rig.setup.ToString();
  ASSERT_TRUE(rig.RunMix(20, 7).ok());
  auto snap = CaptureSnapshot(&rig.primary());
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  std::vector<uint8_t> bytes = EncodeSnapshot(*snap);
  auto back = DecodeSnapshot(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->lsn, snap->lsn);
  EXPECT_EQ(back->next_oid, snap->next_oid);
  EXPECT_EQ(back->objects.size(), snap->objects.size());
  EXPECT_EQ(back->rows.size(), snap->rows.size());
  EXPECT_EQ(back->rrr.size(), snap->rrr.size());
  EXPECT_EQ(EncodeSnapshot(*back), bytes);
}

TEST(ReplicationTest, CleanStreamTracksUpdateMix) {
  RigOptions opts;
  opts.num_cuboids = 10;
  ReplicationRig rig(opts);
  ASSERT_TRUE(rig.setup.ok()) << rig.setup.ToString();
  ASSERT_TRUE(rig.AddReplica().ok());
  ASSERT_TRUE(rig.PumpUntilCaughtUp().ok());
  for (uint64_t round = 0; round < 5; ++round) {
    ASSERT_TRUE(rig.RunMix(25, 100 + round).ok());
    ASSERT_TRUE(rig.PumpUntilCaughtUp().ok());
    auto conv = rig.Converged();
    ASSERT_TRUE(conv.ok()) << conv.status().ToString();
    EXPECT_TRUE(*conv) << "diverged after mix round " << round;
  }
  // A fault-free stream never needs a reconnect or sees a gap.
  EXPECT_EQ(rig.reconnects(0), 0u);
  EXPECT_EQ(rig.replica(0).stats().gaps_detected, 0u);
}

TEST(ReplicationTest, ReplicaReadsServeMaterializedResults) {
  RigOptions opts;
  opts.num_cuboids = 8;
  ReplicationRig rig(opts);
  ASSERT_TRUE(rig.setup.ok()) << rig.setup.ToString();
  ASSERT_TRUE(rig.AddReplica().ok());
  ASSERT_TRUE(rig.RunMix(30, 11).ok());
  ASSERT_TRUE(rig.PumpUntilCaughtUp().ok());

  Oid c = rig.cuboids().front();
  auto want = rig.primary().mgr.ForwardLookup(rig.geo().volume,
                                              {Value::Ref(c)});
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  ASSERT_TRUE(rig.PumpUntilCaughtUp().ok());  // the lookup may have logged

  auto got = rig.replica(0).ForwardRead(rig.geo().volume, {Value::Ref(c)},
                                        /*min_lsn=*/0);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_DOUBLE_EQ(got->as_float(), want->as_float());

  // Staleness bound: demanding an LSN beyond the applied position is a
  // typed, retryable refusal.
  Lsn beyond = rig.replica(0).applied_lsn() + 1000;
  auto stale = rig.replica(0).ForwardRead(rig.geo().volume, {Value::Ref(c)},
                                          beyond);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kStale);
}

// The tentpole acceptance sweep: >= 200 distinct fault schedules (drops,
// duplicates, reorders, corruption, mid-frame cuts, stalls — alone and
// combined), each followed by a convergence check that the replica's
// digest of objects + GMR extensions + RRR is bit-identical to the
// primary's.
TEST(ReplicationTest, FaultSweepConvergesBitIdentical) {
  constexpr size_t kPoints = 200;
  FaultyLink::Counters totals;
  uint64_t total_reconnects = 0;
  uint64_t total_dups_skipped = 0;
  uint64_t total_gaps = 0;

  for (size_t point = 0; point < kPoints; ++point) {
    RigOptions opts;
    opts.num_cuboids = 6;
    opts.populate_seed = 97 + point;
    opts.faults.seed = 1000 + point;
    // Walk a lattice of fault mixes; every class gets exercised alone and
    // in combination across the sweep.
    opts.faults.drop_rate = 0.05 * (point % 5);
    opts.faults.corrupt_rate = 0.04 * ((point / 5) % 3);
    opts.faults.duplicate_rate = 0.06 * ((point / 3) % 3);
    opts.faults.reorder_rate = 0.05 * ((point / 7) % 4);
    opts.faults.cut_rate = 0.03 * ((point / 11) % 3);
    opts.faults.stall_rate = 0.06 * ((point / 13) % 3);
    // Small ship batches turn each catch-up into a multi-frame stream, so
    // mid-stream drops surface as detectable gaps and duplicated frames
    // actually get drained (a faulted tail frame only ever times out).
    opts.ship.max_records_per_ship = 8;

    ReplicationRig rig(opts);
    ASSERT_TRUE(rig.setup.ok()) << rig.setup.ToString();
    ASSERT_TRUE(rig.AddReplica().ok());
    for (uint64_t round = 0; round < 3; ++round) {
      ASSERT_TRUE(rig.RunMix(8, 5000 + point * 7 + round).ok());
      Status pumped = rig.PumpUntilCaughtUp();
      ASSERT_TRUE(pumped.ok())
          << "point " << point << ": " << pumped.ToString();
    }
    auto conv = rig.Converged();
    ASSERT_TRUE(conv.ok()) << conv.status().ToString();
    ASSERT_TRUE(*conv) << "digest divergence at sweep point " << point;

    const FaultyLink::Counters& c = rig.link(0).counters();
    totals.cut += c.cut;
    totals.dropped += c.dropped;
    totals.corrupted += c.corrupted;
    totals.duplicated += c.duplicated;
    totals.reordered += c.reordered;
    totals.stalled += c.stalled;
    total_reconnects += rig.reconnects(0);
    total_dups_skipped += rig.replica(0).stats().duplicates_skipped;
    total_gaps += rig.replica(0).stats().gaps_detected;
  }

  // The sweep must actually have injected every fault class and forced
  // the recovery machinery through its paces — otherwise the 200 green
  // points prove nothing.
  EXPECT_GT(totals.cut, 0u);
  EXPECT_GT(totals.dropped, 0u);
  EXPECT_GT(totals.corrupted, 0u);
  EXPECT_GT(totals.duplicated, 0u);
  EXPECT_GT(totals.reordered, 0u);
  EXPECT_GT(totals.stalled, 0u);
  EXPECT_GT(total_reconnects, 0u);
  EXPECT_GT(total_dups_skipped, 0u);
  EXPECT_GT(total_gaps, 0u);
  std::printf(
      "sweep: %llu cuts, %llu drops, %llu corruptions, %llu duplicates, "
      "%llu reorders, %llu stalls, %llu reconnects, %llu dup-skips, "
      "%llu gaps\n",
      static_cast<unsigned long long>(totals.cut),
      static_cast<unsigned long long>(totals.dropped),
      static_cast<unsigned long long>(totals.corrupted),
      static_cast<unsigned long long>(totals.duplicated),
      static_cast<unsigned long long>(totals.reordered),
      static_cast<unsigned long long>(totals.stalled),
      static_cast<unsigned long long>(total_reconnects),
      static_cast<unsigned long long>(total_dups_skipped),
      static_cast<unsigned long long>(total_gaps));
}

TEST(ReplicationTest, TwoReplicasConvergeIndependently) {
  RigOptions opts;
  opts.num_cuboids = 8;
  opts.faults.seed = 42;
  opts.faults.drop_rate = 0.1;
  opts.faults.duplicate_rate = 0.1;
  opts.faults.reorder_rate = 0.1;
  ReplicationRig rig(opts);
  ASSERT_TRUE(rig.setup.ok()) << rig.setup.ToString();
  ASSERT_TRUE(rig.AddReplica().ok());
  ASSERT_TRUE(rig.AddReplica().ok());
  ASSERT_TRUE(rig.RunMix(40, 77).ok());
  ASSERT_TRUE(rig.PumpUntilCaughtUp().ok());
  auto conv = rig.Converged();
  ASSERT_TRUE(conv.ok()) << conv.status().ToString();
  EXPECT_TRUE(*conv);
}

// Promotion: a caught-up replica becomes a writable primary. Post-
// promotion writes are oracle-checked — a cuboid created on the promoted
// node with known edge lengths must answer volume = a·b·c through the
// GMR, and updating a vertex must invalidate-and-recompute, never serve
// the stale result.
TEST(ReplicationTest, PromotionServesOracleCheckedWrites) {
  RigOptions opts;
  opts.num_cuboids = 8;
  opts.faults.seed = 9;
  opts.faults.drop_rate = 0.1;  // promotion after a bumpy stream
  ReplicationRig rig(opts);
  ASSERT_TRUE(rig.setup.ok()) << rig.setup.ToString();
  ASSERT_TRUE(rig.AddReplica().ok());
  ASSERT_TRUE(rig.RunMix(30, 13).ok());
  ASSERT_TRUE(rig.PumpUntilCaughtUp().ok());
  auto conv = rig.Converged();
  ASSERT_TRUE(conv.ok() && *conv);

  ReplicaCore& core = rig.replica(0);
  ASSERT_TRUE(core.Promote().ok());
  EXPECT_TRUE(core.promoted());
  // Idempotent, and shipped traffic is refused from now on.
  EXPECT_TRUE(core.Promote().ok());
  server::ReplMsg ship;
  ship.type = server::ReplMsgType::kWalShip;
  EXPECT_EQ(core.Handle(ship).status().code(),
            StatusCode::kFailedPrecondition);

  workload::Environment& env = rig.replica_env(0);
  const workload::CuboidSchema& geo = rig.replica_geo(0);

  // Oracle 1: fresh cuboid with known edges answers a·b·c.
  auto made = geo.MakeCuboid(&env.om, 2.0, 3.0, 4.0, rig.iron());
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  auto vol = env.mgr.ForwardLookup(geo.volume, {Value::Ref(*made)});
  ASSERT_TRUE(vol.ok()) << vol.status().ToString();
  EXPECT_DOUBLE_EQ(vol->as_float(), 24.0);

  // Oracle 2: updating replicated state recomputes through the notifier.
  Oid existing = kNilOid;
  for (Oid c : rig.cuboids()) {
    if (env.om.Exists(c)) {
      existing = c;
      break;
    }
  }
  ASSERT_NE(existing, kNilOid);
  auto before = env.mgr.ForwardLookup(geo.volume, {Value::Ref(existing)});
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  auto v1 = env.om.GetAttribute(existing, "V1");
  ASSERT_TRUE(v1.ok());
  // Move V1 far along X: the box spanned by the vertices changes volume.
  auto x = env.om.GetAttribute(v1->as_ref(), "X");
  ASSERT_TRUE(x.ok());
  ASSERT_TRUE(env.om
                  .SetAttribute(v1->as_ref(), "X",
                                Value::Float(x->as_float() + 5.0))
                  .ok());
  auto after = env.mgr.ForwardLookup(geo.volume, {Value::Ref(existing)});
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_NE(after->as_float(), before->as_float());

  // Oracle 3: the plain interpreter agrees with the GMR answer.
  auto plain = env.interp.Invoke(geo.volume, {Value::Ref(existing)});
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_DOUBLE_EQ(after->as_float(), plain->as_float());
}

}  // namespace
}  // namespace gom::repl
