// End-to-end service-layer tests over a real loopback socket: queries
// against a live server, pipelining and overload shedding, protocol-error
// handling, abrupt client disconnects mid-query, and graceful drain with
// requests in flight.

#include "server/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/client.h"
#include "workload/stack.h"

namespace gom::server {
namespace {

using workload::CompanyStack;
using workload::StackOptions;

struct Rig {
  explicit Rig(ServerOptions sopts = {}, size_t cuboids = 32) {
    StackOptions opts;
    opts.num_cuboids = cuboids;
    opts.seed = 71;
    opts.materialize_volume = true;
    opts.notify = true;
    stack = workload::MakeCompanyStack(opts);
    EXPECT_TRUE(stack->setup.ok()) << stack->setup.ToString();
    server = std::make_unique<Server>(&stack->env, sopts);
    Status st = server->Start();
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  ~Rig() { server->Stop(); }

  std::unique_ptr<CompanyStack> stack;
  std::unique_ptr<Server> server;
};

TEST(ServerTest, PingQueryExplainStatsOverTheWire) {
  Rig rig;
  Client client;
  ASSERT_TRUE(client.Connect(rig.server->port()).ok());
  ASSERT_TRUE(client.Ping().ok());

  // Forward query against the oracle computed in-process.
  auto oracle = rig.stack->env.mgr.ForwardLookup(
      rig.stack->geo.volume, {Value::Ref(rig.stack->cuboids[0])});
  ASSERT_TRUE(oracle.ok());
  auto remote = client.Forward(rig.stack->geo.volume,
                               {Value::Ref(rig.stack->cuboids[0])});
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_EQ(*remote, *oracle);

  // Backward range query: every returned row's value lies in range.
  auto rows = client.Backward(rig.stack->geo.volume, 0.0, 1e12);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), rig.stack->cuboids.size());

  // GOMql text query and its EXPLAIN.
  auto gomql = client.RunGomql(
      "range c: Cuboid retrieve c.volume where c.volume > 0.0");
  ASSERT_TRUE(gomql.ok()) << gomql.status().ToString();
  EXPECT_EQ(gomql->size(), rig.stack->cuboids.size());
  auto plan = client.Explain(
      "range c: Cuboid retrieve c.volume where c.volume > 0.0");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->find("*"), std::string::npos);

  // Errors come back as Status codes, not dead connections.
  auto bad = client.RunGomql("retrieve nonsense");
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(client.Ping().ok());  // connection still usable

  auto stats = client.ServerStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("\"requests_ok\""), std::string::npos);
}

TEST(ServerTest, ConcurrentClientsAgreeWithOracle) {
  Rig rig;
  CompanyStack& s = *rig.stack;
  std::vector<double> expected(s.cuboids.size());
  for (size_t i = 0; i < s.cuboids.size(); ++i) {
    auto v = s.env.mgr.ForwardLookup(s.geo.volume, {Value::Ref(s.cuboids[i])});
    ASSERT_TRUE(v.ok());
    expected[i] = *v->AsDouble();
  }

  constexpr size_t kClients = 4;
  constexpr size_t kQueries = 200;
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      Client client;
      if (!client.Connect(rig.server->port()).ok()) {
        mismatches.fetch_add(kQueries);
        return;
      }
      for (size_t i = 0; i < kQueries; ++i) {
        size_t idx = (t * 131 + i) % s.cuboids.size();
        auto v = client.Forward(s.geo.volume, {Value::Ref(s.cuboids[idx])});
        if (!v.ok() || !v->is_numeric() || *v->AsDouble() != expected[idx]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0u);

  auto snap = rig.server->stats();
  EXPECT_EQ(snap.requests_ok, kClients * kQueries);
  EXPECT_EQ(snap.requests_error, 0u);
}

TEST(ServerTest, PipeliningShedsAtTheConnectionCap) {
  ServerOptions sopts;
  sopts.num_workers = 1;
  sopts.admission.max_inflight_per_conn = 2;
  sopts.admission.max_queue_depth = 64;
  Rig rig(sopts);
  // Stall the read path so pipelined requests pile up behind the single
  // worker instead of completing as fast as they arrive.
  rig.stack->env.mgr.set_io_stall_us(2'000);

  Client client;
  ASSERT_TRUE(client.Connect(rig.server->port()).ok());
  constexpr size_t kBurst = 16;
  for (size_t i = 0; i < kBurst; ++i) {
    Request req;
    req.type = RequestType::kForward;
    req.id = client.NextId();
    req.function = rig.stack->geo.volume;
    req.args = {Value::Ref(rig.stack->cuboids[0])};
    ASSERT_TRUE(client.Send(req).ok());
  }
  size_t ok = 0, overloaded = 0;
  for (size_t i = 0; i < kBurst; ++i) {
    auto resp = client.Receive();
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    if (resp->code == StatusCode::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(resp->code, StatusCode::kOverloaded) << resp->message;
      ++overloaded;
    }
  }
  EXPECT_EQ(ok + overloaded, kBurst);
  EXPECT_GT(ok, 0u);          // admitted work completed
  EXPECT_GT(overloaded, 0u);  // the cap actually shed
  EXPECT_GT(rig.server->stats().admission.shed_conn_cap, 0u);
  EXPECT_TRUE(client.Ping().ok());  // shedding never kills the connection
}

TEST(ServerTest, ProtocolGarbageClosesOnlyThatConnection) {
  Rig rig;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(rig.server->port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char junk[] = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_GT(::send(fd, junk, sizeof(junk) - 1, 0), 0);
  // The server answers with an error frame and hangs up.
  char buf[512];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
  }
  EXPECT_EQ(n, 0);  // orderly close, not a reset-and-crash
  ::close(fd);

  // Wait for the connection teardown to be accounted, then check health.
  for (int i = 0; i < 200 && rig.server->stats().open_connections > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(rig.server->stats().protocol_errors, 0u);
  Client client;
  ASSERT_TRUE(client.Connect(rig.server->port()).ok());
  EXPECT_TRUE(client.Ping().ok());
}

TEST(ServerTest, ClientVanishingMidQueryReleasesTheSession) {
  Rig rig;
  rig.stack->env.mgr.set_io_stall_us(2'000);
  {
    Client client;
    ASSERT_TRUE(client.Connect(rig.server->port()).ok());
    Request req;
    req.type = RequestType::kGomql;
    req.id = client.NextId();
    req.text = "range c: Cuboid retrieve c.volume where c.volume > 0.0";
    ASSERT_TRUE(client.Send(req).ok());
    client.Close();  // vanish while the query is (likely) executing
  }
  // The reader sees EOF, the in-flight request still completes, the write
  // fails harmlessly, and the session returns to the pool: eventually no
  // connection is open and every pooled session is free again.
  workload::SessionPool& pool = *rig.stack->env.session_pool;
  for (int i = 0; i < 1000; ++i) {
    if (rig.server->stats().open_connections == 0 &&
        pool.free_count() == pool.session_count()) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(rig.server->stats().open_connections, 0u);
  EXPECT_EQ(pool.free_count(), pool.session_count());

  Client client;
  ASSERT_TRUE(client.Connect(rig.server->port()).ok());
  EXPECT_TRUE(client.Ping().ok());
}

TEST(ServerTest, GracefulDrainUnderLoad) {
  Rig rig;
  CompanyStack& s = *rig.stack;
  s.env.mgr.set_io_stall_us(500);

  std::atomic<bool> stop{false};
  std::atomic<size_t> bad{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Client client;
      if (!client.Connect(rig.server->port()).ok()) return;
      size_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        size_t idx = (t * 37 + i++) % s.cuboids.size();
        auto v = client.Forward(s.geo.volume, {Value::Ref(s.cuboids[idx])});
        if (!v.ok()) {
          // Losing the connection to the drain is expected; a wrong answer
          // or server-reported internal error is not.
          if (v.status().code() != StatusCode::kIoError) {
            bad.fetch_add(1);
          }
          return;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  rig.server->Stop();  // drain with requests in flight
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0u);

  auto snap = rig.server->stats();
  EXPECT_EQ(snap.open_connections, 0u);
  EXPECT_EQ(snap.connections_accepted, snap.connections_closed);
  EXPECT_EQ(snap.admission.queued, 0u);
  EXPECT_EQ(snap.admission.executing, 0u);
  // All sessions are back in the pool after the drain.
  EXPECT_EQ(rig.stack->env.session_pool->free_count(),
            rig.stack->env.session_pool->session_count());

  // Stop is idempotent, and a stopped server refuses new work cleanly.
  rig.server->Stop();
  Client late;
  EXPECT_FALSE(late.Connect(rig.server->port()).ok() && late.Ping().ok());
}

// --- hostile-client behaviour against the reactor ---------------------------

namespace {

int RawConnect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

}  // namespace

TEST(ServerHostileTest, SlowLorisFrameDripDoesNotStallOtherClients) {
  Rig rig;
  CompanyStack& s = *rig.stack;

  // A valid Ping frame, dripped one byte at a time with pauses: the
  // reactor must buffer the partial frame without dedicating a thread to
  // it or blocking anyone else.
  Request ping;
  ping.type = RequestType::kPing;
  ping.id = 7;
  std::vector<uint8_t> frame;
  EncodeRequest(ping, &frame);

  int loris = RawConnect(rig.server->port());
  Client busy;
  ASSERT_TRUE(busy.Connect(rig.server->port()).ok());

  size_t served_during_drip = 0;
  for (size_t off = 0; off < frame.size(); ++off) {
    ASSERT_EQ(::send(loris, frame.data() + off, 1, 0), 1);
    // The fast client keeps completing full round trips between bytes.
    auto v = busy.Forward(s.geo.volume, {Value::Ref(s.cuboids[0])});
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    ++served_during_drip;
  }
  EXPECT_EQ(served_during_drip, frame.size());

  // Once the last byte lands the dripped request is answered normally.
  uint8_t buf[256];
  ssize_t n = ::recv(loris, buf, sizeof(buf), 0);
  EXPECT_GT(n, 0);
  ::close(loris);
}

TEST(ServerHostileTest, MidFrameDisconnectIsSweptWithoutProtocolError) {
  Rig rig;
  Request ping;
  ping.type = RequestType::kPing;
  ping.id = 1;
  std::vector<uint8_t> frame;
  EncodeRequest(ping, &frame);

  int fd = RawConnect(rig.server->port());
  // Half a frame, then vanish: the buffered prefix is discarded with the
  // connection — an EOF mid-frame is a disconnect, not a protocol crime.
  ASSERT_GT(::send(fd, frame.data(), frame.size() / 2, 0), 0);
  ::close(fd);

  for (int i = 0; i < 400 && rig.server->stats().open_connections > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  auto snap = rig.server->stats();
  EXPECT_EQ(snap.open_connections, 0u);
  EXPECT_EQ(snap.protocol_errors, 0u);

  Client client;
  ASSERT_TRUE(client.Connect(rig.server->port()).ok());
  EXPECT_TRUE(client.Ping().ok());
}

TEST(ServerHostileTest, OversizedFrameHeaderIsRefusedBeforeAllocation) {
  Rig rig;
  int fd = RawConnect(rig.server->port());
  // Valid magic, declared payload far beyond kMaxFrameBytes: the reactor
  // must refuse on the header alone — never reserve gigabytes on a
  // hostile length.
  uint8_t header[kFrameHeaderBytes];
  uint32_t magic = kFrameMagic;
  uint32_t len = kMaxFrameBytes + 1;
  uint32_t crc = 0;
  std::memcpy(header, &magic, 4);
  std::memcpy(header + 4, &len, 4);
  std::memcpy(header + 8, &crc, 4);
  ASSERT_EQ(::send(fd, header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));

  // The server answers with an error frame (best effort) and hangs up.
  char buf[512];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
  }
  EXPECT_EQ(n, 0);
  ::close(fd);

  for (int i = 0; i < 400 && rig.server->stats().open_connections > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(rig.server->stats().protocol_errors, 0u);
  Client client;
  ASSERT_TRUE(client.Connect(rig.server->port()).ok());
  EXPECT_TRUE(client.Ping().ok());
}

TEST(ServerHostileTest, IdleConnectionsAreEvictedWhileOthersAreServed) {
  ServerOptions sopts;
  sopts.admission.idle_timeout_ms = 150;
  Rig rig(sopts);
  CompanyStack& s = *rig.stack;

  // One connection goes idle after a single request; another keeps
  // issuing traffic the whole time so the sweep runs under load.
  Client idle;
  ASSERT_TRUE(idle.Connect(rig.server->port()).ok());
  ASSERT_TRUE(idle.Ping().ok());

  Client busy;
  ASSERT_TRUE(busy.Connect(rig.server->port()).ok());
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(2'000);
  bool evicted = false;
  size_t i = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    auto v = busy.Forward(
        s.geo.volume, {Value::Ref(s.cuboids[i++ % s.cuboids.size()])});
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    if (rig.server->stats().idle_closes > 0) {
      evicted = true;
      break;
    }
  }
  EXPECT_TRUE(evicted) << "idle connection was not evicted within 2 s";
  // The busy connection was never the one evicted.
  EXPECT_TRUE(busy.Ping().ok());
  // The idle one is gone: its next call fails on a closed socket.
  EXPECT_FALSE(idle.Ping().ok());
}

// --- retry backoff jitter ----------------------------------------------------

TEST(RetryJitterTest, JitteredBackoffIsDeterministicAndBounded) {
  uint64_t a = 42, b = 42, c = 43;
  bool differed = false;
  for (int round = 0; round < 64; ++round) {
    int64_t base = 20 << (round % 5);
    int64_t x = JitteredBackoffMs(base, 0.5, &a);
    int64_t y = JitteredBackoffMs(base, 0.5, &b);
    int64_t z = JitteredBackoffMs(base, 0.5, &c);
    EXPECT_EQ(x, y);  // same seed, same schedule
    if (x != z) differed = true;
    // Equal jitter: always within [base/2, base].
    EXPECT_GE(x, base / 2);
    EXPECT_LE(x, base);
  }
  EXPECT_TRUE(differed) << "distinct seeds produced identical schedules";

  // jitter = 0 restores the fixed schedule exactly.
  uint64_t s = 7;
  EXPECT_EQ(JitteredBackoffMs(80, 0.0, &s), 80);
  EXPECT_EQ(s, 7u);  // state untouched when jitter is off
}

TEST(RetryJitterTest, FailoverClientStillRetriesWithJitterOn) {
  // Against a dead endpoint the client must walk its (single-entry) list,
  // back off with jitter, and give up after max_retries — jitter changes
  // the sleep lengths, never the retry budget.
  RetryOptions ropts;
  ropts.max_retries = 2;
  ropts.initial_backoff_ms = 1;
  ropts.max_backoff_ms = 4;
  ClientOptions copts;
  copts.connect_deadline_ms = 50;
  FailoverClient client({/*unused port*/ 1}, copts, ropts);
  Status st = client.Ping();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(client.stats().attempts, 0u);  // connects never succeeded
  EXPECT_GE(client.stats().failovers, 2u);
}

}  // namespace
}  // namespace gom::server
