// SessionPool edge cases: session creation racing active readers, the
// writer gate under a waiting writer with churning readers, and session
// release/reuse (the server's abrupt-connection-close path).

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "workload/session.h"
#include "workload/stack.h"

namespace gom {
namespace {

using workload::CompanyStack;
using workload::Session;
using workload::SessionPool;
using workload::StackOptions;

std::unique_ptr<CompanyStack> MakeStack(size_t cuboids = 64) {
  StackOptions opts;
  opts.num_cuboids = cuboids;
  opts.seed = 53;
  opts.materialize_volume = true;
  opts.notify = true;
  auto stack = workload::MakeCompanyStack(opts);
  EXPECT_TRUE(stack->setup.ok()) << stack->setup.ToString();
  return stack;
}

TEST(SessionPoolTest, MakeSessionRacesActiveReaders) {
  auto stack = MakeStack();
  CompanyStack& s = *stack;

  // Four long-lived readers hammer forward queries while the coordinating
  // thread churns MakeSession/ReleaseSession — the accept path of the
  // server does exactly this against live traffic.
  constexpr size_t kReaders = 4;
  std::vector<Session*> readers;
  for (size_t t = 0; t < kReaders; ++t) readers.push_back(s.env.MakeSession());

  std::atomic<bool> stop{false};
  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      size_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        size_t idx = (t * 31 + i++) % s.cuboids.size();
        auto v = readers[t]->ForwardQuery(s.geo.volume,
                                          {Value::Ref(s.cuboids[idx])});
        if (!v.ok()) failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int round = 0; round < 200; ++round) {
    Session* extra = s.env.MakeSession();
    auto v = extra->ForwardQuery(s.geo.volume, {Value::Ref(s.cuboids[0])});
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    s.env.ReleaseSession(extra);
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0u);

  // Churned sessions were recycled, not accumulated: the pool holds the 4
  // reader sessions plus at most one recycled churn session.
  EXPECT_LE(s.env.session_pool->session_count(), kReaders + 1);
  EXPECT_EQ(s.env.session_pool->free_count(), 1u);
}

TEST(SessionPoolTest, WriterGateUnderChurningReaders) {
  auto stack = MakeStack(32);
  CompanyStack& s = *stack;

  constexpr size_t kReaders = 4;
  std::vector<Session*> readers;
  for (size_t t = 0; t < kReaders; ++t) readers.push_back(s.env.MakeSession());

  std::atomic<bool> stop{false};
  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      size_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        size_t idx = (t * 17 + i++) % s.cuboids.size();
        auto v = readers[t]->ForwardQuery(s.geo.volume,
                                          {Value::Ref(s.cuboids[idx])});
        if (!v.ok()) failures.fetch_add(1, std::memory_order_relaxed);
        // Brief backoff: glibc's rwlock prefers readers, so four readers
        // re-acquiring back-to-back would starve the waiting writer for
        // minutes. Real sessions think between queries; model that.
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    });
  }

  // The writer repeatedly waits for the exclusive gate under full reader
  // churn. Progress (all 50 storms complete) is the starvation check.
  static const char* kCoords[] = {"X", "Y", "Z"};
  Rng rng(7);
  for (int storm = 0; storm < 50; ++storm) {
    SessionPool::WriterLock lock(s.env.session_pool.get());
    GmrManager::UpdateBatch batch(&s.env.mgr);
    for (int i = 0; i < 4; ++i) {
      Oid c = s.cuboids[rng.UniformInt(0, s.cuboids.size() - 1)];
      auto vertices = s.geo.VerticesOf(&s.env.om, c);
      ASSERT_TRUE(vertices.ok()) << vertices.status().ToString();
      ASSERT_TRUE(s.env.om
                      .SetAttribute(
                          (*vertices)[rng.UniformInt(1, 3)],
                          kCoords[rng.UniformInt(0, 2)],
                          Value::Float(rng.UniformDouble(1, 15)))
                      .ok());
    }
    ASSERT_TRUE(batch.Commit().ok());
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0u);
}

TEST(SessionPoolTest, ReleaseRecyclesAndResetsSessions) {
  auto stack = MakeStack(16);
  CompanyStack& s = *stack;

  Session* a = s.env.MakeSession();
  ASSERT_TRUE(
      a->ForwardQuery(s.geo.volume, {Value::Ref(s.cuboids[0])}).ok());
  EXPECT_GT(a->stats().forward_queries, 0u);
  uint32_t a_id = a->id();

  // Abrupt-close path: the connection dies, the server releases the
  // session with stats intact (post-mortem), and the next connection gets
  // the recycled session with fresh counters.
  s.env.ReleaseSession(a);
  EXPECT_EQ(s.env.session_pool->free_count(), 1u);
  EXPECT_GT(a->stats().forward_queries, 0u);  // not reset on release

  Session* b = s.env.MakeSession();
  EXPECT_EQ(b, a);          // recycled, not newly allocated
  EXPECT_EQ(b->id(), a_id);  // identity preserved
  EXPECT_EQ(b->stats().forward_queries, 0u);  // reset on reuse
  EXPECT_EQ(s.env.session_pool->free_count(), 0u);
  EXPECT_EQ(s.env.session_pool->session_count(), 1u);

  // Releasing two and reacquiring two reuses both (LIFO order is an
  // implementation detail; the set of pointers is what must match).
  Session* c = s.env.MakeSession();
  std::set<Session*> released{b, c};
  s.env.ReleaseSession(b);
  s.env.ReleaseSession(c);
  EXPECT_EQ(s.env.session_pool->free_count(), 2u);
  std::set<Session*> reacquired{s.env.MakeSession(), s.env.MakeSession()};
  EXPECT_EQ(reacquired, released);
  EXPECT_EQ(s.env.session_pool->session_count(), 2u);
}

}  // namespace
}  // namespace gom
