// Cross-shard equivalence property suite: the sharded maintenance plane is
// a pure partitioning — it must never change WHAT is maintained, only WHERE.
// One deterministic update/query storm runs at shards ∈ {1, 2, 4} from the
// same seed; the union of the per-plane GMR extensions, the union of the
// per-plane reverse-reference relations, every forward/backward answer and
// the summed maintenance counters must then be bit-identical to the
// 1-shard oracle. The storm covers relevant writes, coalesced batches,
// inserts (complete-extension growth), deletes, forward lookups and
// backward range queries, under both the immediate and the lazy strategy.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "workload/stack.h"

namespace gom {
namespace {

using workload::CompanyStack;
using workload::StackOptions;

constexpr size_t kNumCuboids = 24;
constexpr size_t kMixSteps = 160;

std::unique_ptr<CompanyStack> MakeStack(size_t shards, RematStrategy remat) {
  StackOptions opts;
  opts.buffer_pages = 512;
  opts.gmr.shards = shards;
  opts.gmr.remat = remat;
  opts.num_cuboids = kNumCuboids;
  opts.seed = 97;
  opts.materialize_volume = true;
  opts.notify = true;
  auto stack = workload::MakeCompanyStack(opts);
  EXPECT_TRUE(stack->setup.ok()) << stack->setup.ToString();
  return stack;
}

/// The same seeded mix as a plain function of the rig: identical seeds make
/// identical draws, so every shard count performs the identical logical
/// storm. Single-threaded on purpose — equivalence is about the
/// partitioning, not the interleaving (concurrency_test and the perf
/// harness cover the multi-writer side).
void RunMix(CompanyStack& s, uint64_t seed) {
  static const char* kVertices[] = {"V1", "V2", "V4", "V5"};
  static const char* kCoords[] = {"X", "Y", "Z"};
  Rng rng(seed);
  std::set<Oid> deleted;
  auto mat = s.env.om.GetAttribute(s.cuboids[0], "Mat");
  ASSERT_TRUE(mat.ok()) << mat.status().ToString();
  Oid iron = mat->as_ref();
  for (size_t step = 0; step < kMixSteps; ++step) {
    double pick = rng.UniformDouble(0, 1);
    size_t idx = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(s.cuboids.size()) - 1));
    Oid c = s.cuboids[idx];
    bool alive = deleted.count(c) == 0 && s.env.om.Exists(c);
    Status st;
    if (pick < 0.30) {
      // Relevant write: one vertex coordinate.
      const char* vertex = kVertices[rng.UniformInt(0, 3)];
      const char* coord = kCoords[rng.UniformInt(0, 2)];
      double v = rng.UniformDouble(2, 10);
      if (!alive) continue;
      auto vo = s.env.om.GetAttribute(c, vertex);
      ASSERT_TRUE(vo.ok()) << vo.status().ToString();
      st = s.env.om.SetAttribute(vo->as_ref(), coord, Value::Float(v));
    } else if (pick < 0.45) {
      // Batched storm against two cuboids — exercises the two-phase
      // EndBatch and the per-plane batch queues (dedup included: the
      // second write of the same vertex collides in the owner plane).
      size_t idx2 = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(s.cuboids.size()) - 1));
      Oid c2 = s.cuboids[idx2];
      const char* vertex = kVertices[rng.UniformInt(0, 3)];
      double a = rng.UniformDouble(1, 10);
      double b = rng.UniformDouble(1, 10);
      if (!alive) continue;
      GmrManager::UpdateBatch batch(&s.env.mgr);
      auto vo = s.env.om.GetAttribute(c, vertex);
      ASSERT_TRUE(vo.ok()) << vo.status().ToString();
      st = s.env.om.SetAttribute(vo->as_ref(), "X", Value::Float(a));
      if (st.ok()) {
        st = s.env.om.SetAttribute(vo->as_ref(), "Y", Value::Float(b));
      }
      if (st.ok() && deleted.count(c2) == 0 && s.env.om.Exists(c2)) {
        auto vo2 = s.env.om.GetAttribute(c2, vertex);
        ASSERT_TRUE(vo2.ok()) << vo2.status().ToString();
        st = s.env.om.SetAttribute(vo2->as_ref(), "Z",
                                   Value::Float(a + b));
      }
      Status commit = batch.Commit();
      if (st.ok()) st = commit;
    } else if (pick < 0.65) {
      if (!alive) continue;
      auto v = s.env.mgr.ForwardLookup(s.geo.volume, {Value::Ref(c)});
      st = v.status();
    } else if (pick < 0.75) {
      double lo = rng.UniformDouble(0, 6000);
      auto rows = s.env.mgr.BackwardRange(s.geo.volume, lo, lo + 800,
                                          true, true);
      st = rows.status();
    } else if (pick < 0.88) {
      // Insert: complete GMRs extend via the broadcast NewObject path,
      // where exactly one plane must admit the new combination.
      double a = rng.UniformDouble(1, 20);
      double b = rng.UniformDouble(1, 20);
      double d = rng.UniformDouble(1, 20);
      auto made = s.geo.MakeCuboid(&s.env.om, a, b, d, iron);
      ASSERT_TRUE(made.ok()) << made.status().ToString();
      s.cuboids.push_back(*made);
      auto v = s.env.mgr.ForwardLookup(s.geo.volume, {Value::Ref(*made)});
      st = v.status();
    } else {
      if (!alive || s.cuboids.size() - deleted.size() <= 6) continue;
      st = s.geo.DeleteCuboid(&s.env.om, c);
      if (st.ok()) deleted.insert(c);
    }
    ASSERT_TRUE(st.ok()) << "step " << step << ": " << st.ToString();
  }
}

/// Canonical, order-independent dump of everything the partitioning must
/// preserve.
struct StateDump {
  std::vector<std::string> rows;      // extension union, sorted
  std::vector<std::string> rrr;       // RRR union, sorted
  std::vector<std::string> backward;  // one full-range backward answer
  GmrStats::Counters totals;
  size_t shard_count = 1;
};

StateDump DumpState(CompanyStack& s) {
  StateDump dump;
  dump.shard_count = s.env.mgr.shard_count();
  for (size_t sh = 0; sh < s.env.mgr.shard_count(); ++sh) {
    auto gmr = s.env.mgr.GetAt(sh, s.volume_gmr);
    EXPECT_TRUE(gmr.ok()) << gmr.status().ToString();
    (*gmr)->ForEachRow([&](RowId, const Gmr::Row& row) {
      std::string repr;
      for (const Value& a : row.args) repr += a.ToString() + "|";
      repr += "->";
      for (size_t i = 0; i < row.results.size(); ++i) {
        repr += row.valid[i] ? row.results[i].ToString() : "<invalid>";
        repr += "|";
      }
      dump.rows.push_back(std::move(repr));
      return true;
    });
    for (const Rrr::Entry& e : s.env.mgr.catalog_at(sh).rrr().AllEntries()) {
      std::string repr = e.object.ToString() + "/" +
                         std::to_string(e.function) + "/";
      for (const Value& a : e.args) repr += a.ToString() + "|";
      dump.rrr.push_back(std::move(repr));
    }
  }
  std::sort(dump.rows.begin(), dump.rows.end());
  std::sort(dump.rrr.begin(), dump.rrr.end());
  auto rows = s.env.mgr.BackwardRange(s.geo.volume, 0, 1e12, true, true);
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  for (const auto& r : *rows) {
    std::string repr;
    for (const Value& v : r) repr += v.ToString() + "|";
    dump.backward.push_back(std::move(repr));
  }
  std::sort(dump.backward.begin(), dump.backward.end());
  dump.totals = s.env.mgr.AggregateStats();
  return dump;
}

void ExpectEquivalent(const StateDump& oracle, const StateDump& sharded) {
  EXPECT_EQ(oracle.rows, sharded.rows);
  EXPECT_EQ(oracle.rrr, sharded.rrr);
  EXPECT_EQ(oracle.backward, sharded.backward);
  const GmrStats::Counters& a = oracle.totals;
  const GmrStats::Counters& b = sharded.totals;
  EXPECT_EQ(a.invalidations, b.invalidations);
  EXPECT_EQ(a.rematerializations, b.rematerializations);
  EXPECT_EQ(a.compensations, b.compensations);
  EXPECT_EQ(a.forward_hits, b.forward_hits);
  EXPECT_EQ(a.forward_invalid, b.forward_invalid);
  EXPECT_EQ(a.forward_misses, b.forward_misses);
  EXPECT_EQ(a.rows_created, b.rows_created);
  EXPECT_EQ(a.rows_removed, b.rows_removed);
  EXPECT_EQ(a.batch_records, b.batch_records);
  EXPECT_EQ(a.batch_dedup_hits, b.batch_dedup_hits);
  // Every plane performs (and counts) its own outermost flush, so the
  // aggregate scales with the plane count rather than staying equal.
  EXPECT_EQ(a.batch_flushes * sharded.shard_count, b.batch_flushes);
}

void RunEquivalenceSuite(RematStrategy remat, uint64_t seed) {
  auto oracle_stack = MakeStack(1, remat);
  RunMix(*oracle_stack, seed);
  StateDump oracle = DumpState(*oracle_stack);
  ASSERT_FALSE(oracle.rows.empty());
  ASSERT_FALSE(oracle.rrr.empty());

  for (size_t shards : {2u, 4u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    auto stack = MakeStack(shards, remat);
    RunMix(*stack, seed);
    StateDump dump = DumpState(*stack);
    ExpectEquivalent(oracle, dump);

    // The partitioning must be real: with several planes no single plane
    // may own the whole extension (24+ cuboids hash across 2+ shards).
    size_t max_plane_rows = 0;
    for (size_t sh = 0; sh < shards; ++sh) {
      size_t n = 0;
      (*stack->env.mgr.GetAt(sh, stack->volume_gmr))
          ->ForEachRow([&](RowId, const Gmr::Row&) {
            ++n;
            return true;
          });
      max_plane_rows = std::max(max_plane_rows, n);
    }
    EXPECT_LT(max_plane_rows, dump.rows.size());

    // Every live answer agrees with the oracle's interpreter evaluation.
    for (Oid c : stack->cuboids) {
      if (!stack->env.om.Exists(c)) continue;
      auto got =
          stack->env.mgr.ForwardLookup(stack->geo.volume, {Value::Ref(c)});
      auto expect =
          stack->env.interp.Invoke(stack->geo.volume, {Value::Ref(c)});
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_TRUE(expect.ok()) << expect.status().ToString();
      EXPECT_EQ(got->ToString(), expect->ToString());
    }
  }
}

TEST(ShardEquivalenceTest, ImmediateStormMatchesOneShardOracle) {
  RunEquivalenceSuite(RematStrategy::kImmediate, /*seed=*/771);
}

TEST(ShardEquivalenceTest, LazyStormMatchesOneShardOracle) {
  RunEquivalenceSuite(RematStrategy::kLazy, /*seed=*/772);
}

TEST(ShardEquivalenceTest, SecondSeedMatchesOneShardOracle) {
  RunEquivalenceSuite(RematStrategy::kImmediate, /*seed=*/9001);
}

TEST(ShardEquivalenceTest, RoutingCoversEveryPlane) {
  // Sanity on the router itself: with 4 planes the cuboid population must
  // not collapse into one shard, components follow their composite, and
  // the args router agrees with the object router.
  auto stack = MakeStack(4, RematStrategy::kImmediate);
  std::set<size_t> seen;
  for (Oid c : stack->cuboids) {
    size_t sh = stack->env.mgr.ShardOfObject(c);
    seen.insert(sh);
    EXPECT_EQ(sh, stack->env.mgr.ShardOfArgs({Value::Ref(c)}));
    auto v1 = stack->env.om.GetAttribute(c, "V1");
    ASSERT_TRUE(v1.ok());
    EXPECT_EQ(sh, stack->env.mgr.ShardOfObject(v1->as_ref()))
        << "vertex not pinned to its cuboid's shard";
  }
  EXPECT_EQ(seen.size(), 4u);
}

}  // namespace
}  // namespace gom
