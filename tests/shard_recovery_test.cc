// Sharded crash–recover–compare sweep: the crash_recovery_test property
// suite re-run against a maintenance plane split across N WAL streams on
// one fault-injected disk. Crash points land between the per-shard
// flushes — one stream's intent or batch-flush marker durable while a
// sibling stream's is still buffered — and
// RecoveryManager::RecoverShardedStreams must still reconstruct a state
// where every answer matches the from-scratch interpreter oracle. The
// two-phase EndBatch makes each stream self-contained: a stream is either
// entirely pre-flush (its batch is discarded) or durably committed; no
// crash point may ever require reading another stream to decide.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/sim_clock.h"
#include "funclang/interpreter.h"
#include "gmr/gmr_manager.h"
#include "gmr/recovery.h"
#include "gom/object_manager.h"
#include "storage/buffer_pool.h"
#include "storage/fault_injector.h"
#include "storage/sim_disk.h"
#include "storage/storage_manager.h"
#include "storage/wal.h"
#include "workload/cuboid_schema.h"
#include "workload/program_version.h"

namespace gom {
namespace {

constexpr size_t kBufferPages = 2;
constexpr size_t kNumCuboids = 8;
constexpr size_t kMixSteps = 40;

/// CrashRig with one WAL stream per maintenance plane, all on the same
/// fault-injected disk — a halt freezes every stream at the same instant,
/// wherever each one's flush happened to be.
struct ShardedCrashRig {
  explicit ShardedCrashRig(GmrManagerOptions opts)
      : disk(&clock, CostModel::Default()),
        pool(&disk, kBufferPages),
        storage(&pool),
        om(&schema, &storage, &clock),
        interp(&om, &registry),
        options(opts) {
    disk.SetFaultInjector(&fi);
    mgr = std::make_unique<GmrManager>(&om, &interp, &registry, &storage,
                                       options);
    AttachLogs();
    geo = *workload::CuboidSchema::Declare(&schema, &registry);

    Rng rng(11);
    iron = *geo.MakeMaterial(&om, "Iron", 7.86);
    for (size_t i = 0; i < kNumCuboids; ++i) {
      cuboids.push_back(*geo.MakeCuboid(&om, rng.UniformDouble(1, 20),
                                        rng.UniformDouble(1, 20),
                                        rng.UniformDouble(1, 20), iron));
    }
    GmrSpec spec;
    spec.name = "volume";
    spec.arg_types = {TypeRef::Object(geo.cuboid)};
    spec.functions = {geo.volume};
    specs.push_back(spec);
    gmr_id = *mgr->Materialize(spec);
    InstallNotifier();
    // Make the pre-mix state durable so crash points measure the mix only.
    for (auto& w : wals) EXPECT_TRUE(w->Flush().ok());
    EXPECT_TRUE(pool.FlushAll().ok());
  }

  /// Builds stream s with id s and wires it to plane s and the pool.
  void AttachLogs() {
    for (size_t s = 0; s < mgr->shard_count(); ++s) {
      wals.push_back(std::make_unique<WriteAheadLog>(
          &disk, static_cast<uint8_t>(s)));
      mgr->AttachWalAt(s, wals[s].get());
    }
    pool.AttachWal(wals[0].get());
    for (size_t s = 1; s < wals.size(); ++s) {
      pool.AttachExtraWal(wals[s].get());
    }
  }

  void InstallNotifier() {
    notifier = std::make_unique<workload::MaterializationNotifier>(
        mgr.get(), &om, workload::NotifyLevel::kObjDep);
    om.SetNotifier(notifier.get());
  }

  /// Machine restart: object base survives, GMR machinery and all log
  /// buffers are lost; every stream is reopened from the disk image and
  /// replayed onto its plane.
  std::vector<RecoveryManager::Stats> CrashAndRecover() {
    om.SetNotifier(nullptr);
    notifier.reset();
    pool.AttachWal(nullptr);
    pool.ClearExtraWals();
    mgr.reset();
    wals.clear();
    fi.ClearCrash();
    fi.ClearSchedule();

    mgr = std::make_unique<GmrManager>(&om, &interp, &registry, &storage,
                                       options);
    std::vector<WriteAheadLog*> streams;
    for (size_t s = 0; s < mgr->shard_count(); ++s) {
      wals.push_back(std::make_unique<WriteAheadLog>(
          &disk, static_cast<uint8_t>(s)));
      streams.push_back(wals[s].get());
    }
    std::vector<RecoveryManager::Stats> per_stream;
    Status recovered = RecoveryManager::RecoverShardedStreams(
        mgr.get(), &om, streams, specs, &per_stream);
    EXPECT_TRUE(recovered.ok()) << recovered.ToString();
    pool.AttachWal(wals[0].get());
    for (size_t s = 1; s < wals.size(); ++s) {
      pool.AttachExtraWal(wals[s].get());
    }
    InstallNotifier();
    return per_stream;
  }

  SimClock clock;
  SimDisk disk;
  FaultInjector fi;
  BufferPool pool;
  StorageManager storage;
  Schema schema;
  ObjectManager om;
  funclang::FunctionRegistry registry;
  funclang::Interpreter interp;
  GmrManagerOptions options;
  std::unique_ptr<GmrManager> mgr;
  std::vector<std::unique_ptr<WriteAheadLog>> wals;
  std::unique_ptr<workload::MaterializationNotifier> notifier;
  workload::CuboidSchema geo;
  Oid iron;
  std::vector<Oid> cuboids;
  std::vector<GmrSpec> specs;
  GmrId gmr_id = kInvalidGmrId;
};

/// The crash_recovery_test mix verbatim (identical draws per seed), so the
/// sharded sweep covers exactly the workload shapes the unsharded one does.
bool RunMix(ShardedCrashRig& rig, uint64_t seed, size_t batch_chunk) {
  static const char* kVertices[] = {"V1", "V2", "V4", "V5"};
  static const char* kCoords[] = {"X", "Y", "Z"};
  Rng rng(seed);
  std::set<Oid> deleted;
  size_t step = 0;
  while (step < kMixSteps) {
    if (rig.fi.crashed()) return true;
    size_t chunk = std::min(batch_chunk, kMixSteps - step);
    std::unique_ptr<GmrManager::UpdateBatch> batch;
    if (batch_chunk > 1) {
      batch = std::make_unique<GmrManager::UpdateBatch>(rig.mgr.get());
    }
    for (size_t i = 0; i < chunk; ++i, ++step) {
      double pick = rng.UniformDouble(0, 1);
      size_t idx = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(rig.cuboids.size()) - 1));
      Oid c = rig.cuboids[idx];
      bool alive = deleted.count(c) == 0 && rig.om.Exists(c);
      Status st;
      if (pick < 0.35) {
        const char* vertex = kVertices[rng.UniformInt(0, 3)];
        const char* coord = kCoords[rng.UniformInt(0, 2)];
        double v = rng.UniformDouble(1, 10);
        if (!alive) continue;
        auto vo = rig.om.GetAttribute(c, vertex);
        if (!vo.ok()) {
          st = vo.status();
        } else {
          st = rig.om.SetAttribute(vo->as_ref(), coord, Value::Float(v));
        }
      } else if (pick < 0.50) {
        const char* vertex = kVertices[rng.UniformInt(0, 3)];
        double a = rng.UniformDouble(1, 10);
        double b = rng.UniformDouble(1, 10);
        double d = rng.UniformDouble(1, 10);
        if (!alive) continue;
        auto vo = rig.om.GetAttribute(c, vertex);
        if (!vo.ok()) {
          st = vo.status();
        } else {
          Oid v = vo->as_ref();
          st = rig.om.SetAttribute(v, "X", Value::Float(a));
          if (st.ok()) st = rig.om.SetAttribute(v, "Y", Value::Float(b));
          if (st.ok()) st = rig.om.SetAttribute(v, "Z", Value::Float(d));
        }
      } else if (pick < 0.72) {
        if (!alive) continue;
        auto v = rig.mgr->ForwardLookup(rig.geo.volume, {Value::Ref(c)});
        st = v.status();
      } else if (pick < 0.84) {
        double a = rng.UniformDouble(1, 20);
        double b = rng.UniformDouble(1, 20);
        double d = rng.UniformDouble(1, 20);
        auto made = rig.geo.MakeCuboid(&rig.om, a, b, d, rig.iron);
        if (made.ok()) {
          rig.cuboids.push_back(*made);
          auto v = rig.mgr->ForwardLookup(rig.geo.volume, {Value::Ref(*made)});
          st = v.status();
        } else {
          st = made.status();
        }
      } else {
        if (!alive || rig.cuboids.size() - deleted.size() <= 4) continue;
        st = rig.om.Delete(c);
        if (st.ok()) deleted.insert(c);
      }
      if (rig.fi.crashed()) return true;
      EXPECT_TRUE(st.ok()) << "non-crash failure: " << st.ToString();
    }
    if (batch != nullptr) {
      Status st = batch->Commit();
      if (rig.fi.crashed()) return true;
      EXPECT_TRUE(st.ok()) << "non-crash failure: " << st.ToString();
    }
  }
  return rig.fi.crashed();
}

/// Oracle comparison over the union of the planes: no plane may hold a
/// stale-but-valid row, and every forward answer must be freshly correct.
void VerifyAgainstOracle(ShardedCrashRig& rig) {
  for (size_t sh = 0; sh < rig.mgr->shard_count(); ++sh) {
    Gmr* gmr = *rig.mgr->GetAt(sh, rig.gmr_id);
    ASSERT_TRUE(gmr->CheckWellFormed().ok());
    gmr->ForEachRow([&](RowId, const Gmr::Row& row) {
      Oid c = row.args[0].as_ref();
      // A row belongs to the plane its argument hashes to — recovery must
      // never re-admit a combination on the wrong plane.
      EXPECT_EQ(rig.mgr->ShardOfArgs(row.args), sh)
          << "row for " << c.ToString() << " recovered onto a foreign plane";
      if (!rig.om.Exists(c) || !row.valid[0]) return true;
      auto expect = rig.interp.Invoke(rig.geo.volume, {Value::Ref(c)});
      EXPECT_TRUE(expect.ok());
      if (expect.ok()) {
        EXPECT_EQ(row.results[0].ToString(), expect->ToString())
            << "stale valid row for " << c.ToString() << " on plane " << sh;
      }
      return true;
    });
  }
  for (Oid c : rig.cuboids) {
    if (!rig.om.Exists(c)) continue;
    auto expect = rig.interp.Invoke(rig.geo.volume, {Value::Ref(c)});
    auto got = rig.mgr->ForwardLookup(rig.geo.volume, {Value::Ref(c)});
    ASSERT_TRUE(expect.ok()) << expect.status().ToString();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->ToString(), expect->ToString())
        << "wrong recovered answer for " << c.ToString();
  }
}

struct SweepTotals {
  size_t crash_points = 0;
  size_t records_replayed = 0;
  size_t intents_seen = 0;
  size_t intents_discarded = 0;
  size_t remats_applied = 0;
  size_t batches_discarded = 0;
  size_t rows_replayed = 0;
  /// Streams (by id) that replayed at least one record over the sweep —
  /// proof the workload actually spanned planes.
  std::set<size_t> active_streams;

  void Add(const std::vector<RecoveryManager::Stats>& per_stream) {
    ++crash_points;
    for (size_t s = 0; s < per_stream.size(); ++s) {
      const RecoveryManager::Stats& st = per_stream[s];
      records_replayed += st.records_replayed;
      intents_seen += st.intents_seen;
      intents_discarded += st.intents_discarded;
      remats_applied += st.remats_applied;
      batches_discarded += st.batches_discarded;
      rows_replayed += st.rows_replayed;
      if (st.records_replayed > 0) active_streams.insert(s);
    }
  }
};

uint64_t DryRunOps(GmrManagerOptions opts, uint64_t seed, size_t batch_chunk) {
  ShardedCrashRig rig(opts);
  uint64_t before = rig.fi.ops_seen();
  bool crashed = RunMix(rig, seed, batch_chunk);
  uint64_t total = rig.fi.ops_seen() - before;
  EXPECT_FALSE(crashed);
  VerifyAgainstOracle(rig);  // the fault-free sharded run is consistent too
  return total;
}

void SweepCrashPoints(GmrManagerOptions opts, uint64_t seed,
                      size_t batch_chunk, size_t points, SweepTotals* totals) {
  uint64_t total_ops = DryRunOps(opts, seed, batch_chunk);
  ASSERT_GT(total_ops, points) << "mix too small for the requested sweep";
  for (size_t p = 0; p < points; ++p) {
    uint64_t crash_at = p * total_ops / points;
    ShardedCrashRig rig(opts);
    rig.fi.CrashAfter(crash_at);
    bool crashed = RunMix(rig, seed, batch_chunk);
    ASSERT_TRUE(crashed) << "crash point " << crash_at << " never reached";
    totals->Add(rig.CrashAndRecover());
    VerifyAgainstOracle(rig);
    if (::testing::Test::HasFailure()) {
      FAIL() << "first failing crash point: op " << crash_at;
    }
  }
}

TEST(ShardRecoveryTest, FourStreamSweepMatchesOracle) {
  SweepTotals totals;
  GmrManagerOptions opts;
  opts.shards = 4;
  SweepCrashPoints(opts, /*seed=*/101, /*batch_chunk=*/1, 50, &totals);
  // Batched: crash points land between one stream's phase-1 flush and a
  // sibling's — and between phase 1 and phase 2 of the same stream.
  SweepCrashPoints(opts, /*seed=*/202, /*batch_chunk=*/8, 50, &totals);

  EXPECT_EQ(totals.crash_points, 100u);
  EXPECT_GT(totals.records_replayed, 0u);
  EXPECT_GT(totals.intents_seen, 0u);
  EXPECT_GT(totals.rows_replayed, 0u);
  EXPECT_GT(totals.remats_applied, 0u);
  EXPECT_GT(totals.intents_discarded, 0u);
  EXPECT_GT(totals.batches_discarded, 0u);
  // The population must have really spread over the planes.
  EXPECT_GE(totals.active_streams.size(), 2u);
}

TEST(ShardRecoveryTest, TwoStreamLazySweepMatchesOracle) {
  SweepTotals totals;
  GmrManagerOptions opts;
  opts.shards = 2;
  opts.remat = RematStrategy::kLazy;
  SweepCrashPoints(opts, /*seed=*/303, /*batch_chunk=*/1, 60, &totals);

  EXPECT_EQ(totals.crash_points, 60u);
  EXPECT_GT(totals.records_replayed, 0u);
  EXPECT_GT(totals.remats_applied, 0u);
  EXPECT_GT(totals.intents_discarded, 0u);
  EXPECT_GE(totals.active_streams.size(), 2u);
}

TEST(ShardRecoveryTest, RecoveryAfterCleanShardedRunIsConsistent) {
  GmrManagerOptions opts;
  opts.shards = 4;
  ShardedCrashRig rig(opts);
  EXPECT_FALSE(RunMix(rig, /*seed=*/404, /*batch_chunk=*/4));
  rig.CrashAndRecover();
  VerifyAgainstOracle(rig);
}

}  // namespace
}  // namespace gom
