#include <gtest/gtest.h>

#include "test_env.h"

namespace gom {
namespace {

using workload::NotifyLevel;

/// Snapshot GMRs (the Adiba/Lindsay alternative the paper relates to in
/// §1): zero update overhead, stale reads, explicit wholesale Refresh().
class SnapshotTest : public ::testing::Test {
 protected:
  SnapshotTest() {
    iron_ = *env_.geo.MakeMaterial(&env_.om, "Iron", 7.86);
    c1_ = *env_.geo.MakeCuboid(&env_.om, 10, 6, 5, iron_);
    c2_ = *env_.geo.MakeCuboid(&env_.om, 2, 2, 2, iron_);
    GmrSpec spec;
    spec.name = "volume_snapshot";
    spec.arg_types = {TypeRef::Object(env_.geo.cuboid)};
    spec.functions = {env_.geo.volume};
    spec.snapshot = true;
    id_ = *env_.mgr.Materialize(spec);
    env_.InstallNotifier(NotifyLevel::kObjDep);
  }

  TestEnv env_;
  Oid iron_, c1_, c2_;
  GmrId id_ = kInvalidGmrId;
};

TEST_F(SnapshotTest, PopulatesButLeavesNoReverseReferences) {
  Gmr* gmr = *env_.mgr.Get(id_);
  EXPECT_EQ(gmr->live_rows(), 2u);
  EXPECT_EQ(env_.mgr.rrr().size(), 0u);
  EXPECT_FALSE(*env_.om.IsUsedBy(c1_, env_.geo.volume));
  auto r = gmr->Get(*gmr->FindRow({Value::Ref(c1_)}));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE((*r)->valid[0]);
  EXPECT_DOUBLE_EQ((*r)->results[0].as_float(), 300.0);
}

TEST_F(SnapshotTest, UpdatesCostNothingAndReadsGoStale) {
  env_.mgr.ResetStats();
  ASSERT_TRUE(env_.interp
                  .Invoke(env_.geo.op_scale,
                          {Value::Ref(c1_), Value::Float(2),
                           Value::Float(1), Value::Float(1)})
                  .ok());
  EXPECT_EQ(env_.mgr.stats().invalidations, 0u);
  EXPECT_EQ(env_.mgr.stats().rematerializations, 0u);
  // The snapshot still answers with the old value — by design.
  auto v = env_.mgr.ForwardLookup(env_.geo.volume, {Value::Ref(c1_)});
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->as_float(), 300.0);
}

TEST_F(SnapshotTest, RefreshReconcilesEverything) {
  // Mutate, create and delete, then refresh.
  ASSERT_TRUE(env_.interp
                  .Invoke(env_.geo.op_scale,
                          {Value::Ref(c1_), Value::Float(2),
                           Value::Float(1), Value::Float(1)})
                  .ok());
  Oid c3 = *env_.geo.MakeCuboid(&env_.om, 3, 3, 3, iron_);
  ASSERT_TRUE(env_.geo.DeleteCuboid(&env_.om, c2_).ok());

  Gmr* gmr = *env_.mgr.Get(id_);
  EXPECT_EQ(gmr->live_rows(), 2u);  // stale: still c1 and (deleted) c2

  ASSERT_TRUE(env_.mgr.Refresh(id_).ok());
  EXPECT_EQ(gmr->live_rows(), 2u);  // c1 and c3
  EXPECT_FALSE(gmr->FindRow({Value::Ref(c2_)}).ok());
  auto r1 = gmr->Get(*gmr->FindRow({Value::Ref(c1_)}));
  EXPECT_DOUBLE_EQ((*r1)->results[0].as_float(), 600.0);
  auto r3 = gmr->Get(*gmr->FindRow({Value::Ref(c3)}));
  ASSERT_TRUE(r3.ok());
  EXPECT_DOUBLE_EQ((*r3)->results[0].as_float(), 27.0);
  // Still no reverse references after the refresh.
  EXPECT_EQ(env_.mgr.rrr().size(), 0u);
}

TEST_F(SnapshotTest, RefreshWorksOnRegularGmrsAsRepair) {
  // A regular (non-snapshot) GMR can also be refreshed — a consistency
  // repair that recomputes every result.
  GmrSpec spec;
  spec.name = "weight";
  spec.arg_types = {TypeRef::Object(env_.geo.cuboid)};
  spec.functions = {env_.geo.weight};
  auto id = env_.mgr.Materialize(spec);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(env_.mgr.Refresh(*id).ok());
  Gmr* gmr = *env_.mgr.Get(*id);
  ASSERT_TRUE(gmr->CheckWellFormed().ok());
  EXPECT_EQ(gmr->InvalidRows(0).size(), 0u);
}

}  // namespace
}  // namespace gom
