#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/sim_clock.h"
#include "common/status.h"

namespace gom {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kNotFound, StatusCode::kAlreadyExists,
        StatusCode::kInvalidArgument, StatusCode::kFailedPrecondition,
        StatusCode::kOutOfRange, StatusCode::kTypeMismatch,
        StatusCode::kUnimplemented, StatusCode::kInternal,
        StatusCode::kIoError, StatusCode::kOverloaded}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(StatusTest, OverloadedIsDistinctAndRetryable) {
  Status s = Status::Overloaded("queue full");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOverloaded);
  EXPECT_EQ(s.ToString(), "Overloaded: queue full");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  GOMFM_ASSIGN_OR_RETURN(int h, Half(x));
  GOMFM_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());
  EXPECT_FALSE(Quarter(7).ok());
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyFair) {
  Rng rng(99);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.Bernoulli(0.5);
  EXPECT_GT(heads, 4500);
  EXPECT_LT(heads, 5500);
}

TEST(RngTest, WeightedIndexRespectsZeroWeights) {
  Rng rng(5);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.WeightedIndex(weights), 1u);
  }
}

TEST(RngTest, WeightedIndexProportions) {
  Rng rng(11);
  std::vector<double> weights = {1.0, 3.0};
  int counts[2] = {0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.WeightedIndex(weights)];
  // Expect roughly 25% / 75%.
  EXPECT_GT(counts[1], counts[0] * 2);
}

TEST(SimClockTest, AccumulatesAndResets) {
  SimClock clock;
  EXPECT_DOUBLE_EQ(clock.seconds(), 0.0);
  clock.Advance(1.5);
  clock.Advance(0.25);
  EXPECT_DOUBLE_EQ(clock.seconds(), 1.75);
  clock.Advance(-3.0);  // ignored
  EXPECT_DOUBLE_EQ(clock.seconds(), 1.75);
  clock.Reset();
  EXPECT_DOUBLE_EQ(clock.seconds(), 0.0);
}

}  // namespace
}  // namespace gom
