#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/sim_disk.h"
#include "storage/storage_manager.h"

namespace gom {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

std::string AsString(const std::vector<uint8_t>& v) {
  return std::string(v.begin(), v.end());
}

// ---------------------------------------------------------------- SimDisk

TEST(SimDiskTest, RoundTripsPages) {
  SimClock clock;
  SimDisk disk(&clock, CostModel::Default());
  PageId id = disk.AllocatePage();
  std::vector<uint8_t> in(kPageSize, 0xAB), out(kPageSize, 0);
  ASSERT_TRUE(disk.WritePage(id, in.data()).ok());
  ASSERT_TRUE(disk.ReadPage(id, out.data()).ok());
  EXPECT_EQ(in, out);
  EXPECT_EQ(disk.reads(), 1u);
  EXPECT_EQ(disk.writes(), 1u);
}

TEST(SimDiskTest, ChargesClockPerAccess) {
  SimClock clock;
  CostModel cost;
  cost.disk_access_seconds = 0.025;
  SimDisk disk(&clock, cost);
  PageId id = disk.AllocatePage();
  std::vector<uint8_t> buf(kPageSize, 0);
  ASSERT_TRUE(disk.WritePage(id, buf.data()).ok());
  ASSERT_TRUE(disk.ReadPage(id, buf.data()).ok());
  EXPECT_DOUBLE_EQ(clock.seconds(), 0.05);
}

TEST(SimDiskTest, OutOfRangeAccessFails) {
  SimClock clock;
  SimDisk disk(&clock, CostModel::Default());
  std::vector<uint8_t> buf(kPageSize, 0);
  EXPECT_EQ(disk.ReadPage(3, buf.data()).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(disk.WritePage(3, buf.data()).code(), StatusCode::kOutOfRange);
}

// ------------------------------------------------------------------- Page

TEST(PageTest, InsertAndRead) {
  Page page;
  auto data = Bytes("hello");
  auto slot = page.Insert(data.data(), data.size());
  ASSERT_TRUE(slot.ok());
  size_t len = 0;
  auto rec = page.Read(*slot, &len);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(*rec), len), "hello");
}

TEST(PageTest, MultipleRecordsKeepDistinctSlots) {
  Page page;
  std::vector<SlotId> slots;
  for (int i = 0; i < 10; ++i) {
    auto data = Bytes("record-" + std::to_string(i));
    auto slot = page.Insert(data.data(), data.size());
    ASSERT_TRUE(slot.ok());
    slots.push_back(*slot);
  }
  for (int i = 0; i < 10; ++i) {
    size_t len = 0;
    auto rec = page.Read(slots[i], &len);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(std::string(reinterpret_cast<const char*>(*rec), len),
              "record-" + std::to_string(i));
  }
  EXPECT_EQ(page.live_records(), 10);
}

TEST(PageTest, DeleteFreesSlotForReuse) {
  Page page;
  auto d1 = Bytes("first");
  auto s1 = page.Insert(d1.data(), d1.size());
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(page.Delete(*s1).ok());
  EXPECT_EQ(page.Read(*s1, nullptr).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(page.live_records(), 0);
  // The freed slot entry is reused by the next insert.
  auto d2 = Bytes("second");
  auto s2 = page.Insert(d2.data(), d2.size());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s2, *s1);
}

TEST(PageTest, UpdateInPlaceWhenNotGrowing) {
  Page page;
  auto d1 = Bytes("abcdef");
  auto slot = page.Insert(d1.data(), d1.size());
  ASSERT_TRUE(slot.ok());
  auto d2 = Bytes("xyz");
  ASSERT_TRUE(page.Update(*slot, d2.data(), d2.size()).ok());
  size_t len = 0;
  auto rec = page.Read(*slot, &len);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(len, 3u);
}

TEST(PageTest, UpdateGrowingFailsWithOutOfRange) {
  Page page;
  auto d1 = Bytes("ab");
  auto slot = page.Insert(d1.data(), d1.size());
  ASSERT_TRUE(slot.ok());
  auto d2 = Bytes("abcdefgh");
  EXPECT_EQ(page.Update(*slot, d2.data(), d2.size()).code(),
            StatusCode::kOutOfRange);
}

TEST(PageTest, FillsUpAndRejectsOverflow) {
  Page page;
  std::vector<uint8_t> rec(100, 0x7);
  int inserted = 0;
  while (page.Fits(rec.size())) {
    ASSERT_TRUE(page.Insert(rec.data(), rec.size()).ok());
    ++inserted;
  }
  // ~ (4096 - 4) / 104 records of 100 bytes + 4-byte slot entry.
  EXPECT_GT(inserted, 35);
  EXPECT_FALSE(page.Insert(rec.data(), rec.size()).ok());
}

TEST(PageTest, CompactReclaimsDeletedSpace) {
  Page page;
  std::vector<uint8_t> rec(1000, 0x3);
  auto s1 = page.Insert(rec.data(), rec.size());
  auto s2 = page.Insert(rec.data(), rec.size());
  auto s3 = page.Insert(rec.data(), rec.size());
  ASSERT_TRUE(s1.ok() && s2.ok() && s3.ok());
  EXPECT_FALSE(page.Fits(1500));
  ASSERT_TRUE(page.Delete(*s2).ok());
  page.Compact();
  EXPECT_TRUE(page.Fits(1500));
  // Survivors still readable.
  size_t len = 0;
  ASSERT_TRUE(page.Read(*s1, &len).ok());
  EXPECT_EQ(len, 1000u);
  ASSERT_TRUE(page.Read(*s3, &len).ok());
  EXPECT_EQ(len, 1000u);
}

TEST(PageTest, SurvivesSerializationRoundTrip) {
  Page page;
  auto d = Bytes("persistent");
  auto slot = page.Insert(d.data(), d.size());
  ASSERT_TRUE(slot.ok());
  Page copy{std::vector<uint8_t>(page.image())};
  size_t len = 0;
  auto rec = copy.Read(*slot, &len);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(*rec), len),
            "persistent");
}

// -------------------------------------------------------------- BufferPool

TEST(BufferPoolTest, HitsOnResidentPage) {
  SimClock clock;
  SimDisk disk(&clock, CostModel::Default());
  BufferPool pool(&disk, 4);
  PageId id;
  ASSERT_TRUE(pool.NewPage(&id).ok());
  ASSERT_TRUE(pool.Fetch(id).ok());
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 0u);
}

TEST(BufferPoolTest, EvictsLruAndFaultsBack) {
  SimClock clock;
  SimDisk disk(&clock, CostModel::Default());
  BufferPool pool(&disk, 2);
  PageId a, b, c;
  ASSERT_TRUE(pool.NewPage(&a).ok());
  ASSERT_TRUE(pool.NewPage(&b).ok());
  ASSERT_TRUE(pool.NewPage(&c).ok());  // evicts a (LRU)
  EXPECT_FALSE(pool.IsResident(a));
  EXPECT_TRUE(pool.IsResident(b));
  EXPECT_TRUE(pool.IsResident(c));
  uint64_t reads_before = disk.reads();
  ASSERT_TRUE(pool.Fetch(a).ok());  // faults a back in
  EXPECT_EQ(disk.reads(), reads_before + 1);
}

TEST(BufferPoolTest, DirtyPageWrittenBackOnEviction) {
  SimClock clock;
  SimDisk disk(&clock, CostModel::Default());
  BufferPool pool(&disk, 1);
  PageId a;
  auto page = pool.NewPage(&a);
  ASSERT_TRUE(page.ok());
  auto d = Bytes("dirty-data");
  ASSERT_TRUE((*page)->Insert(d.data(), d.size()).ok());
  ASSERT_TRUE(pool.MarkDirty(a).ok());
  PageId b;
  ASSERT_TRUE(pool.NewPage(&b).ok());  // evicts a, must write it back
  EXPECT_GE(disk.writes(), 1u);
  // Fault a back and confirm the record survived.
  auto again = pool.Fetch(a);
  ASSERT_TRUE(again.ok());
  size_t len = 0;
  ASSERT_TRUE((*again)->Read(0, &len).ok());
  EXPECT_EQ(len, d.size());
}

TEST(BufferPoolTest, PinnedPagesAreNotEvicted) {
  SimClock clock;
  SimDisk disk(&clock, CostModel::Default());
  BufferPool pool(&disk, 2);
  PageId a, b;
  ASSERT_TRUE(pool.NewPage(&a).ok());
  ASSERT_TRUE(pool.Pin(a).ok());
  ASSERT_TRUE(pool.NewPage(&b).ok());
  PageId c;
  ASSERT_TRUE(pool.NewPage(&c).ok());  // must evict b, not pinned a
  EXPECT_TRUE(pool.IsResident(a));
  EXPECT_FALSE(pool.IsResident(b));
  ASSERT_TRUE(pool.Unpin(a).ok());
}

TEST(BufferPoolTest, AllPinnedFailsEviction) {
  SimClock clock;
  SimDisk disk(&clock, CostModel::Default());
  BufferPool pool(&disk, 1);
  PageId a;
  ASSERT_TRUE(pool.NewPage(&a).ok());
  ASSERT_TRUE(pool.Pin(a).ok());
  PageId b;
  EXPECT_EQ(pool.NewPage(&b).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(BufferPoolTest, EvictAllColdStartsTheCache) {
  SimClock clock;
  SimDisk disk(&clock, CostModel::Default());
  BufferPool pool(&disk, 8);
  PageId a;
  ASSERT_TRUE(pool.NewPage(&a).ok());
  ASSERT_TRUE(pool.EvictAll().ok());
  EXPECT_EQ(pool.resident_pages(), 0u);
  pool.ResetCounters();
  ASSERT_TRUE(pool.Fetch(a).ok());
  EXPECT_EQ(pool.misses(), 1u);
}

// ---------------------------------------------------------- StorageManager

class StorageManagerTest : public ::testing::Test {
 protected:
  StorageManagerTest()
      : disk_(&clock_, CostModel::Default()),
        pool_(&disk_, 16),
        mgr_(&pool_) {}

  SimClock clock_;
  SimDisk disk_;
  BufferPool pool_;
  StorageManager mgr_;
};

TEST_F(StorageManagerTest, InsertReadRoundTrip) {
  SegmentId seg = mgr_.CreateSegment("objects");
  auto rid = mgr_.InsertRecord(seg, Bytes("payload"));
  ASSERT_TRUE(rid.ok());
  auto data = mgr_.ReadRecord(*rid);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(AsString(*data), "payload");
}

TEST_F(StorageManagerTest, SegmentsByNameAreStable) {
  SegmentId a = mgr_.CreateSegment("alpha");
  SegmentId b = mgr_.CreateSegment("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(mgr_.CreateSegment("alpha"), a);
}

TEST_F(StorageManagerTest, SequentialInsertsClusterOnPages) {
  SegmentId seg = mgr_.CreateSegment("clustered");
  std::vector<Rid> rids;
  for (int i = 0; i < 100; ++i) {
    auto rid = mgr_.InsertRecord(seg, std::vector<uint8_t>(100, uint8_t(i)));
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  // 100 records of ~104 bytes: ~39 per page, so 3 pages.
  EXPECT_LE(mgr_.SegmentPageCount(seg), 4u);
  // Consecutive records share pages.
  EXPECT_EQ(rids[0].page, rids[1].page);
}

TEST_F(StorageManagerTest, UpdateInPlaceKeepsRid) {
  SegmentId seg = mgr_.CreateSegment("s");
  auto rid = mgr_.InsertRecord(seg, Bytes("0123456789"));
  ASSERT_TRUE(rid.ok());
  auto updated = mgr_.UpdateRecord(seg, *rid, Bytes("01234"));
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(*updated, *rid);
  auto data = mgr_.ReadRecord(*updated);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(AsString(*data), "01234");
}

TEST_F(StorageManagerTest, GrowingUpdateRelocates) {
  SegmentId seg = mgr_.CreateSegment("s");
  // Fill one page almost completely so the grown record cannot stay.
  std::vector<Rid> rids;
  for (int i = 0; i < 39; ++i) {
    auto rid = mgr_.InsertRecord(seg, std::vector<uint8_t>(100, 1));
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  auto grown = mgr_.UpdateRecord(seg, rids[0], std::vector<uint8_t>(900, 2));
  ASSERT_TRUE(grown.ok());
  auto data = mgr_.ReadRecord(*grown);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->size(), 900u);
  // The old rid no longer resolves.
  EXPECT_FALSE(mgr_.ReadRecord(rids[0]).ok());
}

TEST_F(StorageManagerTest, DeleteRemovesRecord) {
  SegmentId seg = mgr_.CreateSegment("s");
  auto rid = mgr_.InsertRecord(seg, Bytes("gone"));
  ASSERT_TRUE(rid.ok());
  ASSERT_TRUE(mgr_.DeleteRecord(*rid).ok());
  EXPECT_EQ(mgr_.ReadRecord(*rid).status().code(), StatusCode::kNotFound);
}

TEST_F(StorageManagerTest, ScanVisitsAllLiveRecords) {
  SegmentId seg = mgr_.CreateSegment("s");
  std::vector<Rid> rids;
  for (int i = 0; i < 50; ++i) {
    auto rid = mgr_.InsertRecord(seg, std::vector<uint8_t>(200, uint8_t(i)));
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  ASSERT_TRUE(mgr_.DeleteRecord(rids[7]).ok());
  int visited = 0;
  ASSERT_TRUE(mgr_.ScanSegment(seg, [&](const Rid&) { ++visited; }).ok());
  EXPECT_EQ(visited, 49);
}

TEST_F(StorageManagerTest, WorkingSetLargerThanPoolStillCorrect) {
  SegmentId seg = mgr_.CreateSegment("big");
  std::vector<Rid> rids;
  for (int i = 0; i < 2000; ++i) {
    auto rid = mgr_.InsertRecord(seg, std::vector<uint8_t>(500, uint8_t(i)));
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  // ~7 records per page → ~286 pages >> 16 frames.
  EXPECT_GT(mgr_.SegmentPageCount(seg), 100u);
  for (int i = 0; i < 2000; i += 97) {
    auto data = mgr_.ReadRecord(rids[i]);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ((*data)[0], uint8_t(i));
  }
  EXPECT_GT(pool_.evictions(), 0u);
  EXPECT_GT(clock_.seconds(), 0.0);
}

}  // namespace
}  // namespace gom
