#ifndef GOMFM_TESTS_TEST_ENV_H_
#define GOMFM_TESTS_TEST_ENV_H_

#include <memory>

#include "funclang/interpreter.h"
#include "gmr/gmr_manager.h"
#include "gom/object_manager.h"
#include "storage/storage_options.h"
#include "workload/cuboid_schema.h"
#include "workload/program_version.h"

namespace gom {

/// Full stack for tests: simulated storage, object base with the paper's
/// geometric schema, interpreter and GMR manager (notifier not installed
/// until `InstallNotifier`).
struct TestEnv {
  explicit TestEnv(size_t buffer_pages = 150,
                   GmrManagerOptions options = {},
                   StorageOptions storage_options = {})
      : disk(&clock, CostModel::Default()),
        pool(&disk, buffer_pages),
        storage(&pool),
        om(&schema, &storage, &clock),
        interp(&om, &registry),
        mgr(&om, &interp, &registry, &storage, options) {
    if (storage_options.enable_wal) {
      wal = std::make_unique<WriteAheadLog>(&disk);
      pool.AttachWal(wal.get());
      mgr.AttachWal(wal.get());
    }
    auto declared = workload::CuboidSchema::Declare(&schema, &registry);
    assert(declared.ok());
    geo = *declared;
  }

  workload::MaterializationNotifier* InstallNotifier(
      workload::NotifyLevel level) {
    notifier = std::make_unique<workload::MaterializationNotifier>(&mgr, &om,
                                                                   level);
    om.SetNotifier(notifier.get());
    return notifier.get();
  }

  SimClock clock;
  SimDisk disk;
  BufferPool pool;
  StorageManager storage;
  Schema schema;
  ObjectManager om;
  funclang::FunctionRegistry registry;
  funclang::Interpreter interp;
  GmrManager mgr;
  std::unique_ptr<WriteAheadLog> wal;
  workload::CuboidSchema geo;
  std::unique_ptr<workload::MaterializationNotifier> notifier;
};

}  // namespace gom

#endif  // GOMFM_TESTS_TEST_ENV_H_
