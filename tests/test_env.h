#ifndef GOMFM_TESTS_TEST_ENV_H_
#define GOMFM_TESTS_TEST_ENV_H_

#include <cassert>

#include "workload/cuboid_schema.h"
#include "workload/driver.h"

namespace gom {

/// Full stack for tests: `workload::Environment` plus the paper's geometric
/// schema (notifier not installed until `InstallNotifier`). Tests exercise
/// the notifier in isolation, so unlike the benchmark drivers the call
/// interception stays off.
struct TestEnv : workload::Environment {
  explicit TestEnv(size_t buffer_pages = 150,
                   GmrManagerOptions options = {},
                   StorageOptions storage_options = {})
      : workload::Environment(buffer_pages, options, storage_options) {
    auto declared = workload::CuboidSchema::Declare(&schema, &registry);
    assert(declared.ok());
    geo = *declared;
  }

  workload::MaterializationNotifier* InstallNotifier(
      workload::NotifyLevel level) {
    return workload::Environment::InstallNotifier(
        level, /*install_interception=*/false);
  }

  workload::CuboidSchema geo;
};

}  // namespace gom

#endif  // GOMFM_TESTS_TEST_ENV_H_
