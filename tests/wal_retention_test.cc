// WAL segment retention under replication: the truncation floor is pinned
// by the slowest replica's acked LSN, the `wal_oldest_needed_lsn` gauge
// tracks it, Disconnect keeps the pin (the replica will be back) while
// Drop releases it, and a replica resuming below the retained range gets
// a snapshot instead of an impossible record stream.

#include "gtest/gtest.h"
#include "repl/rig.h"
#include "server/wire.h"

namespace gom::repl {
namespace {

/// A rig with no replicas is just a WAL-enabled primary plus a shipper —
/// the retention tests drive the shipper by hand to control exactly who
/// acked what.
ReplicationRig MakePrimary() {
  RigOptions opts;
  opts.num_cuboids = 6;
  return ReplicationRig(opts);
}

Lsn Flushed(ReplicationRig& rig) {
  EXPECT_TRUE(rig.primary().wal->Flush().ok());
  return rig.primary().wal->flushed_lsn();
}

TEST(WalRetentionTest, FloorIsMinOverAckedReplicas) {
  ReplicationRig rig = MakePrimary();
  ASSERT_TRUE(rig.setup.ok()) << rig.setup.ToString();
  WalShipper& shipper = rig.shipper();

  // Both replicas bootstrap via snapshot (fresh, nothing applied).
  auto t1 = shipper.Connect(1, kNullLsn);
  ASSERT_TRUE(t1.ok()) << t1.status().ToString();
  ASSERT_FALSE(t1->empty());
  EXPECT_EQ(t1->front().type, server::ReplMsgType::kSnapshotBegin);
  auto t2 = shipper.Connect(2, kNullLsn);
  ASSERT_TRUE(t2.ok()) << t2.status().ToString();
  Lsn snap_lsn = t1->front().lsn;

  // The snapshot itself counts as acked-up-to-snapshot: nothing at or
  // below it is ever needed again by these replicas.
  EXPECT_EQ(shipper.retention_floor(), snap_lsn);

  ASSERT_TRUE(rig.RunMix(25, 3).ok());
  Lsn head = Flushed(rig);
  ASSERT_GT(head, snap_lsn);

  // Replica 1 catches all the way up; replica 2 stays at the snapshot.
  ASSERT_TRUE(shipper.Ack(1, head).ok());
  EXPECT_EQ(shipper.retention_floor(), snap_lsn);
  // The gauge mirrors the floor.
  EXPECT_EQ(rig.primary().mgr.stats().wal_oldest_needed_lsn.load(), snap_lsn);
  // Records above the slow replica's ack must survive truncation.
  EXPECT_LE(rig.primary().wal->oldest_lsn(), snap_lsn + 1);
  auto still_there = rig.primary().wal->ReadFlushedSince(snap_lsn, 1u << 20);
  ASSERT_TRUE(still_there.ok()) << still_there.status().ToString();
  EXPECT_FALSE(still_there->empty());

  // The slow replica advances: the floor follows the new minimum and the
  // log actually shrinks behind it (page-granular, so the oldest retained
  // LSN lands at or below floor + 1 but strictly past where it was).
  Lsn oldest_before = rig.primary().wal->oldest_lsn();
  ASSERT_TRUE(shipper.Ack(2, head).ok());
  EXPECT_EQ(shipper.retention_floor(), head);
  EXPECT_LE(rig.primary().wal->oldest_lsn(), head + 1);
  EXPECT_GT(rig.primary().wal->oldest_lsn(), oldest_before);
  EXPECT_EQ(rig.primary().mgr.stats().wal_oldest_needed_lsn.load(), head);
}

TEST(WalRetentionTest, DisconnectKeepsPinDropReleasesIt) {
  ReplicationRig rig = MakePrimary();
  ASSERT_TRUE(rig.setup.ok()) << rig.setup.ToString();
  WalShipper& shipper = rig.shipper();

  auto t1 = shipper.Connect(1, kNullLsn);
  ASSERT_TRUE(t1.ok());
  auto t2 = shipper.Connect(2, kNullLsn);
  ASSERT_TRUE(t2.ok());
  Lsn snap_lsn = t1->front().lsn;

  ASSERT_TRUE(rig.RunMix(20, 5).ok());
  Lsn head = Flushed(rig);
  ASSERT_TRUE(shipper.Ack(1, head).ok());

  // A disconnected replica is expected back: its pin must hold, or its
  // resume point would be truncated away while it reboots.
  shipper.Disconnect(2);
  EXPECT_EQ(shipper.retention_floor(), snap_lsn);
  EXPECT_GT(head, snap_lsn);

  // Dropping it for good releases the pin; the floor jumps to the
  // remaining replica and truncation catches up (page-granular).
  Lsn oldest_before = rig.primary().wal->oldest_lsn();
  shipper.Drop(2);
  EXPECT_EQ(shipper.retention_floor(), head);
  EXPECT_LE(rig.primary().wal->oldest_lsn(), head + 1);
  EXPECT_GT(rig.primary().wal->oldest_lsn(), oldest_before);
}

TEST(WalRetentionTest, ResumeBelowRetainedRangeGetsSnapshot) {
  ReplicationRig rig = MakePrimary();
  ASSERT_TRUE(rig.setup.ok()) << rig.setup.ToString();
  WalShipper& shipper = rig.shipper();

  auto t1 = shipper.Connect(1, kNullLsn);
  ASSERT_TRUE(t1.ok());
  Lsn snap_lsn = t1->front().lsn;
  ASSERT_TRUE(rig.RunMix(20, 9).ok());
  Lsn head = Flushed(rig);
  ASSERT_TRUE(shipper.Ack(1, head).ok());
  // Truncated up to `head` now. A replica claiming an applied position
  // whose successor record is gone cannot be streamed to.
  ASSERT_GT(head, snap_lsn);
  auto resume = shipper.Connect(2, snap_lsn);
  ASSERT_TRUE(resume.ok()) << resume.status().ToString();
  ASSERT_FALSE(resume->empty());
  EXPECT_EQ(resume->front().type, server::ReplMsgType::kSnapshotBegin);
  EXPECT_EQ(resume->back().type, server::ReplMsgType::kSnapshotEnd);

  // A replica already at the head resumes with an empty train (records
  // flow through Poll from here).
  auto at_head = shipper.Connect(3, head);
  ASSERT_TRUE(at_head.ok()) << at_head.status().ToString();
  EXPECT_TRUE(at_head->empty());
}

TEST(WalRetentionTest, RigSweepNeverStarvesAReplica) {
  // End-to-end: with auto-truncation on and a flaky link forcing repeated
  // reconnects, a resume point is never truncated past — the replica
  // either streams or re-bootstraps, and always converges.
  RigOptions opts;
  opts.num_cuboids = 6;
  opts.faults.seed = 77;
  opts.faults.drop_rate = 0.15;
  opts.faults.cut_rate = 0.05;
  ReplicationRig rig(opts);
  ASSERT_TRUE(rig.setup.ok()) << rig.setup.ToString();
  ASSERT_TRUE(rig.AddReplica().ok());
  ASSERT_TRUE(rig.AddReplica().ok());
  for (uint64_t round = 0; round < 4; ++round) {
    ASSERT_TRUE(rig.RunMix(15, 300 + round).ok());
    ASSERT_TRUE(rig.PumpUntilCaughtUp().ok());
    auto conv = rig.Converged();
    ASSERT_TRUE(conv.ok() && *conv) << "round " << round;
    // Retention never outruns the slowest replica.
    EXPECT_LE(rig.primary().wal->oldest_lsn(),
              rig.shipper().retention_floor() + 1);
  }
}

}  // namespace
}  // namespace gom::repl
