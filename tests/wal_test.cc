// Unit tests for the write-ahead log: record framing, group flush,
// recovery truncation at checksum/torn-write breaks, and the
// flush-log-before-dirty-page rule enforced by the buffer pool.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "storage/buffer_pool.h"
#include "storage/fault_injector.h"
#include "storage/sim_disk.h"
#include "storage/wal.h"

namespace gom {
namespace {

struct WalRig {
  WalRig() : disk(&clock, CostModel::Default()) {}
  SimClock clock;
  SimDisk disk;
};

std::vector<uint8_t> Payload(std::initializer_list<uint8_t> bytes) {
  return std::vector<uint8_t>(bytes);
}

/// On-disk frame size of a record with `payload_size` payload bytes:
/// [size u16][crc u32][lsn u64][type u8][payload].
constexpr size_t FrameSize(size_t payload_size) { return 15 + payload_size; }

TEST(Crc32Test, KnownVector) {
  const char* s = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const uint8_t*>(s), 9), 0xCBF43926u);
}

TEST(WalTest, AppendFlushReplayRoundtrip) {
  WalRig rig;
  WriteAheadLog wal(&rig.disk);

  auto l1 = wal.Append(WalRecordType::kUpdateIntent, Payload({1, 2, 3}));
  auto l2 = wal.Append(WalRecordType::kRematResult, Payload({}));
  auto l3 = wal.Append(WalRecordType::kUpdateCommit, Payload({9}));
  ASSERT_TRUE(l1.ok() && l2.ok() && l3.ok());
  EXPECT_EQ(*l1, 1u);
  EXPECT_EQ(*l2, 2u);
  EXPECT_EQ(*l3, 3u);
  EXPECT_EQ(wal.last_lsn(), 3u);
  EXPECT_EQ(wal.flushed_lsn(), kNullLsn);
  EXPECT_GT(wal.unflushed_bytes(), 0u);
  ASSERT_TRUE(wal.Flush().ok());
  EXPECT_EQ(wal.flushed_lsn(), 3u);
  EXPECT_EQ(wal.unflushed_bytes(), 0u);

  WriteAheadLog reopened(&rig.disk);
  ASSERT_TRUE(reopened.Open().ok());
  ASSERT_EQ(reopened.recovered_records(), 3u);
  std::vector<WalRecord> seen;
  ASSERT_TRUE(reopened
                  .Replay([&](const WalRecord& rec) {
                    seen.push_back(rec);
                    return Status::Ok();
                  })
                  .ok());
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0].lsn, 1u);
  EXPECT_EQ(seen[0].type, WalRecordType::kUpdateIntent);
  EXPECT_EQ(seen[0].payload, Payload({1, 2, 3}));
  EXPECT_EQ(seen[1].type, WalRecordType::kRematResult);
  EXPECT_TRUE(seen[1].payload.empty());
  EXPECT_EQ(seen[2].lsn, 3u);
  EXPECT_EQ(seen[2].payload, Payload({9}));
}

TEST(WalTest, UnflushedTailIsLostOnReopen) {
  WalRig rig;
  WriteAheadLog wal(&rig.disk);
  ASSERT_TRUE(wal.Append(WalRecordType::kBatchBegin, {}).ok());
  ASSERT_TRUE(wal.Append(WalRecordType::kBatchCommit, {}).ok());
  ASSERT_TRUE(wal.Flush().ok());
  // Appended but never flushed: a crash right now loses it.
  ASSERT_TRUE(wal.Append(WalRecordType::kUpdateIntent, Payload({7})).ok());
  EXPECT_GT(wal.unflushed_bytes(), 0u);

  WriteAheadLog reopened(&rig.disk);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.recovered_records(), 2u);
}

TEST(WalTest, GroupFlushWritesOnce) {
  WalRig rig;
  WriteAheadLog wal(&rig.disk);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(wal.Append(WalRecordType::kRowInsert, Payload({0, 1})).ok());
  }
  uint64_t writes_before = rig.disk.writes();
  ASSERT_TRUE(wal.Flush().ok());
  // Ten small records share one log page: one physical write.
  EXPECT_EQ(rig.disk.writes(), writes_before + 1);
  EXPECT_EQ(wal.log_pages(), 1u);
  // A second flush with nothing new is free.
  writes_before = rig.disk.writes();
  ASSERT_TRUE(wal.Flush().ok());
  EXPECT_EQ(rig.disk.writes(), writes_before);
}

TEST(WalTest, FlushToSkipsAlreadyDurableLsns) {
  WalRig rig;
  WriteAheadLog wal(&rig.disk);
  auto l1 = wal.Append(WalRecordType::kUpdateIntent, Payload({1}));
  ASSERT_TRUE(l1.ok());
  ASSERT_TRUE(wal.FlushTo(*l1).ok());
  EXPECT_EQ(wal.flushed_lsn(), *l1);
  uint64_t flushes = wal.flushes();
  ASSERT_TRUE(wal.FlushTo(*l1).ok());  // already durable: no-op
  EXPECT_EQ(wal.flushes(), flushes);
  ASSERT_TRUE(wal.FlushTo(kNullLsn).ok());  // "no record to wait for"
  EXPECT_EQ(wal.flushes(), flushes);

  auto l2 = wal.Append(WalRecordType::kUpdateCommit, Payload({1}));
  ASSERT_TRUE(l2.ok());
  ASSERT_TRUE(wal.FlushTo(*l2).ok());
  EXPECT_EQ(wal.flushes(), flushes + 1);
  EXPECT_EQ(wal.flushed_lsn(), *l2);
}

TEST(WalTest, RecordsNeverSpanPagesAndAllSurviveFlush) {
  WalRig rig;
  WriteAheadLog wal(&rig.disk);
  // Large payloads force page rollover well before 4 kB boundaries align.
  std::vector<uint8_t> big(900, 0xAB);
  for (int i = 0; i < 12; ++i) {
    big[0] = static_cast<uint8_t>(i);
    ASSERT_TRUE(wal.Append(WalRecordType::kRematResult, big).ok());
  }
  ASSERT_TRUE(wal.Flush().ok());
  EXPECT_GE(wal.log_pages(), 3u);

  WriteAheadLog reopened(&rig.disk);
  ASSERT_TRUE(reopened.Open().ok());
  ASSERT_EQ(reopened.recovered_records(), 12u);
  size_t i = 0;
  ASSERT_TRUE(reopened
                  .Replay([&](const WalRecord& rec) {
                    EXPECT_EQ(rec.lsn, i + 1);
                    EXPECT_EQ(rec.payload.size(), big.size());
                    EXPECT_EQ(rec.payload[0], static_cast<uint8_t>(i));
                    ++i;
                    return Status::Ok();
                  })
                  .ok());
}

TEST(WalTest, CorruptedRecordTruncatesRecoveryAtTheBreak) {
  WalRig rig;
  WriteAheadLog wal(&rig.disk);
  std::vector<uint8_t> big(900, 0x5C);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(wal.Append(WalRecordType::kRematResult, big).ok());
  }
  ASSERT_TRUE(wal.Flush().ok());
  ASSERT_GE(wal.log_pages(), 3u);

  // Flip one payload byte of a record on the *second* log page (sequence
  // order equals allocation order on a fresh disk).
  std::vector<uint8_t> image(kPageSize);
  PageId second = kInvalidPageId;
  size_t log_pages_seen = 0;
  for (PageId pid = 0; pid < rig.disk.page_count(); ++pid) {
    ASSERT_TRUE(rig.disk.ReadPage(pid, image.data()).ok());
    if (std::memcmp(image.data(), "GOMFMWAL", 8) == 0 &&
        ++log_pages_seen == 2) {
      second = pid;
      break;
    }
  }
  ASSERT_NE(second, kInvalidPageId);
  image[200] ^= 0xFF;  // mid-record on that page
  ASSERT_TRUE(rig.disk.WritePage(second, image.data()).ok());

  WriteAheadLog reopened(&rig.disk);
  ASSERT_TRUE(reopened.Open().ok());
  // Everything on page 1 survives; the chain stops at the corrupt record.
  EXPECT_GT(reopened.recovered_records(), 0u);
  EXPECT_LT(reopened.recovered_records(), 12u);
  Lsn expect = 1;
  ASSERT_TRUE(reopened
                  .Replay([&](const WalRecord& rec) {
                    EXPECT_EQ(rec.lsn, expect++);  // contiguous prefix
                    return Status::Ok();
                  })
                  .ok());
}

TEST(WalTest, TornPageWriteRecoversTheDurablePrefix) {
  WalRig rig;
  FaultInjector fi;
  rig.disk.SetFaultInjector(&fi);
  WriteAheadLog wal(&rig.disk);

  auto l1 = wal.Append(WalRecordType::kUpdateIntent, Payload({1, 2, 3, 4, 5}));
  ASSERT_TRUE(l1.ok());
  ASSERT_TRUE(wal.Flush().ok());

  // The next flush re-writes the partial page with a second record added;
  // power fails after the header and first record have reached the platter.
  ASSERT_TRUE(wal.Append(WalRecordType::kUpdateCommit, Payload({1})).ok());
  constexpr size_t kDurablePrefix = 14 /* page header */ + FrameSize(5);
  fi.FailAfter(0, FaultInjector::Kind::kTornWrite, kDurablePrefix);
  (void)wal.Flush();  // the torn transfer itself reports success
  ASSERT_TRUE(fi.crashed());

  fi.ClearCrash();
  fi.ClearSchedule();
  WriteAheadLog reopened(&rig.disk);
  ASSERT_TRUE(reopened.Open().ok());
  // The first record is intact (its bytes were re-written identically);
  // the second never fully transferred and fails its checksum.
  ASSERT_EQ(reopened.recovered_records(), 1u);
  ASSERT_TRUE(reopened
                  .Replay([&](const WalRecord& rec) {
                    EXPECT_EQ(rec.lsn, 1u);
                    EXPECT_EQ(rec.type, WalRecordType::kUpdateIntent);
                    return Status::Ok();
                  })
                  .ok());
}

TEST(WalTest, ReopenedLogContinuesTheLsnChain) {
  WalRig rig;
  {
    WriteAheadLog wal(&rig.disk);
    ASSERT_TRUE(wal.Append(WalRecordType::kBatchBegin, {}).ok());
    ASSERT_TRUE(wal.Append(WalRecordType::kBatchFlush, {}).ok());
    ASSERT_TRUE(wal.Flush().ok());
  }
  {
    WriteAheadLog wal(&rig.disk);
    ASSERT_TRUE(wal.Open().ok());
    EXPECT_EQ(wal.last_lsn(), 2u);
    auto l3 = wal.Append(WalRecordType::kBatchCommit, {});
    ASSERT_TRUE(l3.ok());
    EXPECT_EQ(*l3, 3u);
    ASSERT_TRUE(wal.Flush().ok());
  }
  WriteAheadLog wal(&rig.disk);
  ASSERT_TRUE(wal.Open().ok());
  ASSERT_EQ(wal.recovered_records(), 3u);
  Lsn expect = 1;
  ASSERT_TRUE(wal.Replay([&](const WalRecord& rec) {
                   EXPECT_EQ(rec.lsn, expect++);
                   return Status::Ok();
                 })
                  .ok());
}

TEST(WalTest, BufferPoolFlushesLogBeforeDirtyPageWriteback) {
  WalRig rig;
  WriteAheadLog wal(&rig.disk);
  BufferPool pool(&rig.disk, 2);
  pool.AttachWal(&wal);

  // Log a record, then dirty a data page: the frame's recovery LSN is the
  // record's LSN, so writing the page back must make the record durable
  // first — without the pool ever being told to flush the log explicitly.
  auto lsn = wal.Append(WalRecordType::kUpdateIntent, Payload({42}));
  ASSERT_TRUE(lsn.ok());
  PageId data_page = kInvalidPageId;
  ASSERT_TRUE(pool.NewPage(&data_page).ok());
  EXPECT_EQ(wal.flushed_lsn(), kNullLsn);

  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_GE(wal.flushed_lsn(), *lsn);

  // And a crash-time reopen indeed sees the record.
  WriteAheadLog reopened(&rig.disk);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.recovered_records(), 1u);
}

TEST(WalTest, EvictionOfDirtyPageAlsoHonorsTheRule) {
  WalRig rig;
  WriteAheadLog wal(&rig.disk);
  BufferPool pool(&rig.disk, 1);  // single frame: every NewPage evicts
  pool.AttachWal(&wal);

  auto lsn = wal.Append(WalRecordType::kRowInsert, Payload({1}));
  ASSERT_TRUE(lsn.ok());
  PageId first = kInvalidPageId;
  ASSERT_TRUE(pool.NewPage(&first).ok());
  PageId second = kInvalidPageId;
  ASSERT_TRUE(pool.NewPage(&second).ok());  // evicts + writes back `first`
  EXPECT_GE(wal.flushed_lsn(), *lsn);
}

}  // namespace
}  // namespace gom
