// Wire-protocol tests: value/row-set round-trips (randomized), frame
// integrity (CRC / magic / length), and the guarantee that corrupted or
// truncated frames are rejected — never mis-decoded.

#include "server/wire.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"

namespace gom::server {
namespace {

Value RandomValue(Rng& rng, int depth = 0) {
  // Composites only near the top so random trees stay small.
  int max_kind = depth < 2 ? 6 : 5;
  switch (rng.UniformInt(0, max_kind)) {
    case 0:
      return Value::Null();
    case 1:
      return Value::Bool(rng.Bernoulli(0.5));
    case 2:
      return Value::Int(rng.UniformInt(INT64_MIN / 2, INT64_MAX / 2));
    case 3:
      return Value::Float(rng.UniformDouble(-1e12, 1e12));
    case 4: {
      std::string s;
      int64_t len = rng.UniformInt(0, 40);
      for (int64_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>(rng.UniformInt(0, 255)));
      }
      return Value::String(std::move(s));
    }
    case 5:
      return Value::Ref(Oid{static_cast<uint64_t>(
          rng.UniformInt(0, INT64_MAX))});
    default: {
      std::vector<Value> elems;
      int64_t n = rng.UniformInt(0, 4);
      for (int64_t i = 0; i < n; ++i) {
        elems.push_back(RandomValue(rng, depth + 1));
      }
      return Value::Composite(std::move(elems));
    }
  }
}

RowSet RandomRows(Rng& rng) {
  RowSet rows;
  int64_t nrows = rng.UniformInt(0, 8);
  for (int64_t i = 0; i < nrows; ++i) {
    std::vector<Value> row;
    int64_t ncols = rng.UniformInt(0, 5);
    for (int64_t c = 0; c < ncols; ++c) row.push_back(RandomValue(rng));
    rows.push_back(std::move(row));
  }
  return rows;
}

/// Decodes exactly one frame that is expected to be complete and valid.
std::vector<uint8_t> MustFrame(const std::vector<uint8_t>& frame) {
  std::vector<uint8_t> payload;
  auto consumed = TryDecodeFrame(frame.data(), frame.size(), &payload);
  EXPECT_TRUE(consumed.ok()) << consumed.status().ToString();
  EXPECT_EQ(*consumed, frame.size());
  return payload;
}

TEST(WireTest, RequestRoundTripAllTypes) {
  Rng rng(11);
  for (int iter = 0; iter < 200; ++iter) {
    Request req;
    req.type = static_cast<RequestType>(rng.UniformInt(1, 6));
    req.id = static_cast<uint64_t>(rng.UniformInt(0, INT64_MAX));
    switch (req.type) {
      case RequestType::kGomql:
      case RequestType::kExplain: {
        int64_t len = rng.UniformInt(0, 200);
        for (int64_t i = 0; i < len; ++i) {
          req.text.push_back(static_cast<char>(rng.UniformInt(1, 255)));
        }
        break;
      }
      case RequestType::kForward: {
        req.function = static_cast<FunctionId>(rng.UniformInt(0, 1 << 20));
        int64_t argc = rng.UniformInt(0, 4);
        for (int64_t i = 0; i < argc; ++i) req.args.push_back(RandomValue(rng));
        break;
      }
      case RequestType::kBackward:
        req.function = static_cast<FunctionId>(rng.UniformInt(0, 1 << 20));
        req.lo = rng.UniformDouble(-1e6, 1e6);
        req.hi = rng.UniformDouble(-1e6, 1e6);
        req.lo_inclusive = rng.Bernoulli(0.5);
        req.hi_inclusive = rng.Bernoulli(0.5);
        break;
      default:
        break;
    }

    std::vector<uint8_t> frame;
    EncodeRequest(req, &frame);
    auto decoded = DecodeRequest(MustFrame(frame));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->type, req.type);
    EXPECT_EQ(decoded->id, req.id);
    EXPECT_EQ(decoded->text, req.text);
    EXPECT_EQ(decoded->function, req.function);
    ASSERT_EQ(decoded->args.size(), req.args.size());
    for (size_t i = 0; i < req.args.size(); ++i) {
      EXPECT_EQ(decoded->args[i], req.args[i]);
    }
    // Bit-exact doubles, including negative zero and friends.
    EXPECT_EQ(std::memcmp(&decoded->lo, &req.lo, 8), 0);
    EXPECT_EQ(std::memcmp(&decoded->hi, &req.hi, 8), 0);
    EXPECT_EQ(decoded->lo_inclusive, req.lo_inclusive);
    EXPECT_EQ(decoded->hi_inclusive, req.hi_inclusive);
  }
}

TEST(WireTest, ResponseRoundTripRandomRows) {
  Rng rng(23);
  for (int iter = 0; iter < 200; ++iter) {
    Response resp;
    resp.id = static_cast<uint64_t>(rng.UniformInt(0, INT64_MAX));
    resp.code = static_cast<StatusCode>(rng.UniformInt(0, 10));
    resp.message = iter % 3 ? "" : "some failure";
    resp.text = iter % 2 ? "" : "plan text\nwith lines";
    resp.rows = RandomRows(rng);

    std::vector<uint8_t> frame;
    EncodeResponse(resp, &frame);
    auto decoded = DecodeResponse(MustFrame(frame));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->id, resp.id);
    EXPECT_EQ(decoded->code, resp.code);
    EXPECT_EQ(decoded->message, resp.message);
    EXPECT_EQ(decoded->text, resp.text);
    ASSERT_EQ(decoded->rows.size(), resp.rows.size());
    for (size_t i = 0; i < resp.rows.size(); ++i) {
      ASSERT_EQ(decoded->rows[i].size(), resp.rows[i].size());
      for (size_t c = 0; c < resp.rows[i].size(); ++c) {
        EXPECT_EQ(decoded->rows[i][c], resp.rows[i][c]);
      }
    }
  }
}

TEST(WireTest, TruncatedFramesNeverDecode) {
  Response resp;
  resp.id = 7;
  resp.text = "hello";
  resp.rows = {{Value::Int(1), Value::Float(2.5)}};
  std::vector<uint8_t> frame;
  EncodeResponse(resp, &frame);

  std::vector<uint8_t> payload;
  for (size_t n = 0; n < frame.size(); ++n) {
    auto consumed = TryDecodeFrame(frame.data(), n, &payload);
    // A strict prefix either asks for more bytes or (if the cut corrupts
    // nothing visible yet) still asks for more — it must never succeed.
    ASSERT_TRUE(consumed.ok()) << consumed.status().ToString();
    EXPECT_EQ(*consumed, 0u) << "prefix of " << n << " bytes decoded";
  }
}

TEST(WireTest, EverySingleByteCorruptionIsRejected) {
  Rng rng(31);
  Response resp;
  resp.id = 99;
  resp.message = "m";
  resp.rows = RandomRows(rng);
  std::vector<uint8_t> frame;
  EncodeResponse(resp, &frame);

  std::vector<uint8_t> payload;
  for (size_t i = 0; i < frame.size(); ++i) {
    std::vector<uint8_t> bad = frame;
    bad[i] ^= 0x5A;
    auto consumed = TryDecodeFrame(bad.data(), bad.size(), &payload);
    if (!consumed.ok()) continue;  // rejected outright: good
    // A corrupted length can only make the frame look incomplete — the
    // decoder may ask for more bytes but must never hand back a payload.
    EXPECT_EQ(*consumed, 0u) << "byte " << i << " corrupted yet decoded";
  }
}

TEST(WireTest, OversizedDeclaredLengthRejected) {
  std::vector<uint8_t> frame(kFrameHeaderBytes, 0);
  uint32_t magic = kFrameMagic;
  uint32_t huge = kMaxFrameBytes + 1;
  std::memcpy(frame.data(), &magic, 4);
  std::memcpy(frame.data() + 4, &huge, 4);
  std::vector<uint8_t> payload;
  auto consumed = TryDecodeFrame(frame.data(), frame.size(), &payload);
  EXPECT_FALSE(consumed.ok());
}

TEST(WireTest, BadMagicRejected) {
  Request req;
  req.type = RequestType::kPing;
  std::vector<uint8_t> frame;
  EncodeRequest(req, &frame);
  frame[0] ^= 0xFF;
  std::vector<uint8_t> payload;
  EXPECT_FALSE(TryDecodeFrame(frame.data(), frame.size(), &payload).ok());
}

TEST(WireTest, HostileRowCountRejected) {
  // A CRC-valid payload claiming 2^31 rows in a few bytes must be refused
  // before any allocation is attempted.
  Response resp;
  std::vector<uint8_t> frame;
  EncodeResponse(resp, &frame);
  std::vector<uint8_t> payload = MustFrame(frame);
  // The trailing u32 of the payload is the (empty) row count; inflate it.
  uint32_t huge = 0x80000000u;
  std::memcpy(payload.data() + payload.size() - 4, &huge, 4);
  EXPECT_FALSE(DecodeResponse(payload).ok());
}

TEST(WireTest, UnknownRequestTypeAndTrailingBytesRejected) {
  Request req;
  req.type = RequestType::kPing;
  req.id = 5;
  std::vector<uint8_t> frame;
  EncodeRequest(req, &frame);
  std::vector<uint8_t> payload = MustFrame(frame);

  std::vector<uint8_t> bad_type = payload;
  bad_type[0] = 0;  // below kPing
  EXPECT_FALSE(DecodeRequest(bad_type).ok());
  bad_type[0] = 7;  // above kStats
  EXPECT_FALSE(DecodeRequest(bad_type).ok());

  std::vector<uint8_t> trailing = payload;
  trailing.push_back(0xAB);
  EXPECT_FALSE(DecodeRequest(trailing).ok());
}

TEST(WireTest, TwoFramesBackToBackConsumeOneAtATime) {
  Request a, b;
  a.type = RequestType::kPing;
  a.id = 1;
  b.type = RequestType::kStats;
  b.id = 2;
  std::vector<uint8_t> stream;
  EncodeRequest(a, &stream);
  EncodeRequest(b, &stream);

  std::vector<uint8_t> payload;
  auto first = TryDecodeFrame(stream.data(), stream.size(), &payload);
  ASSERT_TRUE(first.ok());
  ASSERT_GT(*first, 0u);
  auto ra = DecodeRequest(payload);
  ASSERT_TRUE(ra.ok());
  EXPECT_EQ(ra->id, 1u);

  auto second =
      TryDecodeFrame(stream.data() + *first, stream.size() - *first, &payload);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first + *second, stream.size());
  auto rb = DecodeRequest(payload);
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(rb->id, 2u);
}

}  // namespace
}  // namespace gom::server
