#include <gtest/gtest.h>

#include "workload/driver.h"

namespace gom::workload {
namespace {

// ------------------------------------------------------------ company data

class CompanyTest : public ::testing::Test {
 protected:
  CompanyTest() : env_(150), rng_(7) {
    co_ = *CompanySchema::Declare(&env_.schema, &env_.registry);
  }

  CompanyDb SmallCompany() {
    CompanyConfig cfg;
    cfg.departments = 3;
    cfg.employees_per_department = 5;
    cfg.projects = 8;
    cfg.jobs_per_employee = 4;
    cfg.programmers_per_project = 3;
    return *BuildCompany(co_, &env_.om, cfg, &rng_);
  }

  Environment env_;
  Rng rng_;
  CompanySchema co_;
};

TEST_F(CompanyTest, BuildCreatesConsistentStructure) {
  CompanyDb db = SmallCompany();
  EXPECT_EQ(db.departments.size(), 3u);
  EXPECT_EQ(db.employees.size(), 15u);
  EXPECT_EQ(db.projects.size(), 8u);
  // Every employee is reachable through exactly one department.
  size_t total = 0;
  for (Oid dep : db.departments) {
    Oid emp_set = env_.om.GetAttribute(dep, "Emps")->as_ref();
    total += *env_.om.ElementCount(emp_set);
  }
  EXPECT_EQ(total, db.employees.size());
  // EmpNo index resolves.
  EXPECT_TRUE(db.by_emp_no.count(1));
  EXPECT_TRUE(db.by_emp_no.count(15));
}

TEST_F(CompanyTest, RankingMatchesManualComputation) {
  CompanyDb db = SmallCompany();
  Oid emp = db.employees[0];
  auto ranked = env_.interp.Invoke(co_.ranking, {Value::Ref(emp)});
  ASSERT_TRUE(ranked.ok()) << ranked.status().ToString();
  // Manual: average the assessments.
  Oid history = env_.om.GetAttribute(emp, "JobHistory")->as_ref();
  auto jobs = *env_.om.GetElements(history);
  ASSERT_FALSE(jobs.empty());
  double sum = 0;
  for (const Value& j : jobs) {
    Oid job = j.as_ref();
    double loc = static_cast<double>(
        env_.om.GetAttribute(job, "Loc")->as_int());
    bool on_time = env_.om.GetAttribute(job, "OnTime")->as_bool();
    bool in_budget = env_.om.GetAttribute(job, "InBudget")->as_bool();
    Oid proj = env_.om.GetAttribute(job, "Proj")->as_ref();
    double status = env_.om.GetAttribute(proj, "Status")->as_float();
    sum += loc / 1000.0 + (on_time ? 1 : 0) + (in_budget ? 1 : 0) +
           status / 1000.0;
  }
  EXPECT_NEAR(ranked->as_float(), sum / jobs.size(), 1e-9);
}

TEST_F(CompanyTest, MatrixLinesAreExactlyTheNonEmptyIntersections) {
  CompanyDb db = SmallCompany();
  auto m = env_.interp.Invoke(co_.matrix, {Value::Ref(db.company)});
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  size_t expected_lines = 0;
  for (Oid dep : db.departments) {
    Oid demp = env_.om.GetAttribute(dep, "Emps")->as_ref();
    auto dmembers = *env_.om.GetElements(demp);
    for (Oid proj : db.projects) {
      Oid pset = env_.om.GetAttribute(proj, "Programmers")->as_ref();
      auto pmembers = *env_.om.GetElements(pset);
      size_t overlap = 0;
      for (const Value& e : dmembers) {
        for (const Value& p : pmembers) {
          if (e == p) ++overlap;
        }
      }
      if (overlap > 0) ++expected_lines;
    }
  }
  EXPECT_EQ(m->elements().size(), expected_lines);
  // Every line's employees belong to both its department and project.
  for (const Value& line : m->elements()) {
    const auto& fields = line.elements();
    ASSERT_EQ(fields.size(), 3u);
    Oid demp = env_.om.GetAttribute(fields[0].as_ref(), "Emps")->as_ref();
    Oid pset =
        env_.om.GetAttribute(fields[1].as_ref(), "Programmers")->as_ref();
    auto dmembers = *env_.om.GetElements(demp);
    auto pmembers = *env_.om.GetElements(pset);
    EXPECT_FALSE(fields[2].elements().empty());
    for (const Value& e : fields[2].elements()) {
      EXPECT_TRUE(std::count(dmembers.begin(), dmembers.end(), e));
      EXPECT_TRUE(std::count(pmembers.begin(), pmembers.end(), e));
    }
  }
}

TEST_F(CompanyTest, PromoteInvalidatesOnlyThatEmployeesRanking) {
  CompanyDb db = SmallCompany();
  GmrSpec spec;
  spec.name = "ranking";
  spec.arg_types = {TypeRef::Object(co_.employee)};
  spec.functions = {co_.ranking};
  auto id = env_.mgr.Materialize(spec);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  env_.mgr.set_remat_strategy(RematStrategy::kLazy);
  env_.InstallNotifier(NotifyLevel::kObjDep);

  Oid victim = db.employees[3];
  ASSERT_TRUE(env_.interp
                  .Invoke(co_.op_promote,
                          {Value::Ref(victim), Value::Int(1),
                           Value::Bool(false), Value::Bool(false)})
                  .ok());
  Gmr* gmr = *env_.mgr.Get(*id);
  size_t invalid = 0;
  gmr->ForEachRow([&](RowId, const Gmr::Row& row) {
    if (!row.valid[0]) {
      ++invalid;
      EXPECT_EQ(row.args[0].as_ref(), victim);
    }
    return true;
  });
  EXPECT_EQ(invalid, 1u);
  // Re-reading recomputes the correct value.
  auto again = env_.mgr.ForwardLookup(co_.ranking, {Value::Ref(victim)});
  auto fresh = env_.interp.Invoke(co_.ranking, {Value::Ref(victim)});
  ASSERT_TRUE(again.ok() && fresh.ok());
  EXPECT_NEAR(again->as_float(), fresh->as_float(), 1e-9);
}

TEST_F(CompanyTest, CompensatedAddProjectMatchesFreshMatrix) {
  CompanyDb db = SmallCompany();
  GmrSpec spec;
  spec.name = "matrix";
  spec.arg_types = {TypeRef::Object(co_.company)};
  spec.functions = {co_.matrix};
  auto id = env_.mgr.Materialize(spec);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  env_.mgr.deps().AddInvalidated(co_.company, co_.op_add_project, co_.matrix);
  ASSERT_TRUE(env_.mgr.deps()
                  .AddCompensatingAction(co_.company, co_.op_add_project,
                                         co_.matrix, co_.matrix_add_project)
                  .ok());
  env_.InstallNotifier(NotifyLevel::kInfoHiding);
  env_.mgr.ResetStats();

  // Create a staffed project and add it through the public operation.
  Oid programmers = *env_.om.CreateCollection(co_.employee_set);
  ASSERT_TRUE(
      env_.om.InsertElement(programmers, Value::Ref(db.employees[0])).ok());
  ASSERT_TRUE(
      env_.om.InsertElement(programmers, Value::Ref(db.employees[7])).ok());
  Oid proj = *env_.om.CreateTuple(
      co_.project, {Value::String("Pnew"), Value::Float(100.0),
                    Value::Int(5000), Value::Ref(programmers)});
  ASSERT_TRUE(env_.interp
                  .Invoke(co_.op_add_project,
                          {Value::Ref(db.company), Value::Ref(proj)})
                  .ok());

  EXPECT_EQ(env_.mgr.stats().compensations, 1u);
  EXPECT_EQ(env_.mgr.stats().rematerializations, 0u);

  // The compensated result must agree (as a set of lines) with a fresh
  // evaluation.
  Gmr* gmr = *env_.mgr.Get(*id);
  auto row = gmr->Get(*gmr->FindRow({Value::Ref(db.company)}));
  ASSERT_TRUE(row.ok());
  ASSERT_TRUE((*row)->valid[0]);
  Value cached = (*row)->results[0];
  auto fresh = env_.interp.Invoke(co_.matrix, {Value::Ref(db.company)});
  ASSERT_TRUE(fresh.ok());
  ASSERT_EQ(cached.elements().size(), fresh->elements().size());
  for (const Value& line : fresh->elements()) {
    EXPECT_TRUE(std::count(cached.elements().begin(),
                           cached.elements().end(), line))
        << "missing line " << line.ToString();
  }
}

// ----------------------------------------------------------- operation mix

TEST(OperationMixTest, SamplesRespectWeightsAndPup) {
  OperationMix mix;
  mix.query_mix = {{0.5, OpKind::kBackwardQuery}, {0.5, OpKind::kForwardQuery}};
  mix.update_mix = {{1.0, OpKind::kScale}};
  mix.update_probability = 0.25;
  Rng rng(9);
  int updates = 0, queries = 0;
  for (int i = 0; i < 4000; ++i) {
    OpKind kind = *mix.Sample(&rng);
    if (kind == OpKind::kScale) {
      ++updates;
    } else {
      ++queries;
    }
  }
  EXPECT_NEAR(static_cast<double>(updates) / 4000, 0.25, 0.03);
}

TEST(OperationMixTest, EmptySideFallsBack) {
  OperationMix mix;
  mix.update_mix = {{1.0, OpKind::kRotate}};
  mix.update_probability = 0.5;  // queries sampled half the time, but none
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(*mix.Sample(&rng), OpKind::kRotate);
  }
  OperationMix empty;
  EXPECT_FALSE(empty.Sample(&rng).ok());
}

// -------------------------------------------------------------- GeoBench

GeoBench::Config SmallGeo(ProgramVersion v) {
  GeoBench::Config cfg;
  cfg.num_cuboids = 120;
  cfg.buffer_pages = 24;  // keep the data ≫ buffer relation of §7
  cfg.version = v;
  cfg.seed = 11;
  return cfg;
}

TEST(GeoBenchTest, AllVersionsRunTheFullMix) {
  OperationMix mix;
  mix.query_mix = {{0.5, OpKind::kBackwardQuery},
                   {0.5, OpKind::kForwardQuery}};
  mix.update_mix = {{0.3, OpKind::kInsert},
                    {0.1, OpKind::kDelete},
                    {0.3, OpKind::kScale},
                    {0.2, OpKind::kRotate},
                    {0.1, OpKind::kTranslate}};
  mix.update_probability = 0.5;
  mix.num_ops = 30;
  for (ProgramVersion v :
       {ProgramVersion::kWithoutGmr, ProgramVersion::kWithGmr,
        ProgramVersion::kLazy, ProgramVersion::kInfoHiding}) {
    GeoBench bench(SmallGeo(v));
    ASSERT_TRUE(bench.setup_status().ok())
        << ProgramVersionName(v) << ": "
        << bench.setup_status().ToString();
    auto t = bench.RunMix(mix);
    ASSERT_TRUE(t.ok()) << ProgramVersionName(v) << ": "
                        << t.status().ToString();
    EXPECT_GT(*t, 0.0);
  }
}

TEST(GeoBenchTest, GmrAcceleratesBackwardQueries) {
  OperationMix queries;
  queries.query_mix = {{1.0, OpKind::kBackwardQuery}};
  queries.update_probability = 0.0;
  queries.num_ops = 5;

  GeoBench without(SmallGeo(ProgramVersion::kWithoutGmr));
  GeoBench with(SmallGeo(ProgramVersion::kWithGmr));
  ASSERT_TRUE(without.setup_status().ok());
  ASSERT_TRUE(with.setup_status().ok());
  double t_without = *without.RunMix(queries);
  double t_with = *with.RunMix(queries);
  // Even at this miniature scale the materialized version must win
  // decisively on backward queries.
  EXPECT_LT(t_with * 3, t_without);
}

TEST(GeoBenchTest, InfoHidingCheapensRotations) {
  OperationMix rotations;
  rotations.update_mix = {{1.0, OpKind::kRotate}};
  rotations.update_probability = 1.0;
  rotations.num_ops = 40;

  GeoBench with(SmallGeo(ProgramVersion::kWithGmr));
  GeoBench hiding(SmallGeo(ProgramVersion::kInfoHiding));
  ASSERT_TRUE(with.setup_status().ok());
  ASSERT_TRUE(hiding.setup_status().ok());
  double t_with = *with.RunMix(rotations);
  double t_hiding = *hiding.RunMix(rotations);
  EXPECT_LT(t_hiding * 2, t_with);
}

TEST(GeoBenchTest, PreInvalidateStartsWithEmptyRrr) {
  GeoBench::Config cfg = SmallGeo(ProgramVersion::kLazy);
  cfg.pre_invalidate = true;
  GeoBench bench(cfg);
  ASSERT_TRUE(bench.setup_status().ok())
      << bench.setup_status().ToString();
  EXPECT_EQ(bench.env().mgr.rrr().size(), 0u);
  // Rotations now cost almost nothing on the GMR side.
  OperationMix rotations;
  rotations.update_mix = {{1.0, OpKind::kRotate}};
  rotations.update_probability = 1.0;
  rotations.num_ops = 20;
  auto t = bench.RunMix(rotations);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(bench.env().mgr.stats().invalidations, 0u);
}

// ------------------------------------------------------------ CompanyBench

CompanyBench::Config SmallCompanyBench(ProgramVersion v) {
  CompanyBench::Config cfg;
  cfg.company.departments = 3;
  cfg.company.employees_per_department = 6;
  cfg.company.projects = 10;
  cfg.company.jobs_per_employee = 3;
  cfg.company.programmers_per_project = 3;
  cfg.buffer_pages = 16;
  cfg.version = v;
  return cfg;
}

TEST(CompanyBenchTest, RankingMixRunsUnderAllVersions) {
  OperationMix mix;
  mix.query_mix = {{0.6, OpKind::kRankingForward},
                   {0.4, OpKind::kRankingBackward}};
  mix.update_mix = {{0.8, OpKind::kPromote}, {0.2, OpKind::kNewEmployee}};
  mix.update_probability = 0.4;
  mix.num_ops = 25;
  for (ProgramVersion v : {ProgramVersion::kWithoutGmr,
                           ProgramVersion::kWithGmr, ProgramVersion::kLazy}) {
    CompanyBench bench(SmallCompanyBench(v));
    ASSERT_TRUE(bench.setup_status().ok())
        << ProgramVersionName(v) << ": "
        << bench.setup_status().ToString();
    auto t = bench.RunMix(mix);
    ASSERT_TRUE(t.ok()) << ProgramVersionName(v) << ": "
                        << t.status().ToString();
    EXPECT_GT(*t, 0.0);
  }
}

TEST(CompanyBenchTest, MatrixMixWithCompensation) {
  OperationMix mix;
  mix.query_mix = {{1.0, OpKind::kMatrixSelect}};
  mix.update_mix = {{1.0, OpKind::kNewProject}};
  mix.update_probability = 0.5;
  mix.num_ops = 10;
  CompanyBench::Config cfg = SmallCompanyBench(ProgramVersion::kCompAction);
  cfg.materialize_ranking = false;
  cfg.materialize_matrix = true;
  cfg.compensate_add_project = true;
  CompanyBench bench(cfg);
  ASSERT_TRUE(bench.setup_status().ok())
      << bench.setup_status().ToString();
  auto t = bench.RunMix(mix);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_GT(bench.env().mgr.stats().compensations, 0u);
  // The cached matrix still agrees with a fresh evaluation after the mix.
  auto cached = bench.env().mgr.ForwardLookup(
      bench.schema().matrix, {Value::Ref(bench.db().company)});
  auto fresh = bench.env().interp.Invoke(
      bench.schema().matrix, {Value::Ref(bench.db().company)});
  ASSERT_TRUE(cached.ok() && fresh.ok());
  EXPECT_EQ(cached->elements().size(), fresh->elements().size());
}

}  // namespace
}  // namespace gom::workload
